pub use caliqec as framework;
