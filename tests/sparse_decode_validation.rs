//! Validation of the syndrome-sparse decode pipeline against its dense /
//! allocating predecessors:
//!
//! - word-sparse extraction ([`SparseBatch`]) versus the dense per-shot
//!   oracles `shot_detectors` / `shot_observables`, bit for bit;
//! - the scratch-reusing [`UnionFindDecoder`] versus the historic
//!   allocate-per-call [`ReferenceUnionFind`], and versus fresh instances
//!   (no state leaks across calls);
//! - the cached, early-terminating [`MwpmDecoder`] versus
//!   [`MwpmDecoder::without_cache`] and fresh instances;
//! - golden engine fingerprints captured on the pre-optimization tree:
//!   `LerEngine::estimate` must stay bit-identical for a fixed
//!   `(options, base_seed)` at any thread count.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    estimate_ler_seeded, graph_for_circuit, Decoder, LerEngine, MwpmDecoder, ReferenceUnionFind,
    SampleOptions, Tiered, UnionFindDecoder,
};
use caliqec_stab::{CompiledCircuit, FrameSampler, SparseBatch, BATCH};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small surface-code memory circuit: the realistic syndrome source.
fn memory(d: usize, p: f64, rounds: usize) -> caliqec_code::MemoryCircuit {
    memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(p),
        rounds,
        MemoryBasis::Z,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse extraction reproduces the dense oracles exactly on random
    /// circuit shapes, noise strengths, and seeds.
    #[test]
    fn sparse_extraction_matches_dense_oracle(
        d_idx in 0usize..2,
        rounds in 1usize..4,
        p_milli in 1u32..40,
        seed in 0u64..1_000,
    ) {
        let d = [3usize, 5][d_idx];
        let mem = memory(d, p_milli as f64 * 1e-3, rounds);
        let mut sampler = FrameSampler::new(&mem.circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = SparseBatch::new();
        for _ in 0..4 {
            let ev = sampler.sample_batch(&mut rng);
            sparse.extract(&ev);
            for s in 0..BATCH {
                let dense_d: Vec<usize> = ev
                    .shot_detectors(s)
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i)
                    .collect();
                prop_assert_eq!(sparse.defects(s), dense_d.as_slice());
                let mut dense_o = 0u64;
                for (i, &b) in ev.shot_observables(s).iter().enumerate() {
                    if b {
                        dense_o |= 1 << i;
                    }
                }
                prop_assert_eq!(sparse.observables(s), dense_o);
            }
        }
    }

    /// The scratch-reusing union-find decoder produces the same correction
    /// as the historic allocate-per-call implementation, and as a fresh
    /// instance per syndrome (its dirty lists leak no state across calls).
    #[test]
    fn union_find_scratch_matches_reference(
        p_milli in 1u32..30,
        seed in 0u64..1_000,
    ) {
        let mem = memory(3, p_milli as f64 * 1e-3, 3);
        let graph = graph_for_circuit(&mem.circuit);
        let mut persistent = UnionFindDecoder::new(graph.clone());
        let mut reference = ReferenceUnionFind::new(graph.clone());
        let mut sampler = FrameSampler::new(&mem.circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = SparseBatch::new();
        for _ in 0..2 {
            let ev = sampler.sample_batch(&mut rng);
            sparse.extract(&ev);
            for s in 0..BATCH {
                let defects = sparse.defects(s);
                let got = persistent.decode(defects);
                prop_assert_eq!(got, reference.decode(defects));
                prop_assert_eq!(got, UnionFindDecoder::new(graph.clone()).decode(defects));
            }
        }
    }

    /// The cached, early-terminating MWPM decoder matches the
    /// compute-everything reference path and fresh instances.
    #[test]
    fn mwpm_cache_matches_reference(
        p_milli in 1u32..30,
        seed in 0u64..1_000,
    ) {
        let mem = memory(3, p_milli as f64 * 1e-3, 3);
        let graph = graph_for_circuit(&mem.circuit);
        let mut cached = MwpmDecoder::new(graph.clone());
        let mut uncached = MwpmDecoder::without_cache(graph.clone());
        let mut sampler = FrameSampler::new(&mem.circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = SparseBatch::new();
        for _ in 0..2 {
            let ev = sampler.sample_batch(&mut rng);
            sparse.extract(&ev);
            for s in 0..BATCH {
                let defects = sparse.defects(s);
                let got = cached.decode(defects);
                prop_assert_eq!(got, uncached.decode(defects));
                prop_assert_eq!(got, MwpmDecoder::new(graph.clone()).decode(defects));
            }
        }
    }
}

/// Engine fingerprints pinned at a fixed seed. Re-captured when the
/// sampler moved from per-chunk to per-batch RNG streams (the SIMD
/// lockstep sampler keys each 64-shot batch on its own `chunk_seed`);
/// within a schedule the sparse pipeline, the tiered fast path, and the
/// serial reference must reproduce them bit for bit at every thread
/// count.
#[test]
fn engine_fingerprints_are_preserved() {
    struct Case {
        d: usize,
        p: f64,
        min_shots: usize,
        seed: u64,
        /// Expected union-find (shots, failures).
        uf_expect: (usize, usize),
        /// Expected MWPM (shots, failures) at `min_shots / 2`, where run.
        mwpm_expect: Option<(usize, usize)>,
    }
    let cases = [
        Case {
            d: 3,
            p: 3e-3,
            min_shots: 20_000,
            seed: 0xABCD,
            uf_expect: (20_032, 315),
            mwpm_expect: Some((10_048, 148)),
        },
        Case {
            d: 5,
            p: 2e-3,
            min_shots: 10_000,
            seed: 0xBEEF,
            uf_expect: (10_048, 31),
            mwpm_expect: Some((5_056, 11)),
        },
        Case {
            d: 7,
            p: 3e-3,
            min_shots: 5_000,
            seed: 0xCAFE,
            uf_expect: (5_056, 11),
            mwpm_expect: None,
        },
    ];
    for Case {
        d,
        p,
        min_shots,
        seed,
        uf_expect,
        mwpm_expect,
    } in cases
    {
        let mem = memory(d, p, d);
        let compiled = CompiledCircuit::new(&mem.circuit);
        let graph = graph_for_circuit(&mem.circuit);
        for threads in [1usize, 2, 8] {
            let run = LerEngine::new(threads).estimate(
                &compiled,
                &|| UnionFindDecoder::new(graph.clone()),
                SampleOptions {
                    min_shots,
                    ..Default::default()
                },
                seed,
            );
            assert_eq!(
                (run.estimate.shots, run.estimate.failures),
                uf_expect,
                "UF d={d} threads={threads}"
            );
            // The two-tier fast path must reproduce the fingerprints bit
            // for bit — tier dispatch is an optimization, not a decoder.
            let tiered = LerEngine::new(threads).estimate(
                &compiled,
                &Tiered::new(&graph, {
                    let graph = graph.clone();
                    move || UnionFindDecoder::new(graph.clone())
                }),
                SampleOptions {
                    min_shots,
                    ..Default::default()
                },
                seed,
            );
            assert_eq!(
                (tiered.estimate.shots, tiered.estimate.failures),
                uf_expect,
                "tiered UF d={d} threads={threads}"
            );
            assert!(
                tiered.predecoded_shots > 0,
                "predecoder never fired at d={d} threads={threads}"
            );
        }
        let serial = estimate_ler_seeded(
            &compiled,
            &mut UnionFindDecoder::new(graph.clone()),
            SampleOptions {
                min_shots,
                ..Default::default()
            },
            seed,
        );
        assert_eq!(
            (serial.shots, serial.failures),
            uf_expect,
            "UF serial d={d}"
        );
        if let Some(expect) = mwpm_expect {
            let run = LerEngine::new(2).estimate(
                &compiled,
                &|| MwpmDecoder::new(graph.clone()),
                SampleOptions {
                    min_shots: min_shots / 2,
                    ..Default::default()
                },
                seed,
            );
            assert_eq!(
                (run.estimate.shots, run.estimate.failures),
                expect,
                "MWPM d={d}"
            );
            let tiered = LerEngine::new(2).estimate(
                &compiled,
                &Tiered::new(&graph, {
                    let graph = graph.clone();
                    move || MwpmDecoder::new(graph.clone())
                }),
                SampleOptions {
                    min_shots: min_shots / 2,
                    ..Default::default()
                },
                seed,
            );
            assert_eq!(
                (tiered.estimate.shots, tiered.estimate.failures),
                expect,
                "tiered MWPM d={d}"
            );
        }
    }
}
