//! Cross-validation of the two decoders: the union-find decoder (fast,
//! near-linear) against exact minimum-weight perfect matching (the oracle),
//! both against the exact tableau simulator's statistics, and the tier-1
//! predecoder against both full decoders on every shot it certifies.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    estimate_ler, graph_for_circuit, ClusterTier, Decoder, LerEngine, MwpmDecoder, Predecoder,
    SampleOptions, Tiered, UnionFindDecoder, MAX_CLUSTER_DEFECTS,
};
use caliqec_stab::{CompiledCircuit, FrameSampler, SparseBatch, BATCH};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every shot the predecoder certifies must decode to exactly the mask
    /// both full decoders produce — across distances, noise strengths, and
    /// random syndromes. This is the per-shot form of the two-tier
    /// equivalence contract: `Some(mask)` is a proof, never a heuristic.
    #[test]
    fn predecoder_certifications_match_full_decoders(
        d_idx in 0usize..3,
        p_milli in 1u32..6,
        seed in 0u64..10_000,
    ) {
        let d = [3usize, 5, 7][d_idx];
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p_milli as f64 * 1e-3),
            d,
            MemoryBasis::Z,
        );
        let graph = graph_for_circuit(&mem.circuit);
        let mut pre = Predecoder::new(&graph);
        let mut uf = UnionFindDecoder::new(graph.clone());
        let mut mwpm = MwpmDecoder::new(graph);
        let mut sampler = FrameSampler::new(&mem.circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = SparseBatch::new();
        for _ in 0..4 {
            let ev = sampler.sample_batch(&mut rng);
            sparse.extract(&ev);
            for s in 0..BATCH {
                let defects = sparse.defects(s);
                if let Some(mask) = pre.predecode(defects) {
                    prop_assert_eq!(mask, uf.decode(defects), "UF d={} {:?}", d, defects);
                    prop_assert_eq!(mask, mwpm.decode(defects), "MWPM d={} {:?}", d, defects);
                }
            }
        }
    }

    /// The engine with the fast path enabled reports the same logical
    /// estimate as with `Tiered::without_predecode`, for both decoder
    /// backends — the predecoder changes timings and tier counters, never
    /// results.
    #[test]
    fn tiered_engine_matches_plain_engine(
        d_idx in 0usize..3,
        p_milli in 1u32..6,
        seed in 0u64..1_000,
    ) {
        let d = [3usize, 5, 7][d_idx];
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p_milli as f64 * 1e-3),
            d,
            MemoryBasis::Z,
        );
        let compiled = CompiledCircuit::new(&mem.circuit);
        let graph = graph_for_circuit(&mem.circuit);
        let uf_opts = SampleOptions {
            min_shots: 2_000,
            ..Default::default()
        };
        let on = LerEngine::new(2).estimate(
            &compiled,
            &Tiered::new(&graph, {
                let graph = graph.clone();
                move || UnionFindDecoder::new(graph.clone())
            }),
            uf_opts,
            seed,
        );
        let off = LerEngine::new(2).estimate(
            &compiled,
            &Tiered::without_predecode({
                let graph = graph.clone();
                move || UnionFindDecoder::new(graph.clone())
            }),
            uf_opts,
            seed,
        );
        prop_assert_eq!(on.estimate, off.estimate, "UF backend d={}", d);
        prop_assert_eq!(off.predecoded_shots, 0);
        prop_assert_eq!(
            on.tier0_shots + on.predecoded_shots + on.residual_shots,
            on.estimate.shots
        );

        let mwpm_opts = SampleOptions {
            min_shots: 1_000,
            ..Default::default()
        };
        let on = LerEngine::new(2).estimate(
            &compiled,
            &Tiered::new(&graph, {
                let graph = graph.clone();
                move || MwpmDecoder::new(graph.clone())
            }),
            mwpm_opts,
            seed,
        );
        let off = LerEngine::new(2).estimate(
            &compiled,
            &Tiered::without_predecode({
                let graph = graph.clone();
                move || MwpmDecoder::new(graph.clone())
            }),
            mwpm_opts,
            seed,
        );
        prop_assert_eq!(on.estimate, off.estimate, "MWPM backend d={}", d);
    }

    /// Dense-regime contract: flood-decomposing a dense shot into
    /// independent clusters, peeling the certified ones, and decoding the
    /// residual union with the union-find decoder produces exactly the mask
    /// the monolithic union-find decoder produces on the whole defect list
    /// — the decomposition is a decoder *variant*, not an approximation.
    /// Against exact MWPM the comparison is statistical (same treatment as
    /// `union_find_matches_mwpm_on_most_syndromes`): exact matching admits
    /// degenerate equal-weight optima with different observable masks, so
    /// decomposed-MWPM and monolithic-MWPM may legitimately pick different
    /// ones on a small fraction of shots.
    #[test]
    fn cluster_decomposed_decode_matches_monolithic_decoders(
        d_idx in 0usize..2,
        p_milli in 5u32..9,
        seed in 0u64..10_000,
    ) {
        let d = [7usize, 9][d_idx];
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p_milli as f64 * 1e-3),
            d,
            MemoryBasis::Z,
        );
        let graph = graph_for_circuit(&mem.circuit);
        let mut tier = ClusterTier::new(&graph);
        let mut uf = UnionFindDecoder::new(graph.clone());
        let mut mwpm = MwpmDecoder::new(graph);
        let mut sampler = FrameSampler::new(&mem.circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = SparseBatch::new();
        let mut dense_seen = 0usize;
        let mut mwpm_agreed = 0usize;
        for _ in 0..4 {
            let ev = sampler.sample_batch(&mut rng);
            sparse.extract(&ev);
            for s in 0..BATCH {
                let defects: Vec<usize> = sparse.defects(s).to_vec();
                if defects.len() <= MAX_CLUSTER_DEFECTS {
                    continue;
                }
                dense_seen += 1;
                let out = tier.decompose(&defects);
                let residual: Vec<usize> = tier.residual_defects().to_vec();
                prop_assert_eq!(
                    out.peeled_defects as usize + residual.len(),
                    defects.len(),
                    "decomposition partitions the defects, d={}",
                    d
                );
                let uf_mask = if residual.is_empty() {
                    out.mask
                } else {
                    out.mask ^ uf.decode(&residual)
                };
                prop_assert_eq!(uf_mask, uf.decode(&defects), "UF d={} {:?}", d, defects);
                let mwpm_mask = if residual.is_empty() {
                    out.mask
                } else {
                    out.mask ^ mwpm.decode(&residual)
                };
                if mwpm_mask == mwpm.decode(&defects) {
                    mwpm_agreed += 1;
                }
            }
        }
        // At these noise strengths the dense regime is the common case;
        // a run that never exercised it would be vacuous.
        prop_assert!(dense_seen > 0, "no dense shots at d={} p={}e-3", d, p_milli);
        prop_assert!(
            mwpm_agreed * 10 >= dense_seen * 9,
            "decomposed MWPM agreed on only {}/{} dense shots (d={})",
            mwpm_agreed, dense_seen, d
        );
    }
}

/// Golden fingerprints: the engine's `(shots, failures)` at a pinned seed
/// must be bit-identical with the cluster tier on and off, and must match
/// the recorded values — any drift in the sampler's RNG schedule, the tier
/// dispatch, or the decomposition itself shows up here as a diff against
/// the goldens, not as a silent statistical shift.
#[test]
fn golden_engine_fingerprints_cluster_on_off() {
    // (d, p, min_shots, golden shots, golden failures)
    const GOLDENS: [(usize, f64, usize, usize, usize); 3] = [
        (7, 3e-3, 4_096, 4_096, 10),
        (11, 1e-3, 2_048, 2_048, 0),
        (15, 1e-3, 1_024, 1_024, 0),
    ];
    for (d, p, min_shots, want_shots, want_failures) in GOLDENS {
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p),
            d,
            MemoryBasis::Z,
        );
        let compiled = CompiledCircuit::new(&mem.circuit);
        let graph = graph_for_circuit(&mem.circuit);
        let opts = SampleOptions {
            min_shots,
            ..Default::default()
        };
        let on = LerEngine::new(2).estimate(
            &compiled,
            &Tiered::new(&graph, {
                let graph = graph.clone();
                move || UnionFindDecoder::new(graph.clone())
            })
            .with_cluster(),
            opts,
            0xF1E1D,
        );
        let off = LerEngine::new(2).estimate(
            &compiled,
            &Tiered::new(&graph, {
                let graph = graph.clone();
                move || UnionFindDecoder::new(graph.clone())
            }),
            opts,
            0xF1E1D,
        );
        assert_eq!(
            on.estimate, off.estimate,
            "d={d}: cluster on/off must be bit-identical"
        );
        assert_eq!(
            (on.estimate.shots, on.estimate.failures),
            (want_shots, want_failures),
            "d={d}: golden fingerprint drifted"
        );
        assert_eq!(
            on.tier0_shots + on.predecoded_shots + on.clustered_shots + on.residual_shots,
            on.estimate.shots,
            "d={d}: tier partition must cover every shot"
        );
        if d >= 11 {
            assert!(on.clustered_shots > 0, "d={d}: cluster tier never peeled");
        }
    }
}

#[test]
fn union_find_matches_mwpm_on_most_syndromes() {
    let mem = memory_circuit(
        &rotated_patch(3, 3),
        &NoiseModel::uniform(3e-3),
        3,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    let mut uf = UnionFindDecoder::new(graph.clone());
    let mut mwpm = MwpmDecoder::new(graph);
    let mut sampler = FrameSampler::new(&mem.circuit);
    let mut rng = StdRng::seed_from_u64(3);

    let mut decoded = 0usize;
    let mut agreed = 0usize;
    for _ in 0..200 {
        let ev = sampler.sample_batch(&mut rng);
        for s in 0..BATCH {
            let defects: Vec<usize> = ev
                .detectors
                .iter()
                .enumerate()
                .filter(|(_, w)| (*w >> s) & 1 == 1)
                .map(|(i, _)| i)
                .collect();
            if defects.is_empty() {
                continue;
            }
            decoded += 1;
            if uf.decode(&defects) == mwpm.decode(&defects) {
                agreed += 1;
            }
        }
    }
    assert!(decoded > 100, "not enough nontrivial syndromes ({decoded})");
    let agreement = agreed as f64 / decoded as f64;
    assert!(
        agreement > 0.9,
        "UF/MWPM agreement only {agreement:.2} over {decoded} syndromes"
    );
}

#[test]
fn both_decoders_achieve_similar_ler() {
    let mem = memory_circuit(
        &rotated_patch(3, 3),
        &NoiseModel::uniform(3e-3),
        3,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    let opts = SampleOptions {
        min_shots: 100_000,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(4);
    let uf = estimate_ler(
        &mem.circuit,
        &mut UnionFindDecoder::new(graph.clone()),
        opts,
        &mut rng,
    );
    let mut rng = StdRng::seed_from_u64(4);
    let mwpm = estimate_ler(&mem.circuit, &mut MwpmDecoder::new(graph), opts, &mut rng);
    let (a, b) = (uf.per_shot(), mwpm.per_shot());
    assert!(a > 0.0 && b > 0.0);
    // Union-find is a constant factor behind exact matching at worst.
    assert!(a < b * 2.0 + 1e-4, "UF {a:e} vs MWPM {b:e}");
    assert!(b < a * 2.0 + 1e-4, "MWPM {b:e} vs UF {a:e}");
}

#[test]
fn trivial_syndrome_never_corrects() {
    let mem = memory_circuit(
        &rotated_patch(3, 3),
        &NoiseModel::uniform(1e-3),
        2,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    let mut uf = UnionFindDecoder::new(graph.clone());
    let mut mwpm = MwpmDecoder::new(graph);
    assert_eq!(uf.decode(&[]), 0);
    assert_eq!(mwpm.decode(&[]), 0);
}

#[test]
fn memory_x_basis_decodes_too() {
    // The X-basis experiment exercises the dual detector structure.
    let mem = memory_circuit(
        &rotated_patch(3, 3),
        &NoiseModel::uniform(2e-3),
        3,
        MemoryBasis::X,
    );
    let mut rng = StdRng::seed_from_u64(5);
    let est = estimate_ler(
        &mem.circuit,
        &mut UnionFindDecoder::new(graph_for_circuit(&mem.circuit)),
        SampleOptions {
            min_shots: 100_000,
            ..Default::default()
        },
        &mut rng,
    );
    assert!(est.per_shot() < 0.05, "X-memory LER {:e}", est.per_shot());
}

#[test]
fn exhaustive_single_error_correction() {
    // Distance-3 property: every single error mechanism in the circuit is
    // corrected, *up to syndrome degeneracy*: when two first-order mechanisms
    // share a detector signature but differ in logical effect (a boundary
    // artifact of the X-memory readout structure, see DESIGN.md), no decoder
    // can satisfy both — the graph resolves toward the more probable one and
    // the minority mass becomes a bounded additive LER floor.
    use caliqec_stab::extract_dem;
    use std::collections::HashMap;
    for (basis, label) in [(MemoryBasis::Z, "Z"), (MemoryBasis::X, "X")] {
        let mem = memory_circuit(&rotated_patch(3, 3), &NoiseModel::uniform(1e-3), 3, basis);
        let dem = extract_dem(&mem.circuit);
        // Group mechanisms by signature; the dominant one must decode right.
        let mut by_sig: HashMap<Vec<usize>, Vec<(f64, u64)>> = HashMap::new();
        for mech in &dem.mechanisms {
            if mech.detectors.len() > 2 {
                continue; // hyperedges decompose; their pieces are covered
            }
            let sig: Vec<usize> = mech.detectors.iter().map(|d| d.0 as usize).collect();
            by_sig
                .entry(sig)
                .or_default()
                .push((mech.probability, mech.observables));
        }
        let graph = graph_for_circuit(&mem.circuit);
        let mut uf = UnionFindDecoder::new(graph.clone());
        let mut mwpm = MwpmDecoder::new(graph);
        let mut checked = 0usize;
        let mut total_mass = 0.0f64;
        let mut mwpm_missed_mass = 0.0f64;
        let mut uf_missed_mass = 0.0f64;
        let mut minority_mass = 0.0f64;
        for (sig, mechs) in &by_sig {
            let (dom_p, dom_obs) = mechs
                .iter()
                .copied()
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
                .expect("nonempty group");
            minority_mass += mechs
                .iter()
                .filter(|&&(_, o)| o != dom_obs)
                .map(|&(p, _)| p)
                .sum::<f64>();
            checked += 1;
            total_mass += dom_p;
            if mwpm.decode(sig) != dom_obs {
                mwpm_missed_mass += dom_p;
            }
            if uf.decode(sig) != dom_obs {
                uf_missed_mass += dom_p;
            }
        }
        assert!(checked > 40, "{label}-memory: only {checked} signatures");
        // Decomposition-based matching (like Stim+PyMatching) does not
        // guarantee every individual mechanism decodes to its own mask, but
        // the probability-weighted miss mass must stay tiny or the LER would
        // have an O(p) floor.
        assert!(
            mwpm_missed_mass < 0.02 * total_mass,
            "{label}-memory: MWPM missed {mwpm_missed_mass:e} of {total_mass:e}"
        );
        assert!(
            uf_missed_mass < 0.05 * total_mass,
            "{label}-memory: UF missed {uf_missed_mass:e} of {total_mass:e}"
        );
        // The irreducible degeneracy floor stays far below the physical rate.
        assert!(
            minority_mass < 5e-3,
            "{label}-memory: degenerate minority mass {minority_mass:e}"
        );
    }
}
