//! Validation of the calibration-aware reweighting pipeline:
//!
//! - incremental [`MatchingGraph::reweight`] versus a from-scratch rebuild
//!   ([`DetectorErrorModel::reweighted`] + [`MatchingGraph::from_dem`]) —
//!   same CSR topology, probability and weight bits identical, on random
//!   circuits and rate tables;
//! - identity-rate-table reweighting leaves engine output bit-identical to
//!   the golden fingerprints of `sparse_decode_validation.rs` — the
//!   reweight machinery is exact, not merely approximately right;
//! - decoder invalidation hooks: a warmed [`MwpmDecoder`] reweighted in
//!   place must agree with a cold decoder on the drifted graph (its
//!   Dijkstra cache is weight-dependent), and likewise the scratch-reusing
//!   [`UnionFindDecoder`] (its growth/weight array caches edge weights);
//! - [`Predecoder::is_current_for`] goes stale exactly when the graph's
//!   weight epoch moves.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, Decoder, EpochSchedule, LerEngine, MatchingGraph, MwpmDecoder, Predecoder,
    SampleOptions, Tiered, UnionFindDecoder,
};
use caliqec_stab::{extract_dem, CompiledCircuit, FrameSampler, RateTable, SparseBatch, BATCH};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small surface-code memory circuit: the realistic syndrome source.
fn memory(d: usize, p: f64, rounds: usize) -> caliqec_code::MemoryCircuit {
    memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(p),
        rounds,
        MemoryBasis::Z,
    )
}

/// Asserts that two graphs share their CSR topology and carry bit-identical
/// probabilities and weights. Observable masks are deliberately excluded:
/// reweighting freezes each edge's observable resolution at extraction
/// time, while a fresh build re-resolves it under the drifted
/// probabilities — by design (see DESIGN.md §10).
fn assert_weights_bit_identical(got: &MatchingGraph, want: &MatchingGraph, ctx: &str) {
    assert_eq!(got.num_nodes(), want.num_nodes(), "{ctx}: node count");
    assert_eq!(got.edges().len(), want.edges().len(), "{ctx}: edge count");
    for (i, (a, b)) in got.edges().iter().zip(want.edges()).enumerate() {
        assert_eq!((a.u, a.v), (b.u, b.v), "{ctx}: edge {i} endpoints");
        assert_eq!(
            a.probability.to_bits(),
            b.probability.to_bits(),
            "{ctx}: edge {i} probability {} vs {}",
            a.probability,
            b.probability
        );
        assert_eq!(
            a.weight.to_bits(),
            b.weight.to_bits(),
            "{ctx}: edge {i} weight {} vs {}",
            a.weight,
            b.weight
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incrementally reweighting a provenance-carrying graph produces the
    /// exact bits a from-scratch rebuild from the reweighted DEM produces,
    /// for random circuits, uniform drift levels, and per-source
    /// overrides.
    #[test]
    fn incremental_reweight_matches_fresh_rebuild(
        d_idx in 0usize..2,
        rounds in 1usize..4,
        p_milli in 1u32..30,
        drift_tenth_milli in 1u32..400,
        overrides in 0usize..6,
        override_rate_tenth_milli in 1u32..400,
    ) {
        let d = [3usize, 5][d_idx];
        let mem = memory(d, p_milli as f64 * 1e-3, rounds);
        let dem = extract_dem(&mem.circuit);
        let mut rates = RateTable::uniform(drift_tenth_milli as f64 * 1e-4);
        for source in dem.sources.iter().take(overrides) {
            rates.set(*source, override_rate_tenth_milli as f64 * 1e-4);
        }

        let mut incremental = MatchingGraph::from_dem(&dem);
        incremental.reweight(&rates).expect("graph carries provenance");
        let fresh = MatchingGraph::from_dem(&dem.reweighted(&rates));
        assert_weights_bit_identical(&incremental, &fresh, "proptest");
        prop_assert_eq!(incremental.weight_epoch(), 1);
        prop_assert!(incremental.validate().is_ok());
    }

    /// Reweighting a warmed decoder in place agrees with a cold decoder
    /// built over the drifted graph — the MWPM Dijkstra cache and the
    /// union-find growth/weight scratch are invalidated, not leaked.
    #[test]
    fn warmed_decoders_agree_after_reweight(
        p_milli in 1u32..20,
        drift_milli in 1u32..40,
        seed in 0u64..1_000,
    ) {
        let mem = memory(3, p_milli as f64 * 1e-3, 3);
        let graph = graph_for_circuit(&mem.circuit);
        let rates = RateTable::uniform(drift_milli as f64 * 1e-3);
        let mut drifted = graph.clone();
        drifted.reweight(&rates).expect("graph carries provenance");

        let mut mwpm = MwpmDecoder::new(graph.clone());
        let mut uf = UnionFindDecoder::new(graph.clone());
        let mut sampler = FrameSampler::new(&mem.circuit);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = SparseBatch::new();
        // Warm both decoders (fills the MWPM shortest-path-tree cache and
        // dirties the union-find scratch) on one batch...
        let ev = sampler.sample_batch(&mut rng);
        sparse.extract(&ev);
        for s in 0..BATCH {
            mwpm.decode(sparse.defects(s));
            uf.decode(sparse.defects(s));
        }
        // ...then reweight in place and check against cold oracles.
        mwpm.reweight(&rates).expect("graph carries provenance");
        uf.reweight(&rates).expect("graph carries provenance");
        let mut cold_mwpm = MwpmDecoder::without_cache(drifted.clone());
        let mut cold_uf = UnionFindDecoder::new(drifted.clone());
        let ev = sampler.sample_batch(&mut rng);
        sparse.extract(&ev);
        for s in 0..BATCH {
            let defects = sparse.defects(s);
            prop_assert_eq!(mwpm.decode(defects), cold_mwpm.decode(defects));
            prop_assert_eq!(uf.decode(defects), cold_uf.decode(defects));
        }
    }
}

/// Identity-rate-table reweighting must leave engine output bit-identical
/// to the golden fingerprints (the same table as
/// `sparse_decode_validation.rs`, re-captured under the per-batch seed
/// schedule): recording provenance and replaying the probability folds is
/// exact.
#[test]
fn identity_reweight_preserves_engine_fingerprints() {
    struct Case {
        d: usize,
        p: f64,
        min_shots: usize,
        seed: u64,
        uf_expect: (usize, usize),
    }
    let cases = [
        Case {
            d: 3,
            p: 3e-3,
            min_shots: 20_000,
            seed: 0xABCD,
            uf_expect: (20_032, 315),
        },
        Case {
            d: 5,
            p: 2e-3,
            min_shots: 10_000,
            seed: 0xBEEF,
            uf_expect: (10_048, 31),
        },
        Case {
            d: 7,
            p: 3e-3,
            min_shots: 5_000,
            seed: 0xCAFE,
            uf_expect: (5_056, 11),
        },
    ];
    for Case {
        d,
        p,
        min_shots,
        seed,
        uf_expect,
    } in cases
    {
        let mem = memory(d, p, d);
        let compiled = CompiledCircuit::new(&mem.circuit);
        let mut graph = graph_for_circuit(&mem.circuit);
        graph
            .reweight(&RateTable::identity())
            .expect("graph carries provenance");
        assert_eq!(graph.weight_epoch(), 1, "reweight must bump the epoch");
        let opts = SampleOptions {
            min_shots,
            ..Default::default()
        };
        for threads in [1usize, 2] {
            let run = LerEngine::new(threads).estimate(
                &compiled,
                &|| UnionFindDecoder::new(graph.clone()),
                opts,
                seed,
            );
            assert_eq!(
                (run.estimate.shots, run.estimate.failures),
                uf_expect,
                "identity-reweighted UF d={d} threads={threads}"
            );
            let tiered = LerEngine::new(threads).estimate(
                &compiled,
                &Tiered::new(&graph, {
                    let graph = graph.clone();
                    move || UnionFindDecoder::new(graph.clone())
                }),
                opts,
                seed,
            );
            assert_eq!(
                (tiered.estimate.shots, tiered.estimate.failures),
                uf_expect,
                "identity-reweighted tiered UF d={d} threads={threads}"
            );
            // The calibration-epoch entry point with an identity schedule
            // is the same computation again.
            let epoch_run = LerEngine::new(threads).estimate_epochs(
                &compiled,
                &graph,
                &|g: &MatchingGraph| UnionFindDecoder::new(g.clone()),
                &EpochSchedule::new(1.0),
                opts,
                seed,
            );
            assert_eq!(
                (epoch_run.estimate.shots, epoch_run.estimate.failures),
                uf_expect,
                "identity epoch run d={d} threads={threads}"
            );
            assert_eq!(epoch_run.epochs, 1);
        }
    }
}

/// The predecoder knows when its weight-derived tables went stale.
#[test]
fn predecoder_staleness_tracks_weight_epoch() {
    let mem = memory(3, 2e-3, 3);
    let mut graph = graph_for_circuit(&mem.circuit);
    let pre = Predecoder::new(&graph);
    assert!(pre.is_current_for(&graph));
    graph
        .reweight(&RateTable::uniform(4e-3))
        .expect("graph carries provenance");
    assert!(
        !pre.is_current_for(&graph),
        "reweighting must invalidate predecoder tables"
    );
    let rebuilt = Predecoder::new(&graph);
    assert!(rebuilt.is_current_for(&graph));
}
