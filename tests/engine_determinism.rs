//! Workspace-level determinism tests of the parallel Monte-Carlo LER
//! engine: the same base seed produces a bit-identical [`LerEstimate`] at
//! any thread count (with and without early stopping), the serial
//! `estimate_ler` wrapper agrees with the engine, and a property test
//! cross-checks the engine against the serial reference on random
//! repetition-code circuits.
//!
//! [`LerEstimate`]: caliqec_match::LerEstimate

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, MemoryCircuit, NoiseModel};
use caliqec_match::{
    estimate_ler, estimate_ler_seeded, graph_for_circuit, LerEngine, SampleOptions,
    UnionFindDecoder,
};
use caliqec_stab::{Basis, Circuit, CompiledCircuit, Noise1};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn d5_memory(p: f64) -> MemoryCircuit {
    memory_circuit(
        &rotated_patch(5, 5),
        &NoiseModel::uniform(p),
        5,
        MemoryBasis::Z,
    )
}

/// Distance-n repetition code, single round, X noise (mirrors the decoder
/// test fixtures).
fn rep_circuit(n: usize, p: f64) -> Circuit {
    let data: Vec<u32> = (0..n as u32).collect();
    let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
    let mut c = Circuit::new(2 * n - 1);
    c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
    c.noise1(Noise1::XError, p, &data);
    for i in 0..n - 1 {
        c.cx(data[i], anc[i]);
        c.cx(data[i + 1], anc[i]);
    }
    let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
    for m in &ms {
        c.detector(&[*m]);
    }
    let md = c.measure(data[0], Basis::Z, 0.0);
    c.observable(0, &[md]);
    c
}

#[test]
fn same_seed_same_estimate_across_thread_counts() {
    let mem = d5_memory(2e-3);
    let compiled = CompiledCircuit::new(&mem.circuit);
    let graph = graph_for_circuit(&mem.circuit);
    let opts = SampleOptions {
        min_shots: 2048,
        ..Default::default()
    };
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            LerEngine::new(threads)
                .estimate(
                    &compiled,
                    &|| UnionFindDecoder::new(graph.clone()),
                    opts,
                    0xD5,
                )
                .estimate
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads");
    assert_eq!(runs[0], runs[2], "1 vs 8 threads");
    assert_eq!(runs[0].shots, 2048);
}

#[test]
fn early_stop_same_result_across_thread_counts() {
    // Noise well above threshold so the failure budget trips quickly.
    let mem = d5_memory(3e-2);
    let compiled = CompiledCircuit::new(&mem.circuit);
    let graph = graph_for_circuit(&mem.circuit);
    let opts = SampleOptions {
        min_shots: 64,
        max_failures: 8,
        max_shots: 64 * 1024,
    };
    let mut decoder = UnionFindDecoder::new(graph.clone());
    let serial = estimate_ler_seeded(&compiled, &mut decoder, opts, 99);
    assert!(serial.failures >= 8, "early stop never engaged");
    assert!(serial.shots < 64 * 1024, "ran the full budget");
    for threads in [1usize, 2, 8] {
        let run = LerEngine::new(threads).estimate(
            &compiled,
            &|| UnionFindDecoder::new(graph.clone()),
            opts,
            99,
        );
        assert_eq!(run.estimate, serial, "threads={threads}");
    }
}

#[test]
fn estimate_ler_wrapper_matches_engine() {
    let mem = d5_memory(2e-3);
    let graph = graph_for_circuit(&mem.circuit);
    let opts = SampleOptions {
        min_shots: 1024,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(17);
    let mut decoder = UnionFindDecoder::new(graph.clone());
    let wrapper = estimate_ler(&mem.circuit, &mut decoder, opts, &mut rng);

    // The wrapper draws one u64 base seed from its RNG and delegates;
    // replaying that draw must reproduce its result on the engine at any
    // thread count.
    let mut rng = StdRng::seed_from_u64(17);
    let base_seed: u64 = rng.random();
    let compiled = CompiledCircuit::new(&mem.circuit);
    for threads in [1usize, 4] {
        let run = LerEngine::new(threads).estimate(
            &compiled,
            &|| UnionFindDecoder::new(graph.clone()),
            opts,
            base_seed,
        );
        assert_eq!(run.estimate, wrapper, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The parallel engine and the serial reference decode identical shot
    /// streams for arbitrary small repetition codes, noise rates, seeds,
    /// and worker counts.
    #[test]
    fn engine_matches_serial_on_random_circuits(
        n in 2usize..6,
        p in 0.01f64..0.4,
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let c = rep_circuit(n, p);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions { min_shots: 512, ..Default::default() };
        let mut decoder = UnionFindDecoder::new(graph.clone());
        let serial = estimate_ler_seeded(&compiled, &mut decoder, opts, seed);
        let run = LerEngine::new(threads).estimate(
            &compiled,
            &|| UnionFindDecoder::new(graph.clone()),
            opts,
            seed,
        );
        prop_assert_eq!(run.estimate, serial);
    }
}
