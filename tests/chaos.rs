//! Chaos suite for the hardened LER engine: every injectable fault kind
//! must be recovered on the degradation ladder with a bit-identical
//! logical-error estimate and honest accounting in [`EngineRun`], and a
//! fault-free run must report zero faults.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, EngineRun, FaultKind, FaultPlan, LerEngine, SampleOptions, Tiered,
    UnionFindDecoder,
};
use caliqec_obs::{EventKind, ObsSink, Snapshot};
use caliqec_stab::CompiledCircuit;
use std::sync::Once;

/// Silences the default panic hook for the engine's named worker threads,
/// so the injected (caught and retried) panics don't spray backtraces over
/// the test output. Panics on any other thread still print normally.
fn quiet_worker_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("caliqec-ler-"));
            if !worker {
                default_hook(info);
            }
        }));
    });
}

/// A small d = 3 memory workload plus the tiered union-find factory the
/// production pipeline uses (its fallback graph enables all three ladder
/// rungs).
fn workload() -> (
    CompiledCircuit,
    Tiered<impl Fn() -> UnionFindDecoder + Sync>,
) {
    let mem = memory_circuit(
        &rotated_patch(3, 3),
        &NoiseModel::uniform(3e-3),
        3,
        MemoryBasis::Z,
    );
    let compiled = CompiledCircuit::new(&mem.circuit);
    let graph = graph_for_circuit(&mem.circuit);
    let factory = Tiered::new(&graph, {
        let graph = graph.clone();
        move || UnionFindDecoder::new(graph.clone())
    });
    (compiled, factory)
}

const OPTS: SampleOptions = SampleOptions {
    min_shots: 2_000,
    max_failures: 0,
    max_shots: 0,
};
const SEED: u64 = 0xC4A05;

fn run_clean() -> EngineRun {
    let (compiled, factory) = workload();
    LerEngine::new(2).estimate(&compiled, &factory, OPTS, SEED)
}

fn run_with(plan: FaultPlan, threads: usize) -> EngineRun {
    let (compiled, factory) = workload();
    LerEngine::new(threads)
        .with_faults(plan)
        .try_estimate(&compiled, &factory, OPTS, SEED)
        .expect("engine must recover injected faults on the ladder")
}

fn run_observed(plan: FaultPlan, threads: usize) -> (EngineRun, Snapshot) {
    let (compiled, factory) = workload();
    let sink = ObsSink::enabled();
    let run = LerEngine::new(threads)
        .with_faults(plan)
        .with_obs(sink.clone())
        .try_estimate(&compiled, &factory, OPTS, SEED)
        .expect("engine must recover injected faults on the ladder");
    (run, sink.snapshot())
}

#[test]
fn every_injection_kind_recovers_bit_identically() {
    quiet_worker_panics();
    let clean = run_clean();
    let kinds = [
        (FaultPlan::new().panic_at(0), FaultKind::Panic),
        (FaultPlan::new().stall_at(1), FaultKind::Stall),
        (
            FaultPlan::new().corrupt_defects_at(0),
            FaultKind::CorruptDefects,
        ),
        (FaultPlan::new().bad_weights_at(2), FaultKind::BadWeights),
        (
            FaultPlan::new().cluster_panic_at(1),
            FaultKind::ClusterPanic,
        ),
    ];
    for (plan, kind) in kinds {
        let chaos = run_with(plan, 2);
        assert_eq!(
            (chaos.estimate.shots, chaos.estimate.failures),
            (clean.estimate.shots, clean.estimate.failures),
            "{kind}: estimate must be bit-identical to the clean run"
        );
        assert_eq!(chaos.faulted_chunks, 1, "{kind}: one injection, one fault");
        assert_eq!(chaos.retried_chunks, 1, "{kind}: every fault retries once");
        assert!(chaos.degraded(), "{kind}: run must admit it degraded");
        assert!(chaos.degraded_shots > 0, "{kind}");
        assert_eq!(chaos.rung_chunks[1], 1, "{kind}: retry lands on rung 1");
        let (panics, stalls, graphs) = match kind {
            FaultKind::Panic | FaultKind::CorruptDefects | FaultKind::ClusterPanic => (1, 0, 0),
            FaultKind::Stall => (0, 1, 0),
            FaultKind::BadWeights => (0, 0, 1),
            streaming => unreachable!("batch chaos suite injected {streaming}"),
        };
        assert_eq!(
            (chaos.panic_faults, chaos.stall_faults, chaos.graph_faults),
            (panics, stalls, graphs),
            "{kind}: per-kind accounting"
        );
    }
}

#[test]
fn faults_off_reports_zero_faulted_chunks() {
    quiet_worker_panics();
    let clean = run_clean();
    assert_eq!(clean.faulted_chunks, 0);
    assert_eq!(clean.retried_chunks, 0);
    assert_eq!(clean.degraded_shots, 0);
    assert_eq!(clean.rung_chunks[1], 0);
    assert_eq!(clean.rung_chunks[2], 0);
    assert!(!clean.degraded());

    // Arming an empty plan is the same as not arming at all.
    let (compiled, factory) = workload();
    let empty = LerEngine::new(2)
        .with_faults(FaultPlan::new())
        .try_estimate(&compiled, &factory, OPTS, SEED)
        .expect("empty plan cannot fault");
    assert_eq!(empty.faulted_chunks, 0);
    assert_eq!(
        (empty.estimate.shots, empty.estimate.failures),
        (clean.estimate.shots, clean.estimate.failures)
    );
}

#[test]
fn recovery_is_thread_count_independent() {
    quiet_worker_panics();
    let plan = FaultPlan::new().panic_at(0).corrupt_defects_at(2);
    let one = run_with(plan.clone(), 1);
    let many = run_with(plan, 4);
    assert_eq!(
        (one.estimate.shots, one.estimate.failures),
        (many.estimate.shots, many.estimate.failures),
        "ladder retries must not break thread-count determinism"
    );
    assert_eq!(one.faulted_chunks, 2);
    assert_eq!(many.faulted_chunks, 2);
    assert_eq!(one.faulted_chunks, one.retried_chunks);
    assert_eq!(many.faulted_chunks, many.retried_chunks);
}

#[test]
fn every_injected_fault_has_a_matching_journal_event() {
    quiet_worker_panics();
    let kinds = [
        (FaultPlan::new().panic_at(0), 0u32, "panic"),
        (FaultPlan::new().stall_at(1), 1, "stall"),
        (FaultPlan::new().corrupt_defects_at(0), 0, "panic"),
        (FaultPlan::new().bad_weights_at(2), 2, "invalid_graph"),
    ];
    for (plan, chunk, tag) in kinds {
        let (_run, snap) = run_observed(plan, 2);
        let faults: Vec<_> = snap
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Fault { kind, rung } => Some((e.chunk, kind, rung)),
                _ => None,
            })
            .collect();
        assert_eq!(
            faults,
            vec![(chunk, tag, 0u8)],
            "{tag}@{chunk}: exactly one fault event on rung 0"
        );
        let retries: Vec<_> = snap
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Retry { rung } => Some((e.chunk, rung)),
                _ => None,
            })
            .collect();
        assert_eq!(
            retries,
            vec![(chunk, 1u8)],
            "{tag}@{chunk}: the retry relaunches the faulted chunk on rung 1"
        );
        // The journal's retry must be ordered after its fault within the
        // chunk (same worker assigns both sequence numbers).
        let fault_pos = snap
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::Fault { .. }))
            .unwrap();
        let retry_pos = snap
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::Retry { .. }))
            .unwrap();
        assert!(fault_pos < retry_pos, "{tag}@{chunk}: fault before retry");
    }
}

#[test]
fn journal_counts_reconcile_with_run_accounting() {
    quiet_worker_panics();
    let plan = FaultPlan::new().panic_at(0).stall_at(1).bad_weights_at(3);
    let (run, snap) = run_observed(plan, 4);
    let count_kind = |want: &str| {
        snap.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Fault { kind, .. } if kind == want))
            .count()
    };
    assert_eq!(
        count_kind("panic") + count_kind("stall") + count_kind("invalid_graph"),
        run.faulted_chunks,
        "every fault in the run log appears in the journal"
    );
    assert_eq!(count_kind("panic"), run.panic_faults);
    assert_eq!(count_kind("stall"), run.stall_faults);
    assert_eq!(count_kind("invalid_graph"), run.graph_faults);
    let retries = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Retry { .. }))
        .count();
    assert_eq!(retries, run.retried_chunks);
    // Chunks finished per rung reconcile with the run's ladder counters.
    for rung in 0..3u8 {
        let finished = snap
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ChunkFinish { rung: r, .. } if r == rung))
            .count();
        assert_eq!(
            finished, run.rung_chunks[rung as usize],
            "rung {rung}: journal finishes match rung_chunks"
        );
    }
    // Snapshot counters agree with both views.
    assert_eq!(
        snap.counter("faults_panic") + snap.counter("faults_stall") + snap.counter("faults_graph"),
        run.faulted_chunks as u64
    );
    assert_eq!(snap.counter("retries"), run.retried_chunks as u64);
    assert_eq!(snap.counter("shots_degraded"), run.degraded_shots as u64);
    assert_eq!(snap.counter("chunks_finished"), run.chunks_executed as u64);
}

/// A denser d = 7 workload with the cluster tier enabled, so an injected
/// cluster-tier fault hits the machinery it claims to model (at 8e-3 a
/// sizable fraction of shots carry more than
/// `Predecoder::MAX_CERT_DEFECTS` defects and route through the tier).
fn cluster_workload() -> (
    CompiledCircuit,
    Tiered<impl Fn() -> UnionFindDecoder + Sync>,
) {
    let mem = memory_circuit(
        &rotated_patch(7, 7),
        &NoiseModel::uniform(8e-3),
        7,
        MemoryBasis::Z,
    );
    let compiled = CompiledCircuit::new(&mem.circuit);
    let graph = graph_for_circuit(&mem.circuit);
    let factory = Tiered::new(&graph, {
        let graph = graph.clone();
        move || UnionFindDecoder::new(graph.clone())
    })
    .with_cluster();
    (compiled, factory)
}

#[test]
fn faulted_cluster_decode_retries_down_the_ladder_bit_identically() {
    quiet_worker_panics();
    let (compiled, factory) = cluster_workload();
    let clean = LerEngine::new(2).estimate(&compiled, &factory, OPTS, SEED);
    assert!(
        clean.clustered_shots + clean.clusters_total as usize > 0,
        "workload must be dense enough for the cluster tier to fire"
    );
    assert_eq!(clean.faulted_chunks, 0);

    let (compiled, factory) = cluster_workload();
    let chaos = LerEngine::new(2)
        .with_faults(FaultPlan::parse("cluster@0").expect("cluster kind parses"))
        .try_estimate(&compiled, &factory, OPTS, SEED)
        .expect("a cluster-tier panic must be recovered on the ladder");
    assert_eq!(
        (chaos.estimate.shots, chaos.estimate.failures),
        (clean.estimate.shots, clean.estimate.failures),
        "rung-1 monolithic retry must reproduce the clean estimate bit-identically"
    );
    assert_eq!(chaos.faulted_chunks, 1);
    assert_eq!(chaos.panic_faults, 1, "cluster faults account as panics");
    assert_eq!(
        chaos.rung_chunks[1], 1,
        "the retry drops the tier and decodes the chunk monolithically on rung 1"
    );
    assert!(chaos.degraded());
    assert!(
        chaos.clustered_shots + chaos.clusters_total as usize
            <= clean.clustered_shots + clean.clusters_total as usize,
        "the rung-1 chunk contributes no clustered shots"
    );
}

#[test]
fn spec_grammar_round_trips_through_parse() {
    let plan =
        FaultPlan::parse("panic@0,stall@3,corrupt@1,badweights@7,cluster@5").expect("valid spec");
    assert_eq!(plan.injections().len(), 5);
    assert_eq!(plan.injection(3), Some(FaultKind::Stall));
    assert_eq!(plan.injection(5), Some(FaultKind::ClusterPanic));
    assert_eq!(plan.injection(6), None);
    assert!(FaultPlan::parse("panic@").is_err());
    assert!(FaultPlan::parse("meltdown@1").is_err());
}
