//! Cross-crate integration tests: the full CaliQEC pipeline from device
//! characterization to runtime execution, and the end-to-end
//! stabilizer-simulation path from layouts to decoded logical error rates.

use caliqec::{compile, run_runtime, CaliqecConfig, Preparation};
use caliqec_code::{
    code_distance, data_coord, memory_circuit, DeformInstruction, DeformedPatch, Lattice,
    MemoryBasis, NoiseModel, Side,
};
use caliqec_device::{DeviceConfig, DeviceModel};
use caliqec_match::{estimate_ler, graph_for_circuit, SampleOptions, UnionFindDecoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ler_of(layout: &caliqec_code::PatchLayout, p: f64, shots: usize, seed: u64) -> f64 {
    let mem = memory_circuit(layout, &NoiseModel::uniform(p), 3, MemoryBasis::Z);
    let mut decoder = UnionFindDecoder::new(graph_for_circuit(&mem.circuit));
    let mut rng = StdRng::seed_from_u64(seed);
    estimate_ler(
        &mem.circuit,
        &mut decoder,
        SampleOptions {
            min_shots: shots,
            ..Default::default()
        },
        &mut rng,
    )
    .per_shot()
}

#[test]
fn subthreshold_scaling_between_distances() {
    // Below threshold, d = 5 must beat d = 3; above it, the ordering breaks.
    let p_low = 2e-3;
    let d3 = ler_of(&caliqec_code::rotated_patch(3, 3), p_low, 200_000, 1);
    let d5 = ler_of(&caliqec_code::rotated_patch(5, 5), p_low, 200_000, 2);
    assert!(d3 > 0.0, "d=3 LER should be measurable at p=2e-3");
    assert!(
        d5 < d3,
        "sub-threshold suppression violated: d5 {d5:e} !< d3 {d3:e}"
    );
}

#[test]
fn deformation_hurts_and_enlargement_heals() {
    let p = 3e-3;
    let d = 5;
    let pristine = ler_of(&caliqec_code::rotated_patch(d, d), p, 150_000, 3);

    // Punch a hole: distance 5 -> ~4, LER worsens.
    let mut patch = DeformedPatch::new(Lattice::Square, d, d);
    patch
        .apply(DeformInstruction::DataQRm {
            qubit: data_coord(2, 2),
        })
        .unwrap();
    let hurt_layout = patch.layout().unwrap();
    assert!(code_distance(&hurt_layout).min() < d);
    let hurt = ler_of(&hurt_layout, p, 150_000, 4);
    assert!(
        hurt > pristine,
        "isolation should cost logical fidelity: {hurt:e} !> {pristine:e}"
    );

    // Enlarge until the distance is back: LER recovers most of the loss.
    for side in [Side::Right, Side::Bottom, Side::Right, Side::Bottom] {
        if code_distance(&patch.layout().unwrap()).min() >= d {
            break;
        }
        patch.apply(DeformInstruction::PatchQAd { side }).unwrap();
    }
    let healed_layout = patch.layout().unwrap();
    assert!(code_distance(&healed_layout).min() >= d);
    let healed = ler_of(&healed_layout, p, 150_000, 5);
    assert!(
        healed < hurt,
        "enlargement should recover fidelity: {healed:e} !< {hurt:e}"
    );
}

#[test]
fn heavy_hex_pipeline_end_to_end() {
    // Heavy-hex layout -> memory circuit -> DEM -> decode, with a bridge
    // ancilla removed mid-way.
    let mut patch = DeformedPatch::new(Lattice::HeavyHex, 3, 3);
    let layout = patch.layout().unwrap();
    let stab = layout
        .stabilizers
        .iter()
        .find(|s| s.weight() == 4)
        .expect("interior stabilizer");
    let caliqec_code::Readout::Chain { parts } = &stab.readout else {
        panic!("heavy-hex uses chains")
    };
    let mid = parts[0].chain[3];
    patch
        .apply(DeformInstruction::AncQRmHorDeg2 { ancilla: mid })
        .unwrap();
    let deformed = patch.layout().unwrap();
    let ler = ler_of(&deformed, 1e-3, 100_000, 6);
    // Just shy of a smoke test: the split-gauge circuit must decode sanely
    // (an undecodable structure would yield ~50% failure).
    assert!(ler < 0.1, "split-gauge heavy-hex decodes badly: {ler}");
}

#[test]
fn full_pipeline_keeps_patch_protected() {
    let mut rng = StdRng::seed_from_u64(11);
    let device = DeviceModel::synthetic(
        &DeviceConfig {
            rows: 5,
            cols: 5,
            ..DeviceConfig::default()
        },
        &mut rng,
    );
    let config = CaliqecConfig {
        distance: 5,
        ..CaliqecConfig::default()
    };
    let prep = Preparation::run(&device, &mut rng);
    let plan = compile(&device, &prep, &config, &mut rng);
    let horizon = 48.0;
    let with = run_runtime(&device, Some(&plan), &config, horizon, 96);
    let without = run_runtime(&device, None, &config, horizon, 96);
    // The paper's headline: with in-situ calibration the LER stays bounded,
    // without it the run is lost.
    assert!(with.calibrations > 0);
    assert!(
        with.peak_ler() < without.peak_ler(),
        "calibration must bound the LER: {:e} !< {:e}",
        with.peak_ler(),
        without.peak_ler()
    );
    assert!(without.exceedance_fraction() > 0.5);
}

#[test]
fn runtime_qubit_overhead_is_temporary_and_modest() {
    let mut rng = StdRng::seed_from_u64(17);
    let device = DeviceModel::synthetic(
        &DeviceConfig {
            rows: 5,
            cols: 5,
            ..DeviceConfig::default()
        },
        &mut rng,
    );
    let config = CaliqecConfig {
        distance: 5,
        ..CaliqecConfig::default()
    };
    let prep = Preparation::run(&device, &mut rng);
    let plan = compile(&device, &prep, &config, &mut rng);
    let report = run_runtime(&device, Some(&plan), &config, 24.0, 120);
    let baseline = report.trace.first().unwrap().physical_qubits;
    // Extra qubits only appear during calibration windows and stay bounded
    // (the paper reports ~14% for Δd-compensated enlargement at d=11; small
    // patches pay relatively more per enlargement step).
    assert!(report.max_physical_qubits >= baseline);
    assert!(
        report.max_physical_qubits as f64 <= baseline as f64 * 3.0,
        "enlargement overhead exploded: {} vs {}",
        report.max_physical_qubits,
        baseline
    );
    let quiet_points = report
        .trace
        .iter()
        .filter(|p| p.calibrating == 0 && p.physical_qubits == baseline)
        .count();
    assert!(quiet_points > 0, "patch never returns to baseline size");
}
