//! Workspace-level proof that observability is passive: the engine's
//! golden fingerprints — estimate, defect histogram, and per-tier shot
//! counters — are bit-identical with the sink enabled or disabled, across
//! decoders (tiered union-find, MWPM), thread counts (1/2/8), and both
//! entry points (single-graph `estimate` and the epoch-schedule
//! `estimate_epochs`). The journal itself is deterministic across thread
//! counts, and the Prometheus rendering passes a line-format sanity
//! parser.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, EngineRun, EpochSchedule, LerEngine, MatchingGraph, MwpmDecoder,
    SampleOptions, Tiered, UnionFindDecoder, DEFECT_HIST_BUCKETS,
};
use caliqec_obs::{render_prometheus, ObsSink};
use caliqec_stab::{CompiledCircuit, RateTable};

fn workload(d: usize) -> (CompiledCircuit, MatchingGraph) {
    let mem = memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(3e-3),
        d,
        MemoryBasis::Z,
    );
    (
        CompiledCircuit::new(&mem.circuit),
        graph_for_circuit(&mem.circuit),
    )
}

const OPTS: SampleOptions = SampleOptions {
    min_shots: 2_000,
    max_failures: 0,
    max_shots: 0,
};
const SEED: u64 = 0x0B5;

/// Everything the engine computes deterministically: if two runs agree on
/// this, they decoded the same shots the same way.
type Fingerprint = (
    usize,
    usize,
    [u64; DEFECT_HIST_BUCKETS],
    usize,
    usize,
    usize,
);

fn fingerprint(run: &EngineRun) -> Fingerprint {
    (
        run.estimate.shots,
        run.estimate.failures,
        run.defect_histogram,
        run.tier0_shots,
        run.predecoded_shots,
        run.residual_shots,
    )
}

#[test]
fn tiered_union_find_fingerprints_identical_obs_on_off() {
    let (compiled, graph) = workload(3);
    let factory = Tiered::new(&graph, {
        let graph = graph.clone();
        move || UnionFindDecoder::new(graph.clone())
    });
    let mut prints = Vec::new();
    for threads in [1usize, 2, 8] {
        for sink in [ObsSink::disabled(), ObsSink::enabled()] {
            let enabled = sink.is_enabled();
            let run = LerEngine::new(threads)
                .with_obs(sink)
                .estimate(&compiled, &factory, OPTS, SEED);
            prints.push((threads, enabled, fingerprint(&run)));
        }
    }
    let golden = &prints[0].2;
    for (threads, enabled, print) in &prints {
        assert_eq!(
            print, golden,
            "threads={threads} obs_enabled={enabled}: fingerprint drifted"
        );
    }
}

#[test]
fn mwpm_fingerprints_identical_obs_on_off() {
    let (compiled, graph) = workload(3);
    let factory = || MwpmDecoder::new(graph.clone());
    let mut prints = Vec::new();
    for threads in [1usize, 2, 8] {
        for sink in [ObsSink::disabled(), ObsSink::enabled()] {
            let enabled = sink.is_enabled();
            let run = LerEngine::new(threads)
                .with_obs(sink)
                .estimate(&compiled, &factory, OPTS, SEED);
            prints.push((threads, enabled, fingerprint(&run)));
        }
    }
    let golden = &prints[0].2;
    for (threads, enabled, print) in &prints {
        assert_eq!(
            print, golden,
            "threads={threads} obs_enabled={enabled}: MWPM fingerprint drifted"
        );
    }
}

#[test]
fn epoch_entry_point_fingerprints_identical_obs_on_off() {
    let (compiled, graph) = workload(3);
    let factory = |g: &MatchingGraph| UnionFindDecoder::new(g.clone());
    let mut schedule = EpochSchedule::new(1.0);
    schedule.push(0.0, RateTable::uniform(3e-3));
    schedule.push(0.5, RateTable::uniform(5e-3));
    let mut prints = Vec::new();
    for threads in [1usize, 2, 8] {
        for sink in [ObsSink::disabled(), ObsSink::enabled()] {
            let enabled = sink.is_enabled();
            let run = LerEngine::new(threads)
                .with_obs(sink)
                .estimate_epochs(&compiled, &graph, &factory, &schedule, OPTS, SEED);
            assert_eq!(run.epochs, 2, "threads={threads} obs_enabled={enabled}");
            prints.push((threads, enabled, fingerprint(&run)));
        }
    }
    let golden = &prints[0].2;
    for (threads, enabled, print) in &prints {
        assert_eq!(
            print, golden,
            "threads={threads} obs_enabled={enabled}: epoch fingerprint drifted"
        );
    }
}

#[test]
fn journal_is_deterministic_across_thread_counts() {
    let (compiled, graph) = workload(3);
    let factory = Tiered::new(&graph, {
        let graph = graph.clone();
        move || UnionFindDecoder::new(graph.clone())
    });
    let journal_of = |threads: usize| {
        let sink = ObsSink::enabled();
        let _ = LerEngine::new(threads)
            .with_obs(sink.clone())
            .estimate(&compiled, &factory, OPTS, SEED);
        sink.snapshot()
            .events
            .iter()
            .map(|e| (e.run, e.chunk, e.seq, e.kind.tag()))
            .collect::<Vec<_>>()
    };
    let one = journal_of(1);
    assert!(!one.is_empty());
    assert_eq!(one, journal_of(2), "1 vs 2 threads");
    assert_eq!(one, journal_of(8), "1 vs 8 threads");
}

/// Minimal Prometheus text-exposition-format checker: every line is a
/// comment (`# HELP` / `# TYPE` with a valid metric name) or a sample
/// (`name{labels} value` with a parseable value); histogram bucket counts
/// are cumulative and end in an `+Inf` bucket that equals `_count`.
fn check_prometheus(text: &str) {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut bucket_last: Option<(String, f64)> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "bad comment line: {line:?}"
            );
            assert!(valid_name(name), "bad metric name in comment: {line:?}");
            if keyword == "TYPE" {
                let kind = parts.next().unwrap_or("");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "bad TYPE in {line:?}"
                );
            }
            continue;
        }
        let (name_part, value_part) = line.rsplit_once(' ').expect("sample line needs a value");
        let value: f64 = if value_part == "+Inf" {
            f64::INFINITY
        } else {
            value_part
                .parse()
                .unwrap_or_else(|_| panic!("bad sample value in {line:?}"))
        };
        let bare = name_part.split('{').next().unwrap();
        assert!(valid_name(bare), "bad metric name in sample: {line:?}");
        if let Some(labels) = name_part.strip_prefix(bare) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "bad label block in {line:?}"
                );
            }
        }
        // Histogram buckets must be cumulative within one series.
        if name_part.contains("_bucket{") {
            if let Some((prev_name, prev_v)) = &bucket_last {
                if *prev_name == bare {
                    assert!(
                        value >= *prev_v,
                        "bucket counts must be cumulative at {line:?}"
                    );
                }
            }
            bucket_last = Some((bare.to_string(), value));
        } else {
            if let Some((prev_name, prev_v)) = &bucket_last {
                let base = prev_name.trim_end_matches("_bucket");
                if bare == format!("{base}_count") {
                    assert_eq!(
                        value, *prev_v,
                        "_count must equal the +Inf bucket at {line:?}"
                    );
                    bucket_last = None;
                }
            }
            assert!(
                value.is_finite(),
                "non-bucket sample must be finite: {line:?}"
            );
        }
    }
}

#[test]
fn prometheus_rendering_passes_line_format_sanity() {
    let (compiled, graph) = workload(3);
    let factory = Tiered::new(&graph, {
        let graph = graph.clone();
        move || UnionFindDecoder::new(graph.clone())
    });
    let sink = ObsSink::enabled();
    let _ = LerEngine::new(2)
        .with_obs(sink.clone())
        .estimate(&compiled, &factory, OPTS, SEED);
    let text = render_prometheus(&sink.snapshot());
    assert!(text.contains("caliqec_runs_started_total 1"));
    assert!(text.contains("# TYPE caliqec_chunk_wall_seconds histogram"));
    check_prometheus(&text);
}
