//! Workspace-level validation of the rare-event (importance-sampled) LER
//! engine: β = 1 must reproduce the plain engine's golden fingerprints bit
//! for bit at any thread count, boosted runs must be thread-count
//! deterministic, and a property test checks that the importance-sampled
//! estimate agrees with plain Monte Carlo within their combined confidence
//! intervals across a range of boost factors.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, LerEngine, RareOptions, SampleOptions, Tiered, UnionFindDecoder,
};
use caliqec_stab::{Basis, Circuit, CompiledCircuit, Noise1};
use proptest::prelude::*;

/// Distance-n repetition code, single round, X noise (mirrors the decoder
/// test fixtures).
fn rep_circuit(n: usize, p: f64) -> Circuit {
    let data: Vec<u32> = (0..n as u32).collect();
    let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
    let mut c = Circuit::new(2 * n - 1);
    c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
    c.noise1(Noise1::XError, p, &data);
    for i in 0..n - 1 {
        c.cx(data[i], anc[i]);
        c.cx(data[i + 1], anc[i]);
    }
    let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
    for m in &ms {
        c.detector(&[*m]);
    }
    let md = c.measure(data[0], Basis::Z, 0.0);
    c.observable(0, &[md]);
    c
}

/// β = 1 with identity rates must reproduce the plain engine's golden
/// surface-code fingerprints exactly — same recorded `(shots, failures)`
/// at the pinned seed (mirroring `golden_engine_fingerprints_cluster_on_off`),
/// unit weights, and ESS equal to the shot count — at every thread count.
#[test]
fn beta_one_reproduces_golden_fingerprints_at_any_thread_count() {
    // (d, p, min_shots, golden shots, golden failures)
    const GOLDENS: [(usize, f64, usize, usize, usize); 2] =
        [(7, 3e-3, 4_096, 4_096, 10), (11, 1e-3, 2_048, 2_048, 0)];
    for (d, p, min_shots, want_shots, want_failures) in GOLDENS {
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p),
            d,
            MemoryBasis::Z,
        );
        let compiled = CompiledCircuit::new(&mem.circuit);
        let graph = graph_for_circuit(&mem.circuit);
        let factory = Tiered::new(&graph, {
            let graph = graph.clone();
            move || UnionFindDecoder::new(graph.clone())
        });
        let plain = LerEngine::new(2).estimate(
            &compiled,
            &factory,
            SampleOptions {
                min_shots,
                ..Default::default()
            },
            0xF1E1D,
        );
        assert_eq!(
            (plain.estimate.shots, plain.estimate.failures),
            (want_shots, want_failures),
            "d={d}: plain golden fingerprint drifted"
        );
        for threads in [1, 2, 8] {
            let rare = LerEngine::new(threads).estimate_rare(
                &compiled,
                &factory,
                RareOptions {
                    boost_beta: 1.0,
                    target_rse: 0.0,
                    min_shots,
                    ..Default::default()
                },
                0xF1E1D,
            );
            assert_eq!(
                rare.estimate, plain.estimate,
                "d={d} threads={threads}: beta=1 must be bit-identical to plain"
            );
            assert_eq!(rare.ess, rare.estimate.shots as f64, "d={d}: unit weights");
            assert_eq!(rare.weighted_failures, rare.estimate.failures as f64);
            assert_eq!(rare.boost_beta, 1.0);
        }
    }
}

/// Boosted rare-event runs (β > 1, CI stopping armed) are bit-identical
/// across thread counts 1/2/8: estimate, weighted failure mass, ESS, CI
/// half-width, and the stopping prefix.
#[test]
fn boosted_runs_are_bit_identical_across_thread_counts() {
    let c = rep_circuit(5, 0.02);
    let compiled = CompiledCircuit::new(&c);
    let graph = graph_for_circuit(&c);
    let factory = || UnionFindDecoder::new(graph.clone());
    let options = RareOptions {
        boost_beta: 4.0,
        target_rse: 0.1,
        min_shots: 2_000,
        max_shots: 100_000,
        ..Default::default()
    };
    let reference = LerEngine::new(1).estimate_rare(&compiled, &factory, options.clone(), 0xBEE);
    assert!(reference.ess > 0.0);
    assert!(reference.ci_halfwidth.is_finite());
    for threads in [2, 8] {
        let run =
            LerEngine::new(threads).estimate_rare(&compiled, &factory, options.clone(), 0xBEE);
        assert_eq!(run.estimate, reference.estimate, "threads={threads}");
        assert_eq!(run.chunks_included, reference.chunks_included);
        assert_eq!(run.weighted_failures, reference.weighted_failures);
        assert_eq!(run.ess, reference.ess);
        assert_eq!(run.ci_halfwidth, reference.ci_halfwidth);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Across random small repetition codes, physical rates high enough to
    /// measure plainly, and a sweep of boost factors, the importance-sampled
    /// estimate agrees with plain Monte Carlo within 5× their combined 95%
    /// CI half-widths, and the estimator health invariants hold
    /// (0 < ESS ≤ shots, finite CI).
    #[test]
    fn is_estimate_agrees_with_plain_within_ci(
        n in 2usize..=3,
        p in 0.03f64..0.15,
        beta in prop_oneof![Just(1.5f64), Just(2.0), Just(4.0), Just(8.0)],
        seed in 0u64..1_000,
    ) {
        let c = rep_circuit(2 * n - 1, p);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let factory = || UnionFindDecoder::new(graph.clone());
        let shots = 20_000;
        let plain = LerEngine::new(2).estimate(
            &compiled,
            &factory,
            SampleOptions { min_shots: shots, ..Default::default() },
            seed,
        );
        let rare = LerEngine::new(2).estimate_rare(
            &compiled,
            &factory,
            RareOptions {
                boost_beta: beta,
                target_rse: 0.0,
                min_shots: shots,
                ..Default::default()
            },
            seed,
        );
        prop_assert!(rare.ess > 0.0);
        prop_assert!(rare.ess <= rare.estimate.shots as f64);
        prop_assert!(rare.ci_halfwidth.is_finite());
        let tolerance = 5.0 * (rare.ci_halfwidth + plain.ci_halfwidth) + 1e-12;
        prop_assert!(
            (rare.ler() - plain.ler()).abs() <= tolerance,
            "beta={} IS estimate {} vs plain {} outside tolerance {}",
            beta, rare.ler(), plain.ler(), tolerance
        );
    }
}
