//! Property tests for the hardened input-validation layer: arbitrary
//! malformed matching graphs and circuit IR must always come back as typed
//! [`ValidationError`]/[`EngineError`] values from the public entry points
//! — constructors, validators, and the engine — and never as panics.

use caliqec_match::{
    graph_for_circuit, Edge, EngineError, LerEngine, MatchingGraph, MwpmDecoder,
    ReferenceUnionFind, SampleOptions, Tiered, UnionFindDecoder,
};
use caliqec_stab::{Basis, Circuit, MeasIdx, Noise1, Op};
use proptest::prelude::*;

const MAX_DETECTORS: usize = 5;

/// Edges over a slightly-too-large node range with weights and
/// probabilities drawn from both the valid and the pathological corners
/// (NaN, negative, infinite, zero-probability).
fn edge_strategy() -> impl Strategy<Value = Edge> {
    let weight = prop_oneof![Just(f64::NAN), Just(-1.5), Just(f64::INFINITY), 0.1f64..6.0,];
    let probability = prop_oneof![Just(0.0), Just(f64::NAN), Just(1.5), 0.01f64..0.5];
    (
        0..MAX_DETECTORS + 3,
        0..MAX_DETECTORS + 3,
        weight,
        probability,
        0u64..4,
    )
        .prop_map(|(u, v, weight, probability, observables)| Edge {
            u,
            v,
            probability,
            weight,
            observables,
        })
}

/// A mix of well-formed and malformed circuit operations over 3 qubits:
/// out-of-range qubits, bad probabilities, duplicate pair targets, and
/// dangling measurement records all appear with fair odds.
fn op_strategy() -> impl Strategy<Value = Op> {
    let p = prop_oneof![Just(0.01), Just(f64::NAN), Just(1.5), Just(-0.2)];
    let flip = prop_oneof![Just(0.0), Just(2.0)];
    prop_oneof![
        (0u32..6).prop_map(|q| Op::Reset(Basis::Z, vec![q])),
        (0u32..6, p).prop_map(|(q, p)| Op::Noise1(Noise1::XError, p, vec![q])),
        (0u32..6, flip).prop_map(|(q, flip)| Op::Measure {
            basis: Basis::Z,
            qubit: q,
            flip,
        }),
        (0u32..8).prop_map(|m| Op::Detector(vec![MeasIdx(m)])),
        (0usize..70, 0u32..8).prop_map(|(o, m)| Op::Observable(o, vec![MeasIdx(m)])),
    ]
}

/// A tiny known-good repetition-code workload for driving the engine.
fn valid_workload() -> (Circuit, MatchingGraph) {
    let mut c = Circuit::new(5);
    c.reset(Basis::Z, &[0, 1, 2, 3, 4]);
    c.noise1(Noise1::XError, 0.02, &[0, 1, 2]);
    c.cx(0, 3);
    c.cx(1, 3);
    c.cx(1, 4);
    c.cx(2, 4);
    let m0 = c.measure(3, Basis::Z, 0.0);
    let m1 = c.measure(4, Basis::Z, 0.0);
    c.detector(&[m0]);
    c.detector(&[m1]);
    let md = c.measure(0, Basis::Z, 0.0);
    c.observable(0, &[md]);
    let graph = graph_for_circuit(&c);
    (c, graph)
}

const TINY: SampleOptions = SampleOptions {
    min_shots: 64,
    max_failures: 0,
    max_shots: 0,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Graph construction and validation never panic, and every validating
    /// decoder constructor agrees with `MatchingGraph::validate`.
    #[test]
    fn arbitrary_graphs_validate_without_panicking(
        num_detectors in 1usize..MAX_DETECTORS,
        edges in prop::collection::vec(edge_strategy(), 0..10),
    ) {
        let graph = MatchingGraph::from_edges(num_detectors, 2, edges);
        let verdict = graph.validate();
        let uf = UnionFindDecoder::try_new(graph.clone());
        let mwpm = MwpmDecoder::try_new(graph.clone());
        let reference = ReferenceUnionFind::try_new(graph.clone());
        prop_assert_eq!(verdict.is_ok(), uf.is_ok());
        prop_assert_eq!(verdict.is_ok(), mwpm.is_ok());
        prop_assert_eq!(verdict.is_ok(), reference.is_ok());
    }

    /// A circuit that fails validation is rejected by the engine's IR entry
    /// point with a typed `EngineError::Circuit` — never a panic.
    #[test]
    fn malformed_circuits_yield_typed_errors(
        ops in prop::collection::vec(op_strategy(), 0..12),
    ) {
        let circuit = Circuit::from_ops(3, ops);
        if circuit.validate().is_err() {
            let (_, graph) = valid_workload();
            let result = LerEngine::new(1).try_estimate_circuit(
                &circuit,
                &|| UnionFindDecoder::new(graph.clone()),
                TINY,
                7,
            );
            prop_assert!(matches!(result, Err(EngineError::Circuit(_))));
        }
    }

    /// A factory carrying a malformed graph is rejected up front by
    /// `try_estimate` (typed `EngineError::Graph`), and `Tiered::try_new`
    /// refuses to build predecode tables over it.
    #[test]
    fn poisoned_factories_are_rejected(
        num_detectors in 1usize..MAX_DETECTORS,
        edges in prop::collection::vec(edge_strategy(), 1..10),
    ) {
        let bad = MatchingGraph::from_edges(num_detectors, 2, edges);
        if bad.validate().is_err() {
            let (circuit, graph) = valid_workload();
            let make = {
                let graph = graph.clone();
                move || UnionFindDecoder::new(graph.clone())
            };
            prop_assert!(Tiered::try_new(&bad, make.clone()).is_err());
            let factory = Tiered::new(&graph, make).with_fallback_graph(&bad);
            let result = LerEngine::new(1).try_estimate(
                &caliqec_stab::CompiledCircuit::new(&circuit),
                &factory,
                TINY,
                3,
            );
            prop_assert!(matches!(result, Err(EngineError::Graph(_))));
        }
    }
}
