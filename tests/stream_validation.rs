//! Validation suite for the streaming decode service: golden replay
//! (mask bit-identity across worker counts), a backpressure property
//! test (queues stay bounded and every ingested round is accounted
//! for), chaos recovery for each streaming fault kind with matching
//! journal evidence, and a deterministic overload acceptance run that
//! sheds through the declared ladder while keeping the round partition
//! exact.

use caliqec_match::{
    graph_for_circuit, loopback_serve, Disposition, FaultKind, FaultPlan, LoopbackOptions,
    PushOutcome, StreamConfig, StreamingDecoder, TenantSpec, Tiered, UnionFindDecoder,
};
use caliqec_obs::{EventKind, ObsSink};
use caliqec_stab::{Basis, Circuit, Noise1, BATCH};
use proptest::prelude::*;
use std::time::Duration;

type Factory = Tiered<Box<dyn Fn() -> UnionFindDecoder + Send + Sync>>;

/// A 5-qubit repetition-code round: two Z-checks, one logical readout.
/// Small on purpose — the suite exercises the service's scheduling and
/// accounting, not decode throughput.
fn rep_circuit(p: f64) -> Circuit {
    let mut c = Circuit::new(5);
    c.reset(Basis::Z, &[0, 1, 2, 3, 4]);
    c.noise1(Noise1::XError, p, &[0, 1, 2]);
    c.cx(0, 3);
    c.cx(1, 3);
    c.cx(1, 4);
    c.cx(2, 4);
    let m0 = c.measure(3, Basis::Z, 0.0);
    let m1 = c.measure(4, Basis::Z, 0.0);
    c.detector(&[m0]);
    c.detector(&[m1]);
    let md = c.measure(0, Basis::Z, 0.0);
    c.observable(0, &[md]);
    c
}

fn tenant_for(c: &Circuit) -> TenantSpec<Factory> {
    let graph = graph_for_circuit(c);
    let g = graph.clone();
    let factory: Box<dyn Fn() -> UnionFindDecoder + Send + Sync> =
        Box::new(move || UnionFindDecoder::new(g.clone()));
    TenantSpec {
        detectors: graph.num_detectors(),
        factory: Tiered::new(&graph, factory),
    }
}

fn fleet(n: usize) -> (Vec<TenantSpec<Factory>>, Vec<Circuit>) {
    let circuits: Vec<Circuit> = (0..n)
        .map(|t| rep_circuit(0.01 + 0.01 * t as f64))
        .collect();
    let tenants = circuits.iter().map(tenant_for).collect();
    (tenants, circuits)
}

/// Flattens a report into comparable (tenant, window, disposition, masks)
/// rows.
fn mask_rows(report: &caliqec_match::StreamReport) -> Vec<(usize, u64, Disposition, [u64; BATCH])> {
    report
        .tenants
        .iter()
        .enumerate()
        .flat_map(|(t, rs)| {
            rs.iter()
                .map(move |r| (t, r.window, r.disposition, r.masks))
        })
        .collect()
}

/// Golden replay: the same (tenant, window, seed) stream must produce
/// bit-identical masks no matter how many workers race over the queue.
/// Deadline is off and the queue bound exceeds the total window count, so
/// scheduling jitter cannot shed or reject anything.
#[test]
fn golden_replay_masks_identical_at_worker_counts_1_2_8() {
    let run_with = |workers: usize| {
        let (tenants, circuits) = fleet(3);
        let config = StreamConfig {
            workers,
            queue_bound: 64,
            deadline: None,
            ..StreamConfig::default()
        };
        let opts = LoopbackOptions {
            windows_per_tenant: 12,
            rounds_per_window: 2,
            gap: Duration::ZERO,
            base_seed: 0x601D,
        };
        let (report, driver) =
            loopback_serve(tenants, &circuits, config, &opts, ObsSink::disabled()).unwrap();
        assert_eq!(driver.windows_rejected, 0, "workers={workers}");
        assert_eq!(report.health.windows_decoded, 36, "workers={workers}");
        mask_rows(&report)
    };
    let one = run_with(1);
    assert_eq!(one.len(), 36);
    assert_eq!(one, run_with(2), "1 worker vs 2 workers");
    assert_eq!(one, run_with(8), "1 worker vs 8 workers");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Backpressure property: for arbitrary queue bounds, worker counts,
    /// and flood lengths, (a) an admitted window never leaves a tenant's
    /// queue deeper than the bound, (b) every rejection reports a depth at
    /// the bound, and (c) after a drain the ingested rounds partition
    /// exactly into decoded + shed + deferred with rejections accounted
    /// separately — no silent drops.
    #[test]
    fn backpressure_bounds_queues_and_partitions_rounds(
        queue_bound in 1usize..4,
        workers in 1usize..4,
        pushes in 1usize..48,
        seed in 0u64..1_000,
    ) {
        let (tenants, _) = fleet(2);
        let config = StreamConfig {
            workers,
            queue_bound,
            ..StreamConfig::default()
        };
        let service = StreamingDecoder::start(tenants, config, ObsSink::disabled()).unwrap();
        let mut word = seed;
        let mut rejected = 0u64;
        for i in 0..pushes {
            // Cheap deterministic syndrome words (xorshift); every push
            // closes a one-round window on tenant 0.
            word ^= word << 13;
            word ^= word >> 7;
            word ^= word << 17;
            match service.push_round(0, &[word, word.rotate_left(19)]).unwrap() {
                PushOutcome::Rejected { queue_depth } => {
                    prop_assert!(queue_depth >= queue_bound, "push {i}");
                    rejected += 1;
                }
                PushOutcome::Admitted { .. } => {}
                PushOutcome::Buffered { .. } => unreachable!("single-round window"),
            }
            let health = service.health();
            for t in &health.tenants {
                prop_assert!(
                    t.queue_depth <= queue_bound,
                    "tenant {} depth {} over bound {queue_bound}",
                    t.tenant,
                    t.queue_depth,
                );
            }
        }
        service.drain();
        let report = service.shutdown();
        let t0 = &report.health.tenants[0];
        prop_assert_eq!(t0.rounds_rejected, rejected);
        prop_assert_eq!(t0.rounds_ingested + t0.rounds_rejected, pushes as u64);
        prop_assert_eq!(
            t0.rounds_decoded + t0.rounds_shed + t0.rounds_deferred,
            t0.rounds_ingested
        );
        prop_assert_eq!(report.health.rounds_pending(), 0);
        // The idle tenant saw nothing.
        prop_assert_eq!(report.health.tenants[1].rounds_ingested, 0);
    }
}

/// An injected arrival delay (`delay@W` backdates window `W` past twice
/// the deadline) must land on shed rung 2: declared deferred with zero
/// masks and a matching `shed` journal event, never silently dropped.
#[test]
fn chaos_delayed_arrival_defers_with_journal_evidence() {
    let (tenants, circuits) = fleet(2);
    let sink = ObsSink::enabled();
    let config = StreamConfig {
        workers: 2,
        queue_bound: 64,
        deadline: Some(Duration::from_millis(50)),
        faults: Some(FaultPlan::new().delayed_arrival_at(2)),
        ..StreamConfig::default()
    };
    let opts = LoopbackOptions {
        windows_per_tenant: 4,
        rounds_per_window: 1,
        gap: Duration::ZERO,
        base_seed: 7,
    };
    let (report, _) = loopback_serve(tenants, &circuits, config, &opts, sink.clone()).unwrap();
    // Window 2 of each tenant arrives 3x the deadline late.
    assert_eq!(report.health.windows_deferred, 2);
    for rs in &report.tenants {
        assert_eq!(rs.len(), 4, "deferred windows still produce results");
        assert_eq!(rs[2].disposition, Disposition::Deferred);
        assert_eq!(rs[2].masks, [0u64; BATCH]);
    }
    let snap = sink.snapshot();
    let rung2_sheds = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Shed { rung: 2, .. }))
        .count();
    assert_eq!(rung2_sheds, 2, "one rung-2 shed event per deferred window");
    assert_eq!(snap.counter("rounds_deferred"), 2);
    assert_eq!(
        snap.counter("rounds_ingested"),
        snap.counter("rounds_decoded")
            + snap.counter("rounds_shed")
            + snap.counter("rounds_deferred")
    );
}

/// A wedged worker (`wedge@W` freezes the heartbeat on window `W`) must be
/// detected by the watchdog, journaled, and recovered by a same-seed retry
/// that still decodes the window in full.
#[test]
fn chaos_worker_wedge_recovers_with_journal_evidence() {
    let (tenants, circuits) = fleet(2);
    let sink = ObsSink::enabled();
    let config = StreamConfig {
        workers: 2,
        queue_bound: 64,
        wedge_deadline: Duration::from_millis(10),
        faults: Some(FaultPlan::new().worker_wedge_at(1)),
        ..StreamConfig::default()
    };
    let opts = LoopbackOptions {
        windows_per_tenant: 3,
        rounds_per_window: 1,
        gap: Duration::ZERO,
        base_seed: 7,
    };
    let (report, driver) = loopback_serve(tenants, &circuits, config, &opts, sink.clone()).unwrap();
    assert_eq!(report.health.wedges, 2, "window 1 of each tenant wedges");
    assert_eq!(report.health.retries, 2);
    assert_eq!(
        report.health.windows_decoded, 6,
        "every window still decodes in full after the retry"
    );
    assert_eq!(driver.shots_scored, 6 * BATCH as u64);
    let snap = sink.snapshot();
    assert_eq!(snap.counter("worker_wedges"), 2);
    assert_eq!(snap.counter("stream_retries"), 2);
    let wedge_events = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Wedge { .. }))
        .count();
    assert_eq!(wedge_events, 2, "the watchdog journals each wedge once");
}

/// A bursting tenant (`burst@T` floods without pacing) colliding with a
/// wedged worker must be stopped at admission: its backpressure bound
/// holds, the overflow is rejected (not ingested), and everything that WAS
/// admitted is still decoded once the wedge clears.
#[test]
fn chaos_burst_arrival_is_rejected_at_the_bound_and_recovers() {
    let (tenants, circuits) = fleet(2);
    let sink = ObsSink::enabled();
    let config = StreamConfig {
        workers: 1,
        queue_bound: 2,
        // The wedge pins the only worker on window 0 long past the
        // driver's flood, so the burst tenant must overflow its bound.
        wedge_deadline: Duration::from_millis(100),
        faults: Some(FaultPlan::new().worker_wedge_at(0).burst_arrival_at(0)),
        ..StreamConfig::default()
    };
    let opts = LoopbackOptions {
        windows_per_tenant: 8,
        rounds_per_window: 1,
        gap: Duration::from_millis(2),
        base_seed: 7,
    };
    let (report, driver) = loopback_serve(tenants, &circuits, config, &opts, sink.clone()).unwrap();
    let t0 = &report.health.tenants[0];
    assert!(
        t0.rounds_rejected > 0,
        "the burst must overflow the wedged queue"
    );
    assert_eq!(t0.rounds_ingested + t0.rounds_rejected, 8);
    assert_eq!(
        t0.rounds_decoded + t0.rounds_shed + t0.rounds_deferred,
        t0.rounds_ingested,
        "rejected rounds are not ingested; admitted rounds all dispose"
    );
    assert_eq!(
        driver.windows_rejected,
        t0.rounds_rejected + report.health.tenants[1].rounds_rejected
    );
    assert!(
        report.health.wedges >= 1,
        "the wedge fired and was detected"
    );
    assert_eq!(report.health.rounds_pending(), 0);
    // No deadline armed: whatever was admitted decodes in full.
    assert_eq!(
        report.health.windows_shed + report.health.windows_deferred,
        0
    );
}

/// A slow tenant (`slowtenant@T` stalls the feed) must degrade only its
/// own arrival rate: the service completes cleanly with every window of
/// every tenant decoded and nothing shed or rejected.
#[test]
fn chaos_slow_tenant_completes_cleanly() {
    let (tenants, circuits) = fleet(2);
    let config = StreamConfig {
        workers: 2,
        queue_bound: 8,
        faults: Some(
            FaultPlan::new()
                .slow_tenant_at(0)
                .with_stall_timing(Duration::from_millis(5), Duration::from_millis(1)),
        ),
        ..StreamConfig::default()
    };
    let opts = LoopbackOptions {
        windows_per_tenant: 4,
        rounds_per_window: 2,
        gap: Duration::ZERO,
        base_seed: 7,
    };
    let (report, driver) =
        loopback_serve(tenants, &circuits, config, &opts, ObsSink::disabled()).unwrap();
    assert_eq!(driver.windows_rejected, 0);
    assert_eq!(report.health.windows_decoded, 8);
    assert_eq!(
        report.health.windows_shed + report.health.windows_deferred,
        0
    );
    assert_eq!(report.health.rounds_pending(), 0);
    assert_eq!(driver.shots_scored, 8 * BATCH as u64);
}

/// Overload acceptance: at least 8 tenants flooding with no pacing
/// (arrival far above sustained capacity) into short queues under a
/// microsecond deadline. The service must keep every queue at its bound,
/// shed through the declared ladder rather than stalling, and account for
/// every round exactly.
#[test]
fn overload_keeps_bounded_queues_and_exact_partition() {
    let (tenants, circuits) = fleet(8);
    let sink = ObsSink::enabled();
    let config = StreamConfig {
        workers: 2,
        queue_bound: 2,
        deadline: Some(Duration::from_micros(1)),
        ..StreamConfig::default()
    };
    let opts = LoopbackOptions {
        windows_per_tenant: 16,
        rounds_per_window: 1,
        gap: Duration::ZERO,
        base_seed: 0x0EAD,
    };
    let (report, driver) = loopback_serve(tenants, &circuits, config, &opts, sink.clone()).unwrap();
    let h = &report.health;
    assert!(
        h.queue_peak <= 8 * 2,
        "global peak {} exceeds tenants x bound",
        h.queue_peak
    );
    assert!(
        h.windows_shed + h.windows_deferred > 0,
        "a microsecond deadline under flood must shed"
    );
    let mut pushed = 0u64;
    for t in &h.tenants {
        assert_eq!(
            t.rounds_decoded + t.rounds_shed + t.rounds_deferred,
            t.rounds_ingested,
            "tenant {}",
            t.tenant
        );
        pushed += t.rounds_ingested + t.rounds_rejected;
    }
    assert_eq!(pushed, 8 * 16, "every pushed round is admitted or rejected");
    assert_eq!(h.rounds_pending(), 0);
    assert_eq!(
        driver.windows_pushed,
        8 * 16,
        "the driver offered every window"
    );
    // The health snapshot serializes and carries the same partition.
    let json = h.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"rounds_pending\":0"));
    let snap = sink.snapshot();
    assert_eq!(
        snap.counter("rounds_ingested"),
        snap.counter("rounds_decoded")
            + snap.counter("rounds_shed")
            + snap.counter("rounds_deferred")
    );
}

/// The extended `CALIQEC_FAULTS` grammar round-trips the streaming kinds.
#[test]
fn streaming_fault_grammar_parses() {
    let plan = FaultPlan::parse("slowtenant@0,delay@1,burst@2,wedge@3").expect("valid spec");
    assert_eq!(plan.injections().len(), 4);
    assert_eq!(plan.injection(0), Some(FaultKind::SlowTenant));
    assert_eq!(plan.injection(1), Some(FaultKind::DelayedArrival));
    assert_eq!(plan.injection(2), Some(FaultKind::BurstArrival));
    assert_eq!(plan.injection(3), Some(FaultKind::WorkerWedge));
    assert!(plan.injection(0).unwrap().is_streaming());
}
