//! `caliqec-obs` — observability substrate for the caliqec decode engine.
//!
//! The engine's determinism contract (bit-identical logical-error
//! estimates at any thread count, PRs 1–6) must survive instrumentation.
//! This crate therefore provides observability that is *passive by
//! construction*: nothing recorded here is ever read back by decoding, and
//! a disabled [`ObsSink`] does no work at all — no clock reads, no
//! atomics, no allocation — so golden fingerprints are identical with
//! observability on or off.
//!
//! Three layers:
//!
//! - **Metrics** ([`metrics`]): closed-enum counters, gauges, and
//!   log-bucketed latency histograms recorded into per-worker [`Shard`]s of
//!   relaxed atomics. The record path is wait-free and uncontended; a
//!   [`Snapshot`] merges shards after the fact and reads p50/p95/p99 off
//!   the histograms.
//! - **Journal** ([`journal`]): structured [`Event`]s (chunk start/finish
//!   with tier outcomes and phase timings, fault/retry/rung transitions,
//!   epoch reweights) buffered per worker and flushed as lock-free
//!   segments at chunk boundaries, then merged in an order that depends
//!   only on the deterministic chunk schedule.
//! - **Exporters** ([`export`]): human summary table, JSON snapshot,
//!   Chrome trace-event JSON (Perfetto-viewable worker/chunk flamegraphs),
//!   and Prometheus text exposition via [`render_prometheus`].
//!
//! The intended wiring: hosts build one [`ObsSink`] (enabled or not), hand
//! clones to the engine, and each worker thread obtains a private
//! [`WorkerObs`] via [`ObsSink::worker`]. After the run,
//! [`ObsSink::snapshot`] produces the merged [`Snapshot`] the exporters
//! consume.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod journal;
pub mod metrics;
pub mod sink;
pub mod verbosity;

pub use export::{render_chrome_trace, render_json, render_prometheus, render_summary};
pub use journal::{order_key, Event, EventKind};
pub use metrics::{
    bucket_hi, bucket_lo, latency_bucket, Counter, Gauge, Hist, HistSnapshot, Shard, HIST_BUCKETS,
};
pub use sink::{ObsSink, Snapshot, WorkerObs};
pub use verbosity::Verbosity;
