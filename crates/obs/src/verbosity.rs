//! Process-wide verbosity control for human-facing stderr output.
//!
//! Three levels: [`Verbosity::Quiet`] (nothing), [`Verbosity::Info`]
//! (progress lines + summary tables — the interactive default), and
//! [`Verbosity::Debug`]. Resolution order, strongest first: an explicit
//! [`set`] (e.g. a `--quiet` flag), then the `CALIQEC_LOG` environment
//! variable, then the binary's [`set_default`] (scripted binaries like
//! `fig_*`/`reproduce` default to quiet, the CLI to info).
//!
//! The level is a single process-global relaxed atomic — reading it costs
//! one load, and it never feeds back into decoding, so verbosity cannot
//! perturb fingerprints.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much human-facing stderr output to emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Verbosity {
    /// No progress lines, no summary tables. Machine outputs (files,
    /// stdout data) are unaffected.
    Quiet = 0,
    /// Progress lines and summary tables.
    Info = 1,
    /// Everything, including per-phase diagnostics.
    Debug = 2,
}

impl Verbosity {
    fn from_u8(v: u8) -> Verbosity {
        match v {
            0 => Verbosity::Quiet,
            1 => Verbosity::Info,
            _ => Verbosity::Debug,
        }
    }

    /// Parses a `CALIQEC_LOG` value. Accepts names (`quiet`/`info`/`debug`,
    /// plus `off`/`silent` and `verbose`) and digits `0`/`1`/`2`.
    pub fn parse(s: &str) -> Option<Verbosity> {
        match s.trim().to_ascii_lowercase().as_str() {
            "quiet" | "off" | "silent" | "none" | "0" => Some(Verbosity::Quiet),
            "info" | "1" => Some(Verbosity::Info),
            "debug" | "verbose" | "2" => Some(Verbosity::Debug),
            _ => None,
        }
    }
}

/// Current level; `u8::MAX` means "not explicitly set".
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);
/// Binary-chosen default used when neither [`set`] nor `CALIQEC_LOG`
/// decided.
static DEFAULT: AtomicU8 = AtomicU8::new(Verbosity::Info as u8);

/// Explicitly sets the verbosity (a CLI flag). Overrides `CALIQEC_LOG`.
pub fn set(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// Sets the fallback level a binary wants when the user expressed no
/// preference (scripted binaries call `set_default(Verbosity::Quiet)`).
pub fn set_default(v: Verbosity) {
    DEFAULT.store(v as u8, Ordering::Relaxed);
}

/// Resolves the current verbosity: explicit [`set`], else `CALIQEC_LOG`,
/// else the binary default.
pub fn level() -> Verbosity {
    let explicit = LEVEL.load(Ordering::Relaxed);
    if explicit != u8::MAX {
        return Verbosity::from_u8(explicit);
    }
    if let Ok(env) = std::env::var("CALIQEC_LOG") {
        if let Some(v) = Verbosity::parse(&env) {
            return v;
        }
    }
    Verbosity::from_u8(DEFAULT.load(Ordering::Relaxed))
}

/// Whether output at `v` should currently be emitted.
pub fn loud(v: Verbosity) -> bool {
    level() >= v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_and_digits() {
        assert_eq!(Verbosity::parse("quiet"), Some(Verbosity::Quiet));
        assert_eq!(Verbosity::parse(" OFF "), Some(Verbosity::Quiet));
        assert_eq!(Verbosity::parse("0"), Some(Verbosity::Quiet));
        assert_eq!(Verbosity::parse("info"), Some(Verbosity::Info));
        assert_eq!(Verbosity::parse("debug"), Some(Verbosity::Debug));
        assert_eq!(Verbosity::parse("2"), Some(Verbosity::Debug));
        assert_eq!(Verbosity::parse("banana"), None);
    }

    #[test]
    fn explicit_set_wins() {
        // Serial with the default-path test via the explicit-set guard:
        // other tests in this crate don't touch the globals.
        set(Verbosity::Quiet);
        assert_eq!(level(), Verbosity::Quiet);
        assert!(!loud(Verbosity::Info));
        assert!(loud(Verbosity::Quiet));
        set(Verbosity::Debug);
        assert!(loud(Verbosity::Info));
    }
}
