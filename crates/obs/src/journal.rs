//! The structured event journal: what happened, in a deterministic order.
//!
//! Workers append events to a thread-local buffer and flush the buffer as
//! one segment at chunk boundaries; segments land on a lock-free Treiber
//! stack (one compare-exchange per flush, no mutex on the record path).
//! A snapshot drains the stack and sorts events by [`order_key`] — `(run,
//! lane, chunk, seq)` — which depends only on the deterministic chunk
//! schedule, never on thread interleaving, so two runs of the same
//! workload produce the same journal (timestamps aside) at any thread
//! count.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// One journal entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Engine run this event belongs to (monotone per sink).
    pub run: u32,
    /// Chunk index within the run; coordinator-lane events use 0.
    pub chunk: u32,
    /// Sequence number within `(run, chunk)` (or within the coordinator
    /// lane), assigned by the recording worker.
    pub seq: u32,
    /// Worker that recorded the event ([`Event::COORDINATOR`] for run-level
    /// events recorded outside any worker).
    pub worker: u32,
    /// Monotonic nanoseconds since the sink was created. Payload only —
    /// never part of the deterministic ordering.
    pub t_nanos: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Sentinel worker id for coordinator-lane events.
    pub const COORDINATOR: u32 = u32::MAX;

    /// Whether this event lives on the coordinator lane (run-level events
    /// recorded before/around the worker pool, ordered before all chunk
    /// events of the same run).
    pub fn is_coordinator(&self) -> bool {
        matches!(
            self.kind,
            EventKind::RunStart { .. } | EventKind::EpochReweight { .. }
        )
    }
}

/// Event payloads. Fault kinds are static strings (`"panic"`, `"stall"`,
/// `"invalid_graph"`) so the journal stays allocation-free and this crate
/// stays a leaf dependency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// An engine run began.
    RunStart {
        /// Worker threads launched.
        threads: u32,
        /// Chunks in the deterministic schedule.
        chunks: u32,
    },
    /// One epoch's reweighted graph + predecoder tables were built.
    EpochReweight {
        /// Epoch index in the schedule.
        epoch: u32,
        /// Build time.
        nanos: u64,
    },
    /// A chunk attempt began on the given ladder rung.
    ChunkStart {
        /// Ladder rung of this attempt.
        rung: u8,
    },
    /// A chunk completed on the given rung.
    ChunkFinish {
        /// Rung the chunk completed on.
        rung: u8,
        /// Shots sampled in the chunk.
        shots: u32,
        /// Logical failures observed.
        failures: u32,
        /// Tier-0 (empty-syndrome) shots.
        tier0: u32,
        /// Tier-1 (predecoded) shots.
        tier1: u32,
        /// Tier-2 (full-decode) shots.
        tier2: u32,
        /// Frame-sampling time.
        sample_nanos: u64,
        /// Sparse-extraction + tier-dispatch bookkeeping time.
        extract_nanos: u64,
        /// Predecoder certification time.
        predecode_nanos: u64,
        /// Full-decoder time.
        decode_nanos: u64,
    },
    /// A chunk attempt failed.
    Fault {
        /// `"panic"`, `"stall"`, or `"invalid_graph"`.
        kind: &'static str,
        /// Rung the failed attempt ran on.
        rung: u8,
    },
    /// A faulted chunk was relaunched one rung down the ladder.
    Retry {
        /// Rung the retry runs on.
        rung: u8,
    },
    /// Per-chunk importance-weight aggregates from a rare-event (boosted)
    /// run. All fields are deterministic functions of the chunk's own
    /// shots — never of the global prefix — so the journal stays
    /// thread-count independent.
    ChunkWeights {
        /// Sum of per-shot likelihood weights over the chunk.
        sum_w: f64,
        /// Sum of weights over the chunk's failing shots.
        sum_wf: f64,
        /// The chunk's effective sample size, `(Σw)² / Σw²`.
        ess: f64,
    },
    /// The cluster tier's defect-density gate tally for one chunk (only
    /// emitted when a cluster tier was armed for the chunk).
    ClusterGate {
        /// Batches that ran the cluster decomposition.
        on: u32,
        /// Batches the gate diverted to the monolithic decode path.
        off: u32,
    },
    /// A streaming window missed its deadline and was moved down the shed
    /// ladder (1 = predecode/cluster fast path, 2 = declared deferred).
    Shed {
        /// Tenant patch the window belongs to.
        patch: u32,
        /// Window index within the tenant's stream.
        window: u32,
        /// Shed-ladder rung the window was handled on.
        rung: u8,
    },
    /// The streaming watchdog declared a worker wedged (heartbeat stale
    /// past the wedge deadline while a window was checked out).
    Wedge {
        /// Wedged worker index.
        worker: u32,
        /// Tenant patch of the window the worker held.
        patch: u32,
        /// Window index the worker held.
        window: u32,
    },
}

impl EventKind {
    /// Stable snake-case tag for exporters.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::RunStart { .. } => "run_start",
            EventKind::EpochReweight { .. } => "epoch_reweight",
            EventKind::ChunkStart { .. } => "chunk_start",
            EventKind::ChunkFinish { .. } => "chunk_finish",
            EventKind::Fault { .. } => "fault",
            EventKind::Retry { .. } => "retry",
            EventKind::ChunkWeights { .. } => "chunk_weights",
            EventKind::ClusterGate { .. } => "cluster_gate",
            EventKind::Shed { .. } => "shed",
            EventKind::Wedge { .. } => "wedge",
        }
    }
}

/// Deterministic journal order: run, then coordinator lane before chunk
/// lane, then chunk index, then the worker-assigned sequence number. A
/// chunk (including all its retries) is processed by exactly one worker,
/// so the key is unique and independent of thread scheduling.
pub fn order_key(e: &Event) -> (u32, u8, u32, u32) {
    (e.run, u8::from(!e.is_coordinator()), e.chunk, e.seq)
}

/// Lock-free stack of flushed event segments (Treiber stack). Push is a
/// single CAS loop; draining swaps the head out wholesale.
#[derive(Debug)]
pub(crate) struct SegStack {
    head: AtomicPtr<SegNode>,
}

struct SegNode {
    events: Vec<Event>,
    next: *mut SegNode,
}

impl SegStack {
    pub(crate) fn new() -> SegStack {
        SegStack {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Pushes one flushed segment (lock-free; called from worker threads).
    pub(crate) fn push(&self, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        let node = Box::into_raw(Box::new(SegNode {
            events,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` came from Box::into_raw above and is not yet
            // visible to any other thread until the CAS below succeeds.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Removes and returns every flushed segment's events (in no particular
    /// order — callers sort by [`order_key`]).
    pub(crate) fn drain(&self) -> Vec<Event> {
        let mut head = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !head.is_null() {
            // SAFETY: the swap above made this thread the unique owner of
            // the detached list; each node was created by Box::into_raw.
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            out.extend(node.events);
        }
        out
    }
}

impl Drop for SegStack {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

// SAFETY: the stack hands segments between threads by value; the raw
// pointers are only ever owned by one side of a push/drain.
unsafe impl Send for SegStack {}
unsafe impl Sync for SegStack {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(run: u32, chunk: u32, seq: u32) -> Event {
        Event {
            run,
            chunk,
            seq,
            worker: 0,
            t_nanos: 0,
            kind: EventKind::ChunkStart { rung: 0 },
        }
    }

    #[test]
    fn stack_round_trips_segments() {
        let stack = SegStack::new();
        stack.push(vec![ev(0, 1, 0), ev(0, 1, 1)]);
        stack.push(vec![ev(0, 0, 0)]);
        stack.push(Vec::new()); // no-op
        let mut drained = stack.drain();
        assert_eq!(drained.len(), 3);
        drained.sort_by_key(order_key);
        assert_eq!(drained[0].chunk, 0);
        assert_eq!(drained[1], ev(0, 1, 0));
        assert_eq!(drained[2], ev(0, 1, 1));
        assert!(stack.drain().is_empty());
    }

    #[test]
    fn stack_survives_concurrent_pushes() {
        let stack = std::sync::Arc::new(SegStack::new());
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let stack = stack.clone();
                scope.spawn(move || {
                    for c in 0..50u32 {
                        stack.push(vec![ev(w, c, 0)]);
                    }
                });
            }
        });
        let drained = stack.drain();
        assert_eq!(drained.len(), 200);
    }

    #[test]
    fn coordinator_events_sort_before_chunks() {
        let run_start = Event {
            run: 1,
            chunk: 0,
            seq: 0,
            worker: Event::COORDINATOR,
            t_nanos: 99,
            kind: EventKind::RunStart {
                threads: 2,
                chunks: 8,
            },
        };
        let chunk0 = ev(1, 0, 0);
        let mut events = [chunk0, run_start];
        events.sort_by_key(order_key);
        assert!(events[0].is_coordinator());
        assert_eq!(events[1], chunk0);
    }
}
