//! Exporters: human summary table, JSON snapshot, Chrome trace-event JSON
//! (Perfetto-viewable), and Prometheus text exposition.
//!
//! All four render from a [`Snapshot`], so they can run long after the
//! engine finished and never touch the record path. JSON is hand-rolled —
//! the repo deliberately has no serialization dependency — and every
//! string that reaches the output goes through [`json_escape`].

use crate::journal::{Event, EventKind};
use crate::metrics::HistSnapshot;
use crate::sink::Snapshot;
use std::fmt::Write as _;

/// Escapes a string for inclusion inside JSON double quotes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a nanosecond latency with a human-friendly unit.
fn human_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.2} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.2} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.2} µs", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    }
}

/// Renders the human-readable summary table (the thing printed to stderr
/// at the end of an observed run).
pub fn render_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("── observability summary ─────────────────────────────\n");
    out.push_str("counters:\n");
    for (name, value) in &snap.counters {
        if *value != 0 {
            let _ = writeln!(out, "  {name:<18} {value}");
        }
    }
    out.push_str("gauges:\n");
    for (name, value) in &snap.gauges {
        if *value != 0 {
            let _ = writeln!(out, "  {name:<18} {value}");
        }
    }
    out.push_str("latency (p50 / p95 / p99 / max / mean):\n");
    let mut hists: Vec<HistSnapshot> = snap.histograms.clone();
    hists.push(snap.decode_shot_hist());
    for h in &hists {
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>10} / {:>10} / {:>10} / {:>10} / {:>10}   (n={})",
            h.name,
            human_nanos(h.quantile_nanos(0.50)),
            human_nanos(h.quantile_nanos(0.95)),
            human_nanos(h.quantile_nanos(0.99)),
            human_nanos(h.max_nanos as f64),
            human_nanos(h.mean_nanos()),
            h.count
        );
    }
    let _ = writeln!(out, "journal: {} events", snap.events.len());
    out.push_str("──────────────────────────────────────────────────────\n");
    out
}

fn hist_json(h: &HistSnapshot) -> String {
    let mut buckets = String::from("{");
    let mut first = true;
    for (i, &b) in h.buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let _ = write!(buckets, "\"{}\":{}", crate::metrics::bucket_lo(i), b);
    }
    buckets.push('}');
    format!(
        "{{\"name\":\"{}\",\"count\":{},\"sum_nanos\":{},\"max_nanos\":{},\"p50_nanos\":{:.1},\"p95_nanos\":{:.1},\"p99_nanos\":{:.1},\"mean_nanos\":{:.1},\"buckets\":{}}}",
        json_escape(h.name),
        h.count,
        h.sum_nanos,
        h.max_nanos,
        h.quantile_nanos(0.50),
        h.quantile_nanos(0.95),
        h.quantile_nanos(0.99),
        h.mean_nanos(),
        buckets
    )
}

fn event_json(e: &Event) -> String {
    let mut fields = format!(
        "\"kind\":\"{}\",\"run\":{},\"chunk\":{},\"seq\":{},\"worker\":{},\"t_nanos\":{}",
        e.kind.tag(),
        e.run,
        e.chunk,
        e.seq,
        e.worker as i64 as i32, // COORDINATOR renders as -1
        e.t_nanos
    );
    match e.kind {
        EventKind::RunStart { threads, chunks } => {
            let _ = write!(fields, ",\"threads\":{threads},\"chunks\":{chunks}");
        }
        EventKind::EpochReweight { epoch, nanos } => {
            let _ = write!(fields, ",\"epoch\":{epoch},\"nanos\":{nanos}");
        }
        EventKind::ChunkStart { rung } => {
            let _ = write!(fields, ",\"rung\":{rung}");
        }
        EventKind::ChunkFinish {
            rung,
            shots,
            failures,
            tier0,
            tier1,
            tier2,
            sample_nanos,
            extract_nanos,
            predecode_nanos,
            decode_nanos,
        } => {
            let _ = write!(
                fields,
                ",\"rung\":{rung},\"shots\":{shots},\"failures\":{failures},\"tier0\":{tier0},\"tier1\":{tier1},\"tier2\":{tier2},\"sample_nanos\":{sample_nanos},\"extract_nanos\":{extract_nanos},\"predecode_nanos\":{predecode_nanos},\"decode_nanos\":{decode_nanos}"
            );
        }
        EventKind::Fault { kind, rung } => {
            let _ = write!(
                fields,
                ",\"fault_kind\":\"{}\",\"rung\":{rung}",
                json_escape(kind)
            );
        }
        EventKind::Retry { rung } => {
            let _ = write!(fields, ",\"rung\":{rung}");
        }
        EventKind::ChunkWeights { sum_w, sum_wf, ess } => {
            let _ = write!(
                fields,
                ",\"sum_w\":{sum_w:.6},\"sum_wf\":{sum_wf:.6},\"ess\":{ess:.3}"
            );
        }
        EventKind::ClusterGate { on, off } => {
            let _ = write!(fields, ",\"on\":{on},\"off\":{off}");
        }
        EventKind::Shed {
            patch,
            window,
            rung,
        } => {
            let _ = write!(
                fields,
                ",\"patch\":{patch},\"window\":{window},\"rung\":{rung}"
            );
        }
        EventKind::Wedge {
            worker,
            patch,
            window,
        } => {
            let _ = write!(
                fields,
                ",\"wedged_worker\":{worker},\"patch\":{patch},\"window\":{window}"
            );
        }
    }
    format!("{{{fields}}}")
}

/// Renders the full snapshot as a JSON object: `counters` and `gauges`
/// maps, a `histograms` array (with precomputed p50/p95/p99 and the raw
/// non-empty buckets keyed by lower bound), and the `events` journal.
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), value);
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), value);
    }
    out.push_str("\n  },\n  \"histograms\": [");
    let mut hists: Vec<HistSnapshot> = snap.histograms.clone();
    hists.push(snap.decode_shot_hist());
    for (i, h) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&hist_json(h));
    }
    out.push_str("\n  ],\n  \"events\": [");
    for (i, e) in snap.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&event_json(e));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the journal as Chrome trace-event JSON (the `traceEvents`
/// format), viewable in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
///
/// Chunk attempts become `"X"` (complete) events — one slice per
/// start/finish pair on the worker's track — faults and retries become
/// `"i"` (instant) markers, and epoch reweights become slices on a
/// dedicated coordinator track. `pid` is the engine run, `tid` the worker.
pub fn render_chrome_trace(snap: &Snapshot) -> String {
    let mut items: Vec<String> = Vec::new();
    let us = |nanos: u64| nanos as f64 / 1e3;
    // Pending ChunkStart timestamps keyed by (run, chunk); retries of a
    // chunk nest start/finish pairs in sequence order, so a stack suffices.
    let mut open: Vec<((u32, u32), u64)> = Vec::new();
    for e in &snap.events {
        match e.kind {
            EventKind::RunStart { threads, chunks } => {
                items.push(format!(
                    "{{\"name\":\"run_start\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{:.3},\"pid\":{},\"tid\":0,\"args\":{{\"threads\":{},\"chunks\":{}}}}}",
                    us(e.t_nanos), e.run, threads, chunks
                ));
            }
            EventKind::EpochReweight { epoch, nanos } => {
                items.push(format!(
                    "{{\"name\":\"epoch_reweight\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":\"coordinator\",\"args\":{{\"epoch\":{}}}}}",
                    us(e.t_nanos.saturating_sub(nanos)),
                    us(nanos),
                    e.run,
                    epoch
                ));
            }
            EventKind::ChunkStart { .. } => {
                open.push(((e.run, e.chunk), e.t_nanos));
            }
            EventKind::ChunkFinish {
                rung,
                shots,
                failures,
                tier0,
                tier1,
                tier2,
                ..
            } => {
                let start = open
                    .iter()
                    .rposition(|(key, _)| *key == (e.run, e.chunk))
                    .map(|i| open.remove(i).1)
                    .unwrap_or(e.t_nanos);
                items.push(format!(
                    "{{\"name\":\"chunk {} (rung {})\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"shots\":{},\"failures\":{},\"tier0\":{},\"tier1\":{},\"tier2\":{}}}}}",
                    e.chunk,
                    rung,
                    us(start),
                    us(e.t_nanos.saturating_sub(start)),
                    e.run,
                    e.worker,
                    shots,
                    failures,
                    tier0,
                    tier1,
                    tier2
                ));
            }
            EventKind::Fault { kind, rung } => {
                // A faulted attempt never emits ChunkFinish; close its slice.
                if let Some(i) = open.iter().rposition(|(key, _)| *key == (e.run, e.chunk)) {
                    let (_, start) = open.remove(i);
                    items.push(format!(
                        "{{\"name\":\"chunk {} FAULT ({})\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"rung\":{}}}}}",
                        e.chunk,
                        json_escape(kind),
                        us(start),
                        us(e.t_nanos.saturating_sub(start)),
                        e.run,
                        e.worker,
                        rung
                    ));
                }
                items.push(format!(
                    "{{\"name\":\"fault:{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"chunk\":{},\"rung\":{}}}}}",
                    json_escape(kind),
                    us(e.t_nanos),
                    e.run,
                    e.worker,
                    e.chunk,
                    rung
                ));
            }
            EventKind::Retry { rung } => {
                items.push(format!(
                    "{{\"name\":\"retry\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"chunk\":{},\"rung\":{}}}}}",
                    us(e.t_nanos),
                    e.run,
                    e.worker,
                    e.chunk,
                    rung
                ));
            }
            EventKind::ChunkWeights { sum_w, sum_wf, ess } => {
                items.push(format!(
                    "{{\"name\":\"chunk_weights\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"chunk\":{},\"sum_w\":{:.6},\"sum_wf\":{:.6},\"ess\":{:.3}}}}}",
                    us(e.t_nanos),
                    e.run,
                    e.worker,
                    e.chunk,
                    sum_w,
                    sum_wf,
                    ess
                ));
            }
            EventKind::ClusterGate { on, off } => {
                items.push(format!(
                    "{{\"name\":\"cluster_gate\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"chunk\":{},\"on\":{},\"off\":{}}}}}",
                    us(e.t_nanos),
                    e.run,
                    e.worker,
                    e.chunk,
                    on,
                    off
                ));
            }
            EventKind::Shed {
                patch,
                window,
                rung,
            } => {
                items.push(format!(
                    "{{\"name\":\"shed (rung {})\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"patch\":{},\"window\":{}}}}}",
                    rung,
                    us(e.t_nanos),
                    e.run,
                    e.worker,
                    patch,
                    window
                ));
            }
            EventKind::Wedge {
                worker,
                patch,
                window,
            } => {
                items.push(format!(
                    "{{\"name\":\"wedge\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"wedged_worker\":{},\"patch\":{},\"window\":{}}}}}",
                    us(e.t_nanos),
                    e.run,
                    e.worker,
                    worker,
                    patch,
                    window
                ));
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(item);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders the snapshot in Prometheus text exposition format (version
/// 0.0.4): counters as `caliqec_<name>_total`, gauges as `caliqec_<name>`,
/// histograms as `caliqec_<name>_seconds` with cumulative `le` buckets in
/// seconds. Suitable for serving verbatim from a `/metrics` endpoint.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "# TYPE caliqec_{name}_total counter");
        let _ = writeln!(out, "caliqec_{name}_total {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "# TYPE caliqec_{name} gauge");
        let _ = writeln!(out, "caliqec_{name} {value}");
    }
    for h in &snap.histograms {
        let name = h.name;
        let _ = writeln!(out, "# TYPE caliqec_{name}_seconds histogram");
        let mut cumulative = 0u64;
        for (i, &b) in h.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            cumulative += b;
            let le = crate::metrics::bucket_hi(i) as f64 / 1e9;
            let _ = writeln!(
                out,
                "caliqec_{name}_seconds_bucket{{le=\"{le:e}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "caliqec_{name}_seconds_bucket{{le=\"+Inf\"}} {}",
            h.count
        );
        let _ = writeln!(
            out,
            "caliqec_{name}_seconds_sum {}",
            h.sum_nanos as f64 / 1e9
        );
        let _ = writeln!(out, "caliqec_{name}_seconds_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Hist};
    use crate::sink::ObsSink;

    fn sample_snapshot() -> Snapshot {
        let sink = ObsSink::enabled();
        let run = sink.begin_run();
        let mut coord = sink.worker(run, Event::COORDINATOR);
        coord.event(EventKind::RunStart {
            threads: 2,
            chunks: 4,
        });
        coord.flush();
        let mut w = sink.worker(run, 0);
        w.begin_chunk(0);
        w.event(EventKind::ChunkStart { rung: 0 });
        w.event(EventKind::Fault {
            kind: "panic",
            rung: 0,
        });
        w.event(EventKind::Retry { rung: 1 });
        w.event(EventKind::ChunkStart { rung: 1 });
        w.event(EventKind::ChunkFinish {
            rung: 1,
            shots: 64,
            failures: 1,
            tier0: 10,
            tier1: 20,
            tier2: 34,
            sample_nanos: 100,
            extract_nanos: 200,
            predecode_nanos: 300,
            decode_nanos: 400,
        });
        w.add(Counter::ShotsTier2, 34);
        w.record(Hist::DecodeShotRung1, 1500);
        w.record(Hist::DecodeShotRung1, 2500);
        w.flush();
        sink.snapshot()
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_mentions_counters_and_latency() {
        let s = render_summary(&sample_snapshot());
        assert!(s.contains("shots_tier2"), "{s}");
        assert!(s.contains("decode_shot_rung1"), "{s}");
        assert!(s.contains("journal: 6 events"), "{s}");
    }

    #[test]
    fn json_snapshot_is_balanced_and_complete() {
        let s = render_json(&sample_snapshot());
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "unbalanced braces:\n{s}"
        );
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert!(s.contains("\"shots_tier2\": 34"));
        assert!(s.contains("\"kind\":\"fault\""));
        assert!(s.contains("\"fault_kind\":\"panic\""));
        assert!(s.contains("\"decode_shot\"")); // merged view present
    }

    #[test]
    fn chrome_trace_pairs_chunk_slices() {
        let s = render_chrome_trace(&sample_snapshot());
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("chunk 0 (rung 1)"));
        assert!(s.contains("chunk 0 FAULT (panic)"));
        assert!(s.contains("\"ph\":\"i\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let s = render_prometheus(&sample_snapshot());
        assert!(s.contains("# TYPE caliqec_shots_tier2_total counter"));
        assert!(s.contains("caliqec_shots_tier2_total 34"));
        assert!(s.contains("caliqec_decode_shot_rung1_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(s.contains("caliqec_decode_shot_rung1_seconds_count 2"));
        // Every bucket line's value must be <= the +Inf count.
        for line in s.lines() {
            if line.contains("decode_shot_rung1_seconds_bucket") {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v <= 2, "{line}");
            }
        }
    }
}
