//! Lock-free metric shards: counters, gauges, and log-bucketed latency
//! histograms.
//!
//! The metric *names* are closed enums ([`Counter`], [`Gauge`], [`Hist`]),
//! so a shard is a handful of fixed-size atomic arrays — no hashing, no
//! allocation, no locking on the record path. Each worker thread records
//! into its own [`Shard`] (handed out by `ObsSink::worker`), so the atomics
//! are uncontended; a snapshot sums the shards after the fact.
//!
//! Histograms bucket latencies by the binary order of magnitude of the
//! nanosecond count: bucket `i` covers `[2^i, 2^{i+1})` ns (bucket 0 also
//! absorbs 0). Sixty-four buckets cover the full `u64` nanosecond range,
//! so no sample can saturate the top bucket. Quantiles are read back with
//! linear interpolation inside the winning bucket, clamped to the exact
//! running maximum, so p50/p95/p99 resolve to ~±50% of the true value —
//! plenty for "did tier-2 p99 regress 3×" questions — and a sparse
//! histogram (one sample pinning every quantile to its bucket's upper
//! bound) can no longer report above the largest sample seen. Cost: one
//! `leading_zeros`, two relaxed increments, and one relaxed `fetch_max`
//! per sample.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log-scaled latency buckets per histogram.
pub const HIST_BUCKETS: usize = 64;

/// Maps a nanosecond latency to its histogram bucket: the binary order of
/// magnitude, saturated to the last bucket.
#[inline]
pub fn latency_bucket(nanos: u64) -> usize {
    if nanos < 2 {
        0
    } else {
        ((63 - nanos.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` in nanoseconds.
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Exclusive upper bound of bucket `i` in nanoseconds (the last bucket
/// saturates to `u64::MAX`, since its true bound `2^64` is unrepresentable).
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// Monotone event counters. Closed set: adding a counter is a code change,
/// which keeps shards allocation-free and exporters exhaustive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Engine runs started on this sink.
    RunsStarted,
    /// Chunks claimed by workers (counted once per chunk, not per attempt).
    ChunksStarted,
    /// Chunks that completed on some ladder rung.
    ChunksFinished,
    /// Shots with an empty defect list (tier 0: decoding skipped).
    ShotsTier0,
    /// Shots resolved by the tier-1 predecoder.
    ShotsTier1,
    /// Shots decoded by the full decoder (tier 2).
    ShotsTier2,
    /// Dense shots fully resolved by the cluster tier (every flood cluster
    /// certified and peeled — zero full-decoder calls).
    ShotsCluster,
    /// Shots decoded on a degraded ladder rung (rung > 0).
    ShotsDegraded,
    /// Chunk attempts that ended in a caught panic.
    FaultsPanic,
    /// Chunk attempts that overran their stall deadline.
    FaultsStall,
    /// Chunk attempts rejected by graph validation.
    FaultsGraph,
    /// Ladder retries launched in response to faults.
    Retries,
    /// Per-epoch graph reweights performed before workers launched.
    EpochReweights,
    /// Shots sampled under boosted (importance-sampled) rates, carrying
    /// per-shot likelihood weights.
    ShotsWeighted,
    /// Chunks that finished on the pristine rung 0.
    ChunksRung0,
    /// Chunks that finished on rung 1 (fresh decoder, no predecode).
    ChunksRung1,
    /// Chunks that finished on rung 2 (reference decoder on the fallback
    /// graph).
    ChunksRung2,
    /// Rounds admitted into a streaming tenant's ingress queue.
    RoundsIngested,
    /// Rounds decoded at full fidelity by the streaming service (rung 0 of
    /// the shed ladder).
    RoundsDecoded,
    /// Rounds shed to the predecode/cluster-only fast path (rung 1 of the
    /// shed ladder) after missing their deadline.
    RoundsShed,
    /// Rounds declared deferred (rung 2 of the shed ladder): no correction
    /// produced, honestly accounted instead of silently dropped.
    RoundsDeferred,
    /// Rounds refused at admission by backpressure (ingress queue at its
    /// configured bound). Rejected rounds are *not* counted as ingested.
    RoundsRejected,
    /// Same-seed deterministic window retries after a worker fault or wedge.
    StreamRetries,
    /// Wedged-worker detections by the streaming watchdog.
    WorkerWedges,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 24] = [
        Counter::RunsStarted,
        Counter::ChunksStarted,
        Counter::ChunksFinished,
        Counter::ShotsTier0,
        Counter::ShotsTier1,
        Counter::ShotsTier2,
        Counter::ShotsCluster,
        Counter::ShotsDegraded,
        Counter::FaultsPanic,
        Counter::FaultsStall,
        Counter::FaultsGraph,
        Counter::Retries,
        Counter::EpochReweights,
        Counter::ShotsWeighted,
        Counter::ChunksRung0,
        Counter::ChunksRung1,
        Counter::ChunksRung2,
        Counter::RoundsIngested,
        Counter::RoundsDecoded,
        Counter::RoundsShed,
        Counter::RoundsDeferred,
        Counter::RoundsRejected,
        Counter::StreamRetries,
        Counter::WorkerWedges,
    ];

    /// Stable snake-case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RunsStarted => "runs_started",
            Counter::ChunksStarted => "chunks_started",
            Counter::ChunksFinished => "chunks_finished",
            Counter::ShotsTier0 => "shots_tier0",
            Counter::ShotsTier1 => "shots_tier1",
            Counter::ShotsTier2 => "shots_tier2",
            Counter::ShotsCluster => "shots_cluster",
            Counter::ShotsDegraded => "shots_degraded",
            Counter::FaultsPanic => "faults_panic",
            Counter::FaultsStall => "faults_stall",
            Counter::FaultsGraph => "faults_graph",
            Counter::Retries => "retries",
            Counter::EpochReweights => "epoch_reweights",
            Counter::ShotsWeighted => "shots_weighted",
            Counter::ChunksRung0 => "chunks_rung0",
            Counter::ChunksRung1 => "chunks_rung1",
            Counter::ChunksRung2 => "chunks_rung2",
            Counter::RoundsIngested => "rounds_ingested",
            Counter::RoundsDecoded => "rounds_decoded",
            Counter::RoundsShed => "rounds_shed",
            Counter::RoundsDeferred => "rounds_deferred",
            Counter::RoundsRejected => "rounds_rejected",
            Counter::StreamRetries => "stream_retries",
            Counter::WorkerWedges => "worker_wedges",
        }
    }
}

/// Last-value gauges describing the run's shape. Merged across shards by
/// maximum, so any shard that set the value wins over the zero default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Worker threads the engine launched.
    Workers,
    /// Chunks in the deterministic schedule.
    ChunksPlanned,
    /// Calibration epochs active during the run.
    Epochs,
    /// Effective sample size of the latest rare-event run, rounded down
    /// (equal to the shot count on plain unweighted runs).
    Ess,
    /// Tenant patches registered with the streaming service.
    StreamTenants,
    /// High-water mark of any single tenant's ingress queue depth, in
    /// windows (never exceeds the configured queue bound).
    StreamQueuePeak,
}

impl Gauge {
    /// Every gauge, in export order.
    pub const ALL: [Gauge; 6] = [
        Gauge::Workers,
        Gauge::ChunksPlanned,
        Gauge::Epochs,
        Gauge::Ess,
        Gauge::StreamTenants,
        Gauge::StreamQueuePeak,
    ];

    /// Stable snake-case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::Workers => "workers",
            Gauge::ChunksPlanned => "chunks_planned",
            Gauge::Epochs => "epochs",
            Gauge::Ess => "ess",
            Gauge::StreamTenants => "stream_tenants",
            Gauge::StreamQueuePeak => "stream_queue_peak",
        }
    }
}

/// Latency histograms. Per-shot tiers are split by decode tier and ladder
/// rung so the service question — "what is p99 decode latency, and does it
/// survive degradation?" — reads straight off the snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Per-shot latency of a tier-1 predecoder certification attempt
    /// (successful or not — failed candidates continue to the full
    /// decoder).
    PredecodeShot,
    /// Per-shot full-decode latency on the pristine rung 0.
    DecodeShotRung0,
    /// Per-shot full-decode latency on rung 1 (no predecode, fresh decoder).
    DecodeShotRung1,
    /// Per-shot full-decode latency on rung 2 (reference decoder).
    DecodeShotRung2,
    /// Per-shot flood-decomposition latency for a dense shot fully
    /// resolved by the cluster tier (decompose + certify + peel, no
    /// decoder call).
    ClusterShot,
    /// Wall time of one whole chunk attempt (sample + extract + dispatch +
    /// decode).
    ChunkWall,
    /// Time to build one epoch's reweighted graph + predecoder tables.
    EpochReweight,
    /// Streaming round latency: enqueue at admission to disposition
    /// (decoded, shed, or deferred). Includes queueing delay, so this is
    /// the service-level p99 the deadline budget is judged against.
    RoundLatency,
    /// Pure decode time of one streaming window (excludes queueing).
    WindowDecode,
}

impl Hist {
    /// Every histogram, in export order.
    pub const ALL: [Hist; 9] = [
        Hist::PredecodeShot,
        Hist::DecodeShotRung0,
        Hist::DecodeShotRung1,
        Hist::DecodeShotRung2,
        Hist::ClusterShot,
        Hist::ChunkWall,
        Hist::EpochReweight,
        Hist::RoundLatency,
        Hist::WindowDecode,
    ];

    /// Stable snake-case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Hist::PredecodeShot => "predecode_shot",
            Hist::DecodeShotRung0 => "decode_shot_rung0",
            Hist::DecodeShotRung1 => "decode_shot_rung1",
            Hist::DecodeShotRung2 => "decode_shot_rung2",
            Hist::ClusterShot => "cluster_shot",
            Hist::ChunkWall => "chunk_wall",
            Hist::EpochReweight => "epoch_reweight",
            Hist::RoundLatency => "round_latency",
            Hist::WindowDecode => "window_decode",
        }
    }
}

/// One histogram's atomics inside a shard.
#[derive(Debug)]
struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

/// One worker's private slab of metric atomics. Only its owning worker
/// writes it (relaxed stores — no contention); snapshots read it from any
/// thread.
#[derive(Debug)]
pub struct Shard {
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    hists: [HistShard; Hist::ALL.len()],
}

impl Default for Shard {
    fn default() -> Shard {
        Shard::new()
    }
}

impl Shard {
    /// A zeroed shard.
    pub fn new() -> Shard {
        Shard {
            counters: [const { AtomicU64::new(0) }; Counter::ALL.len()],
            gauges: [const { AtomicU64::new(0) }; Gauge::ALL.len()],
            hists: [
                HistShard::new(),
                HistShard::new(),
                HistShard::new(),
                HistShard::new(),
                HistShard::new(),
                HistShard::new(),
                HistShard::new(),
                HistShard::new(),
                HistShard::new(),
            ],
        }
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, delta: u64) {
        self.counters[c as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&self, g: Gauge, value: u64) {
        self.gauges[g as usize].store(value, Ordering::Relaxed);
    }

    /// Records one latency sample into a histogram.
    #[inline]
    pub fn record(&self, h: Hist, nanos: u64) {
        let hs = &self.hists[h as usize];
        hs.buckets[latency_bucket(nanos)].fetch_add(1, Ordering::Relaxed);
        hs.count.fetch_add(1, Ordering::Relaxed);
        hs.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        hs.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram, merged across shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Stable metric name ([`Hist::name`], or a caller-chosen name for
    /// merged views).
    pub name: &'static str,
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^{i+1})` ns).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded latencies in nanoseconds.
    pub sum_nanos: u64,
    /// Exact largest sample in nanoseconds (0 for an empty histogram).
    /// Quantiles clamp to it, so a sparse histogram never reports a
    /// percentile above the worst latency actually observed.
    pub max_nanos: u64,
}

impl HistSnapshot {
    /// An empty histogram named `name`.
    pub fn empty(name: &'static str) -> HistSnapshot {
        HistSnapshot {
            name,
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// Sums several histograms into one view named `name` (e.g. the three
    /// per-rung decode histograms into one tier-2 histogram). The exact
    /// maxima merge by max.
    pub fn merged(name: &'static str, parts: &[&HistSnapshot]) -> HistSnapshot {
        let mut out = HistSnapshot::empty(name);
        for p in parts {
            for (acc, b) in out.buckets.iter_mut().zip(p.buckets.iter()) {
                *acc += b;
            }
            out.count += p.count;
            out.sum_nanos += p.sum_nanos;
            out.max_nanos = out.max_nanos.max(p.max_nanos);
        }
        out
    }

    /// The `q`-quantile latency in nanoseconds (`q` in `[0, 1]`), linearly
    /// interpolated inside the winning bucket and clamped to the exact
    /// running maximum (no quantile can exceed the largest sample — in
    /// particular a single-sample histogram reports that sample exactly
    /// instead of pinning every quantile to its bucket's upper bound).
    /// Returns 0 for an empty histogram.
    pub fn quantile_nanos(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let next = seen + b;
            if (next as f64) >= target {
                let into = (target - seen as f64) / b as f64;
                let lo = bucket_lo(i) as f64;
                let hi = bucket_hi(i) as f64;
                return (lo + into * (hi - lo)).min(self.max_nanos as f64);
            }
            seen = next;
        }
        (bucket_hi(HIST_BUCKETS - 1) as f64).min(self.max_nanos as f64)
    }

    /// Mean latency in nanoseconds (0 for an empty histogram).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }
}

/// Named `(metric, value)` pairs in export order.
pub(crate) type NamedValues = Vec<(&'static str, u64)>;

/// Sums `shards` into `(counters, gauges, histograms)` snapshot vectors.
/// Counters add; gauges take the maximum (only one shard sets each).
pub(crate) fn merge_shards(
    shards: &[std::sync::Arc<Shard>],
) -> (NamedValues, NamedValues, Vec<HistSnapshot>) {
    let counters = Counter::ALL
        .iter()
        .map(|&c| {
            let total: u64 = shards
                .iter()
                .map(|s| s.counters[c as usize].load(Ordering::Relaxed))
                .sum();
            (c.name(), total)
        })
        .collect();
    let gauges = Gauge::ALL
        .iter()
        .map(|&g| {
            let max = shards
                .iter()
                .map(|s| s.gauges[g as usize].load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            (g.name(), max)
        })
        .collect();
    let hists = Hist::ALL
        .iter()
        .map(|&h| {
            let mut out = HistSnapshot::empty(h.name());
            for s in shards {
                let hs = &s.hists[h as usize];
                for (acc, b) in out.buckets.iter_mut().zip(hs.buckets.iter()) {
                    *acc += b.load(Ordering::Relaxed);
                }
                out.count += hs.count.load(Ordering::Relaxed);
                out.sum_nanos += hs.sum_nanos.load(Ordering::Relaxed);
                out.max_nanos = out.max_nanos.max(hs.max_nanos.load(Ordering::Relaxed));
            }
            out
        })
        .collect();
    (counters, gauges, hists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_binary_orders_of_magnitude() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1023), 9);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), HIST_BUCKETS - 1);
        for i in 0..HIST_BUCKETS {
            assert_eq!(latency_bucket(bucket_lo(i).max(1)), i.min(HIST_BUCKETS - 1));
            assert!(bucket_lo(i) < bucket_hi(i));
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = HistSnapshot::empty("t");
        assert_eq!(h.quantile_nanos(0.5), 0.0);
        // 100 samples at exactly 1024 ns -> bucket 10 = [1024, 2048).
        h.buckets[10] = 100;
        h.count = 100;
        h.sum_nanos = 100 * 1024;
        h.max_nanos = 1024;
        let p50 = h.quantile_nanos(0.5);
        assert!((1024.0..2048.0).contains(&p50), "{p50}");
        let p99 = h.quantile_nanos(0.99);
        assert!(p99 >= p50, "{p99} < {p50}");
        assert!((h.mean_nanos() - 1024.0).abs() < 1e-9);
    }

    /// Regression: a single sample used to pin p50 == p95 == p99 to its
    /// bucket's upper bound (the d=21 `cluster_p50_us == 65.536` artifact);
    /// the exact running max caps every quantile at the true sample.
    #[test]
    fn sparse_histograms_clamp_quantiles_to_exact_max() {
        let shard = std::sync::Arc::new(Shard::new());
        shard.record(Hist::ClusterShot, 43_000);
        let (_, _, hists) = merge_shards(&[shard]);
        let h = hists.iter().find(|h| h.name == "cluster_shot").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.max_nanos, 43_000);
        for q in [0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_nanos(q), 43_000.0, "q={q}");
        }
    }

    #[test]
    fn shard_record_and_merge_round_trip() {
        let shard = std::sync::Arc::new(Shard::new());
        shard.add(Counter::ShotsTier2, 7);
        shard.add(Counter::ShotsTier2, 3);
        shard.set(Gauge::Workers, 4);
        shard.record(Hist::DecodeShotRung0, 1000);
        shard.record(Hist::DecodeShotRung0, 2000);
        let (counters, gauges, hists) = merge_shards(&[shard]);
        assert!(counters.contains(&("shots_tier2", 10)));
        assert!(gauges.contains(&("workers", 4)));
        let h = hists
            .iter()
            .find(|h| h.name == "decode_shot_rung0")
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_nanos, 3000);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn merged_histograms_sum_parts() {
        let mut a = HistSnapshot::empty("a");
        a.buckets[3] = 5;
        a.count = 5;
        a.sum_nanos = 50;
        let mut b = HistSnapshot::empty("b");
        b.buckets[4] = 2;
        b.count = 2;
        b.sum_nanos = 40;
        let m = HistSnapshot::merged("m", &[&a, &b]);
        assert_eq!(m.count, 7);
        assert_eq!(m.sum_nanos, 90);
        assert_eq!(m.buckets[3], 5);
        assert_eq!(m.buckets[4], 2);
    }
}
