//! [`ObsSink`] — the handle the engine records through — and [`Snapshot`],
//! the merged read-out.
//!
//! A sink is either *enabled* (an `Arc` of shard registry + journal) or
//! *disabled* (no allocation at all). Every record method starts with one
//! branch on that option; disabled sinks never touch a clock, an atomic,
//! or the heap, which is what keeps observability zero-cost when off.
//!
//! The record path is contention-free by construction: each worker thread
//! asks for its own [`WorkerObs`], whose metric shard only that worker
//! writes and whose event buffer is plain worker-local memory. The only
//! cross-thread traffic is the lock-free segment push at chunk boundaries
//! (see [`crate::journal`]) and the once-per-worker shard registration.

use crate::journal::{order_key, Event, EventKind, SegStack};
use crate::metrics::{merge_shards, Counter, Gauge, Hist, HistSnapshot, Shard};
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

struct Inner {
    /// Monotonic anchor every timestamp is measured from.
    epoch: Instant,
    /// Next engine-run id.
    runs: AtomicU32,
    /// Registered worker shards (pushed once per worker handle; the lock
    /// never sits on a record path).
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Flushed journal segments, merged lazily at snapshot time.
    journal: SegStack,
    /// Events already drained by earlier snapshots (snapshots are
    /// cumulative, not destructive).
    merged: Mutex<Vec<Event>>,
}

/// Cloneable observability handle. `disabled()` is a no-op sink the engine
/// uses by default; `enabled()` allocates the shared registry.
#[derive(Clone, Default)]
pub struct ObsSink {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsSink")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl ObsSink {
    /// A sink that records nothing and allocates nothing.
    pub fn disabled() -> ObsSink {
        ObsSink { inner: None }
    }

    /// A live sink; timestamps are measured from this call.
    pub fn enabled() -> ObsSink {
        ObsSink {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                runs: AtomicU32::new(0),
                shards: Mutex::new(Vec::new()),
                journal: SegStack::new(),
                merged: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Builds an enabled or disabled sink in one call.
    pub fn new(enabled: bool) -> ObsSink {
        if enabled {
            ObsSink::enabled()
        } else {
            ObsSink::disabled()
        }
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Allocates the next engine-run id (0 on a disabled sink). Runs are
    /// started sequentially by the engine's entry points, so ids are
    /// deterministic for a fixed call sequence.
    pub fn begin_run(&self) -> u32 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.runs.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A recording handle for one worker of run `run`. Pass
    /// [`Event::COORDINATOR`] as `worker` for run-level events recorded
    /// outside the worker pool. On a disabled sink the handle is inert.
    pub fn worker(&self, run: u32, worker: u32) -> WorkerObs {
        let shard = self.inner.as_ref().map(|inner| {
            let shard = Arc::new(Shard::new());
            inner
                .shards
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(shard.clone());
            shard
        });
        WorkerObs {
            inner: self.inner.clone(),
            shard,
            run,
            worker,
            chunk: 0,
            seq: 0,
            buf: Vec::new(),
        }
    }

    /// Merges every shard and every flushed journal segment into a
    /// [`Snapshot`]. Returns an empty snapshot on a disabled sink.
    /// Cumulative: events drained here stay visible to later snapshots.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let shards = inner
            .shards
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let (counters, gauges, histograms) = merge_shards(&shards);
        let mut merged = inner.merged.lock().unwrap_or_else(PoisonError::into_inner);
        merged.extend(inner.journal.drain());
        merged.sort_by_key(order_key);
        Snapshot {
            counters,
            gauges,
            histograms,
            events: merged.clone(),
        }
    }
}

/// Per-worker recording handle. Not `Clone`: exactly one owner writes the
/// shard and the event buffer, which is what makes the hot path
/// contention-free. Dropping the handle flushes any buffered events.
pub struct WorkerObs {
    inner: Option<Arc<Inner>>,
    shard: Option<Arc<Shard>>,
    run: u32,
    worker: u32,
    chunk: u32,
    seq: u32,
    buf: Vec<Event>,
}

impl fmt::Debug for WorkerObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerObs")
            .field("enabled", &self.inner.is_some())
            .field("run", &self.run)
            .field("worker", &self.worker)
            .finish()
    }
}

impl WorkerObs {
    /// An inert handle (shorthand for `ObsSink::disabled().worker(0, 0)`),
    /// for code paths that need a handle but no sink.
    pub fn disabled() -> WorkerObs {
        ObsSink::disabled().worker(0, 0)
    }

    /// Whether anything is recorded. Callers guard non-trivial work (clock
    /// reads, formatting) behind this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `Instant::now()` when enabled, `None` when disabled — the per-shot
    /// timing pattern is `let t = obs.clock();` ... `obs.record_since(h, t)`.
    #[inline]
    pub fn clock(&self) -> Option<Instant> {
        self.enabled().then(Instant::now)
    }

    /// Records the elapsed time since `started` (a previous [`clock`]
    /// reading) into `h`, returning the fresh reading so per-shot loops pay
    /// one clock call per sample. No-op when `started` is `None`.
    ///
    /// [`clock`]: WorkerObs::clock
    #[inline]
    pub fn record_since(&mut self, h: Hist, started: Option<Instant>) -> Option<Instant> {
        let t0 = started?;
        let now = Instant::now();
        self.record(h, (now - t0).as_nanos() as u64);
        Some(now)
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, delta: u64) {
        if let Some(shard) = &self.shard {
            shard.add(c, delta);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, g: Gauge, value: u64) {
        if let Some(shard) = &self.shard {
            shard.set(g, value);
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, h: Hist, nanos: u64) {
        if let Some(shard) = &self.shard {
            shard.record(h, nanos);
        }
    }

    /// Starts a new chunk scope: subsequent events carry `chunk` and a
    /// sequence number restarting at 0. Retries of the same chunk must NOT
    /// call this again — their events continue the chunk's sequence.
    pub fn begin_chunk(&mut self, chunk: u32) {
        self.chunk = chunk;
        self.seq = 0;
    }

    /// Appends an event to the worker-local buffer (no cross-thread
    /// traffic until [`WorkerObs::flush`]).
    pub fn event(&mut self, kind: EventKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let seq = self.seq;
        self.seq += 1;
        self.buf.push(Event {
            run: self.run,
            chunk: self.chunk,
            seq,
            worker: self.worker,
            t_nanos: inner.epoch.elapsed().as_nanos() as u64,
            kind,
        });
    }

    /// Flushes buffered events as one segment (lock-free push). Called at
    /// chunk boundaries so segment granularity matches the deterministic
    /// unit of work.
    pub fn flush(&mut self) {
        if let Some(inner) = &self.inner {
            if !self.buf.is_empty() {
                inner.journal.push(std::mem::take(&mut self.buf));
            }
        }
    }
}

impl Drop for WorkerObs {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Point-in-time merged view of a sink: every counter/gauge, every
/// histogram, and the journal in deterministic order.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every [`Counter`], in export order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every [`Gauge`], in export order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Every [`Hist`], merged across shards.
    pub histograms: Vec<HistSnapshot>,
    /// The journal, sorted by [`order_key`].
    pub events: Vec<Event>,
}

impl Snapshot {
    /// Looks up a counter by name (0 if absent, e.g. on an empty snapshot).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks up a histogram by its [`Hist::name`].
    pub fn hist(&self, h: Hist) -> Option<&HistSnapshot> {
        self.histograms.iter().find(|s| s.name == h.name())
    }

    /// The three per-rung full-decode histograms merged into one tier-2
    /// per-shot latency view.
    pub fn decode_shot_hist(&self) -> HistSnapshot {
        let parts: Vec<&HistSnapshot> = [
            Hist::DecodeShotRung0,
            Hist::DecodeShotRung1,
            Hist::DecodeShotRung2,
        ]
        .iter()
        .filter_map(|&h| self.hist(h))
        .collect();
        HistSnapshot::merged("decode_shot", &parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = ObsSink::disabled();
        assert!(!sink.is_enabled());
        assert_eq!(sink.begin_run(), 0);
        let mut w = sink.worker(0, 0);
        assert!(!w.enabled());
        assert!(w.clock().is_none());
        w.add(Counter::ShotsTier2, 5);
        w.record(Hist::DecodeShotRung0, 100);
        w.event(EventKind::ChunkStart { rung: 0 });
        w.flush();
        let snap = sink.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(snap.counter("shots_tier2"), 0);
    }

    #[test]
    fn enabled_sink_round_trips_events_and_metrics() {
        let sink = ObsSink::enabled();
        let run = sink.begin_run();
        assert_eq!(run, 0);
        assert_eq!(sink.begin_run(), 1);

        let mut w = sink.worker(run, 3);
        w.begin_chunk(7);
        w.event(EventKind::ChunkStart { rung: 0 });
        w.event(EventKind::Fault {
            kind: "panic",
            rung: 0,
        });
        w.add(Counter::FaultsPanic, 1);
        w.record(Hist::ChunkWall, 5_000);
        w.flush();

        let snap = sink.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].chunk, 7);
        assert_eq!(snap.events[0].seq, 0);
        assert_eq!(snap.events[1].seq, 1);
        assert_eq!(snap.events[0].worker, 3);
        assert_eq!(snap.counter("faults_panic"), 1);
        assert_eq!(snap.hist(Hist::ChunkWall).unwrap().count, 1);

        // Snapshots are cumulative, not destructive.
        let again = sink.snapshot();
        assert_eq!(again.events.len(), 2);
    }

    #[test]
    fn drop_flushes_buffered_events() {
        let sink = ObsSink::enabled();
        {
            let mut w = sink.worker(0, 0);
            w.event(EventKind::ChunkStart { rung: 1 });
            // no explicit flush
        }
        assert_eq!(sink.snapshot().events.len(), 1);
    }

    #[test]
    fn journal_order_is_worker_independent() {
        // Two interleavings of the same chunk schedule must merge to the
        // same journal order.
        let order_of = |assignment: [(u32, u32); 4]| {
            let sink = ObsSink::enabled();
            std::thread::scope(|scope| {
                for w in 0..2u32 {
                    let sink = sink.clone();
                    scope.spawn(move || {
                        let mut obs = sink.worker(0, w);
                        for &(chunk, worker) in &assignment {
                            if worker == w {
                                obs.begin_chunk(chunk);
                                obs.event(EventKind::ChunkStart { rung: 0 });
                                obs.event(EventKind::ChunkFinish {
                                    rung: 0,
                                    shots: 64,
                                    failures: 0,
                                    tier0: 0,
                                    tier1: 0,
                                    tier2: 64,
                                    sample_nanos: 0,
                                    extract_nanos: 0,
                                    predecode_nanos: 0,
                                    decode_nanos: 0,
                                });
                                obs.flush();
                            }
                        }
                    });
                }
            });
            sink.snapshot()
                .events
                .iter()
                .map(|e| (e.chunk, e.seq, e.kind.tag()))
                .collect::<Vec<_>>()
        };
        let a = order_of([(0, 0), (1, 1), (2, 0), (3, 1)]);
        let b = order_of([(0, 1), (1, 0), (2, 1), (3, 0)]);
        assert_eq!(a, b, "journal order leaked thread scheduling");
    }

    #[test]
    fn decode_shot_hist_merges_rungs() {
        let sink = ObsSink::enabled();
        let mut w = sink.worker(0, 0);
        w.record(Hist::DecodeShotRung0, 1_000);
        w.record(Hist::DecodeShotRung1, 2_000);
        let snap = sink.snapshot();
        let merged = snap.decode_shot_hist();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum_nanos, 3_000);
    }
}
