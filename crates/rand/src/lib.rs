//! Offline, in-tree stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access and no
//! vendored registry, so external crates cannot be downloaded. This crate
//! implements the (small) subset of the `rand` API the workspace uses —
//! `StdRng`, `SeedableRng`, `Rng::random`, and `RngExt::random_range` — on
//! top of a xoshiro256++ generator. It is *not* a cryptographic RNG and the
//! exact output streams differ from upstream `rand`; everything in this
//! workspace that depends on randomness is either statistical (tolerance
//! tests) or seeds its own deterministic streams, so only stream *stability
//! within this workspace* matters, which this crate guarantees.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG ("standard" distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution (uniform over
    /// the type's natural domain; `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection sampling from the top bits to stay unbiased.
                let zone = u128::from(u64::MAX) + 1;
                let cap = zone - zone % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < cap {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample from empty range");
                if high < <$t>::MAX {
                    <$t>::sample_range(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample_range(rng, low - 1, high) + 1
                } else {
                    // The full type domain: every word is a valid sample.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Range-sampling extension, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand seeds into full generator states.
#[inline]
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{split_mix_64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Fast, passes BigCrush, and (unlike upstream `rand`'s ChaCha-based
    /// `StdRng`) trivially auditable offline. Streams are stable across
    /// platforms and releases of this workspace.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = split_mix_64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u8..=255);
            let _ = w;
            let x = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 0.125).abs() < 0.01, "bucket freq {freq}");
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.random_range(0usize..=3) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(6);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues));
    }
}
