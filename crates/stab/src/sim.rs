//! Exact (tableau-backed) execution of noisy circuits.
//!
//! This is the slow-but-exact reference path: one tableau per shot, sampling
//! each noise channel explicitly. The fast batched sampler in [`crate::frame`]
//! is validated against it.

use crate::circuit::{Basis, Circuit, Gate1, Gate2, Noise1, Noise2, Op};
use crate::pauli::Pauli;
use crate::tableau::Tableau;
use rand::{Rng, RngExt};

/// Outcome of simulating one shot of a circuit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShotResult {
    /// Raw measurement record, in circuit order.
    pub measurements: Vec<bool>,
    /// Detector values (XOR of their measurement records).
    pub detectors: Vec<bool>,
    /// Logical observable values.
    pub observables: Vec<bool>,
}

/// The 15 non-identity two-qubit Pauli pairs, indexed `0..15`.
pub(crate) fn two_qubit_pauli(index: usize) -> (Pauli, Pauli) {
    debug_assert!(index < 15);
    let i = index + 1; // skip II
    let table = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];
    (table[i / 4], table[i % 4])
}

/// Simulates one shot of `circuit` with all noise channels active.
pub fn simulate_shot<R: Rng>(circuit: &Circuit, rng: &mut R) -> ShotResult {
    run_shot(circuit, rng, true)
}

/// Simulates one shot of `circuit` with noise disabled (random measurement
/// outcomes still use `rng`).
pub fn noiseless_shot<R: Rng>(circuit: &Circuit, rng: &mut R) -> ShotResult {
    run_shot(circuit, rng, false)
}

fn run_shot<R: Rng>(circuit: &Circuit, rng: &mut R, with_noise: bool) -> ShotResult {
    let mut t = Tableau::new(circuit.num_qubits());
    let mut result = ShotResult {
        measurements: Vec::with_capacity(circuit.num_measurements()),
        detectors: Vec::with_capacity(circuit.num_detectors()),
        observables: vec![false; circuit.num_observables()],
    };
    for op in circuit.ops() {
        match op {
            Op::G1(g, qs) => {
                for &q in qs {
                    match g {
                        Gate1::X => t.x(q),
                        Gate1::Y => t.y(q),
                        Gate1::Z => t.z(q),
                        Gate1::H => t.h(q),
                        Gate1::S => t.s(q),
                        Gate1::SDag => t.s_dag(q),
                    }
                }
            }
            Op::G2(g, pairs) => {
                for &(a, b) in pairs {
                    match g {
                        Gate2::Cx => t.cx(a, b),
                        Gate2::Cz => t.cz(a, b),
                        Gate2::Swap => t.swap(a, b),
                    }
                }
            }
            Op::Measure { basis, qubit, flip } => {
                let (mut outcome, _) = match basis {
                    Basis::Z => t.measure_z(*qubit, || rng.random()),
                    Basis::X => t.measure_x(*qubit, || rng.random()),
                };
                if with_noise && *flip > 0.0 && rng.random::<f64>() < *flip {
                    outcome = !outcome;
                }
                result.measurements.push(outcome);
            }
            Op::Reset(basis, qs) => {
                for &q in qs {
                    match basis {
                        Basis::Z => t.reset_z(q, || rng.random()),
                        Basis::X => t.reset_x(q, || rng.random()),
                    }
                }
            }
            Op::Noise1(kind, p, qs) => {
                if with_noise {
                    for &q in qs {
                        if rng.random::<f64>() < *p {
                            let pauli = match kind {
                                Noise1::XError => Pauli::X,
                                Noise1::YError => Pauli::Y,
                                Noise1::ZError => Pauli::Z,
                                Noise1::Depolarize1 => Pauli::NON_IDENTITY[rng.random_range(0..3)],
                            };
                            match pauli {
                                Pauli::I => {}
                                Pauli::X => t.x(q),
                                Pauli::Y => t.y(q),
                                Pauli::Z => t.z(q),
                            }
                        }
                    }
                }
            }
            Op::Noise2(kind, p, pairs) => {
                if with_noise {
                    for &(a, b) in pairs {
                        if rng.random::<f64>() < *p {
                            let (pa, pb) = match kind {
                                Noise2::Depolarize2 => two_qubit_pauli(rng.random_range(0..15)),
                            };
                            for (q, pq) in [(a, pa), (b, pb)] {
                                match pq {
                                    Pauli::I => {}
                                    Pauli::X => t.x(q),
                                    Pauli::Y => t.y(q),
                                    Pauli::Z => t.z(q),
                                }
                            }
                        }
                    }
                }
            }
            Op::Detector(meas) => {
                let v = meas
                    .iter()
                    .fold(false, |acc, m| acc ^ result.measurements[m.0 as usize]);
                result.detectors.push(v);
            }
            Op::Observable(i, meas) => {
                let v = meas
                    .iter()
                    .fold(false, |acc, m| acc ^ result.measurements[m.0 as usize]);
                result.observables[*i] ^= v;
            }
        }
    }
    result
}

/// Error returned when a circuit's detectors are not noiselessly deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NondeterministicDetector {
    /// Index of the offending detector.
    pub detector: usize,
}

impl std::fmt::Display for NondeterministicDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "detector {} is not deterministic in the noiseless circuit",
            self.detector
        )
    }
}

impl std::error::Error for NondeterministicDetector {}

/// Checks that every detector evaluates to 0 in the noiseless circuit,
/// regardless of random measurement outcomes.
///
/// This is the precondition for the Pauli-frame sampler and the detector
/// error model extraction: a detector must compare quantities whose noiseless
/// XOR is fixed (and, by convention, zero).
///
/// The check runs `trials` noiseless shots with independent random coins; a
/// detector that is genuinely nondeterministic fails each trial with
/// probability 1/2.
///
/// # Errors
///
/// Returns the index of the first detector observed to evaluate to 1.
pub fn check_deterministic_detectors<R: Rng>(
    circuit: &Circuit,
    trials: usize,
    rng: &mut R,
) -> Result<(), NondeterministicDetector> {
    for _ in 0..trials {
        let shot = noiseless_shot(circuit, rng);
        if let Some(d) = shot.detectors.iter().position(|&v| v) {
            return Err(NondeterministicDetector { detector: d });
        }
        if let Some(_o) = shot.observables.iter().position(|&v| v) {
            // Observables may legitimately be random for some circuits, but
            // for memory experiments they are deterministic too. We do not
            // fail on them here; the frame sampler only needs detectors.
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Basis, Circuit, Noise1};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn repetition_code_circuit(flip_data: bool) -> Circuit {
        // 3-qubit repetition code, one round of ZZ checks via 2 ancillas.
        let mut c = Circuit::new(5);
        let (d0, d1, d2, a0, a1) = (0, 1, 2, 3, 4);
        c.reset(Basis::Z, &[d0, d1, d2, a0, a1]);
        if flip_data {
            c.g1(crate::circuit::Gate1::X, d1);
        }
        c.cx(d0, a0);
        c.cx(d1, a0);
        c.cx(d1, a1);
        c.cx(d2, a1);
        let m0 = c.measure(a0, Basis::Z, 0.0);
        let m1 = c.measure(a1, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let md = c.measure(d0, Basis::Z, 0.0);
        c.observable(0, &[md]);
        c
    }

    #[test]
    fn clean_repetition_code_has_quiet_detectors() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = repetition_code_circuit(false);
        let shot = simulate_shot(&c, &mut rng);
        assert_eq!(shot.detectors, vec![false, false]);
        assert_eq!(shot.observables, vec![false]);
    }

    #[test]
    fn data_flip_fires_both_checks() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = repetition_code_circuit(true);
        let shot = simulate_shot(&c, &mut rng);
        assert_eq!(shot.detectors, vec![true, true]);
    }

    #[test]
    fn determinism_check_accepts_good_circuit() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = repetition_code_circuit(false);
        assert!(check_deterministic_detectors(&c, 8, &mut rng).is_ok());
    }

    #[test]
    fn determinism_check_rejects_random_detector() {
        let mut c = Circuit::new(1);
        c.h(0);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        let mut rng = StdRng::seed_from_u64(1);
        let err = check_deterministic_detectors(&c, 32, &mut rng).unwrap_err();
        assert_eq!(err.detector, 0);
    }

    #[test]
    fn noise_changes_statistics() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::XError, 1.0, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        let mut rng = StdRng::seed_from_u64(2);
        let shot = simulate_shot(&c, &mut rng);
        assert_eq!(shot.detectors, vec![true]);
        let clean = noiseless_shot(&c, &mut rng);
        assert_eq!(clean.detectors, vec![false]);
    }

    #[test]
    fn measurement_flip_noise() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        let m = c.measure(0, Basis::Z, 1.0);
        c.detector(&[m]);
        let mut rng = StdRng::seed_from_u64(3);
        let shot = simulate_shot(&c, &mut rng);
        assert_eq!(shot.detectors, vec![true]);
    }

    #[test]
    fn two_qubit_pauli_covers_all_15() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..15 {
            let pair = two_qubit_pauli(i);
            assert_ne!(pair, (Pauli::I, Pauli::I));
            seen.insert(pair);
        }
        assert_eq!(seen.len(), 15);
    }
}
