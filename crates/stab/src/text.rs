//! Stim-compatible text serialization of circuits.
//!
//! Circuits export to (a subset of) Stim's circuit language and parse back,
//! so experiments built here can be cross-checked against Stim itself, and
//! circuits generated elsewhere can be imported. Supported instructions:
//! `R`, `RX`, `M(p)`, `MX(p)`, the Clifford gates `X Y Z H S S_DAG CX CZ
//! SWAP`, the noise channels `X_ERROR Y_ERROR Z_ERROR DEPOLARIZE1
//! DEPOLARIZE2`, and the annotations `DETECTOR` / `OBSERVABLE_INCLUDE(k)`
//! with `rec[-n]` lookback targets.

use crate::circuit::{Basis, Circuit, Gate1, Gate2, MeasIdx, Noise1, Noise2, Op};
use std::fmt::Write as _;

/// Error produced when parsing circuit text.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseCircuitError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCircuitError {}

/// Serializes a circuit to Stim-compatible text.
///
/// # Examples
///
/// ```
/// use caliqec_stab::{Basis, Circuit, to_stim_text};
///
/// let mut c = Circuit::new(2);
/// c.reset(Basis::Z, &[0, 1]);
/// c.cx(0, 1);
/// let m = c.measure(1, Basis::Z, 0.0);
/// c.detector(&[m]);
/// let text = to_stim_text(&c);
/// assert!(text.contains("CX 0 1"));
/// assert!(text.contains("DETECTOR rec[-1]"));
/// ```
pub fn to_stim_text(circuit: &Circuit) -> String {
    let mut out = String::new();
    let mut meas_count: i64 = 0;
    for op in circuit.ops() {
        match op {
            Op::G1(g, qs) => {
                let name = match g {
                    Gate1::X => "X",
                    Gate1::Y => "Y",
                    Gate1::Z => "Z",
                    Gate1::H => "H",
                    Gate1::S => "S",
                    Gate1::SDag => "S_DAG",
                };
                let _ = write!(out, "{name}");
                for q in qs {
                    let _ = write!(out, " {q}");
                }
                out.push('\n');
            }
            Op::G2(g, pairs) => {
                let name = match g {
                    Gate2::Cx => "CX",
                    Gate2::Cz => "CZ",
                    Gate2::Swap => "SWAP",
                };
                let _ = write!(out, "{name}");
                for (a, b) in pairs {
                    let _ = write!(out, " {a} {b}");
                }
                out.push('\n');
            }
            Op::Measure { basis, qubit, flip } => {
                let name = match basis {
                    Basis::Z => "M",
                    Basis::X => "MX",
                };
                if *flip > 0.0 {
                    let _ = writeln!(out, "{name}({flip}) {qubit}");
                } else {
                    let _ = writeln!(out, "{name} {qubit}");
                }
                meas_count += 1;
            }
            Op::Reset(basis, qs) => {
                let name = match basis {
                    Basis::Z => "R",
                    Basis::X => "RX",
                };
                let _ = write!(out, "{name}");
                for q in qs {
                    let _ = write!(out, " {q}");
                }
                out.push('\n');
            }
            Op::Noise1(kind, p, qs) => {
                let name = match kind {
                    Noise1::Depolarize1 => "DEPOLARIZE1",
                    Noise1::XError => "X_ERROR",
                    Noise1::YError => "Y_ERROR",
                    Noise1::ZError => "Z_ERROR",
                };
                let _ = write!(out, "{name}({p})");
                for q in qs {
                    let _ = write!(out, " {q}");
                }
                out.push('\n');
            }
            Op::Noise2(kind, p, pairs) => {
                let name = match kind {
                    Noise2::Depolarize2 => "DEPOLARIZE2",
                };
                let _ = write!(out, "{name}({p})");
                for (a, b) in pairs {
                    let _ = write!(out, " {a} {b}");
                }
                out.push('\n');
            }
            Op::Detector(meas) => {
                let _ = write!(out, "DETECTOR");
                for m in meas {
                    let _ = write!(out, " rec[{}]", m.0 as i64 - meas_count);
                }
                out.push('\n');
            }
            Op::Observable(i, meas) => {
                let _ = write!(out, "OBSERVABLE_INCLUDE({i})");
                for m in meas {
                    let _ = write!(out, " rec[{}]", m.0 as i64 - meas_count);
                }
                out.push('\n');
            }
        }
    }
    out
}

/// Parses Stim-compatible circuit text.
///
/// The number of qubits is inferred from the largest target index.
///
/// # Errors
///
/// Returns a [`ParseCircuitError`] with the offending line for unsupported
/// instructions, malformed arguments, or out-of-range `rec[...]` lookbacks.
pub fn from_stim_text(text: &str) -> Result<Circuit, ParseCircuitError> {
    // First pass: find the qubit count.
    let mut max_qubit: u32 = 0;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        for token in line.split_whitespace().skip(1) {
            if let Ok(q) = token.parse::<u32>() {
                max_qubit = max_qubit.max(q);
            }
        }
    }
    let mut circuit = Circuit::new(max_qubit as usize + 1);
    let mut meas: Vec<MeasIdx> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("nonempty line");
        let (name, arg) = match head.split_once('(') {
            Some((n, rest)) => {
                let arg =
                    rest.trim_end_matches(')')
                        .parse::<f64>()
                        .map_err(|_| ParseCircuitError {
                            line: lineno,
                            message: format!("bad argument in {head:?}"),
                        })?;
                (n, Some(arg))
            }
            None => (head, None),
        };
        let qubits: Result<Vec<u32>, _> = tokens
            .clone()
            .filter(|t| !t.starts_with("rec["))
            .map(|t| {
                t.parse::<u32>().map_err(|_| ParseCircuitError {
                    line: lineno,
                    message: format!("bad qubit target {t:?}"),
                })
            })
            .collect();
        let recs: Result<Vec<MeasIdx>, _> = tokens
            .filter(|t| t.starts_with("rec["))
            .map(|t| {
                let inner = t
                    .trim_start_matches("rec[")
                    .trim_end_matches(']')
                    .parse::<i64>()
                    .map_err(|_| ParseCircuitError {
                        line: lineno,
                        message: format!("bad record target {t:?}"),
                    })?;
                let idx = meas.len() as i64 + inner;
                if inner >= 0 || idx < 0 {
                    return Err(ParseCircuitError {
                        line: lineno,
                        message: format!("record lookback {inner} out of range"),
                    });
                }
                Ok(MeasIdx(idx as u32))
            })
            .collect();
        let qubits = qubits?;
        let recs = recs?;

        let g1 = |g: Gate1, c: &mut Circuit| {
            c.g1_all(g, &qubits);
        };
        match name {
            "X" => g1(Gate1::X, &mut circuit),
            "Y" => g1(Gate1::Y, &mut circuit),
            "Z" => g1(Gate1::Z, &mut circuit),
            "H" => g1(Gate1::H, &mut circuit),
            "S" => g1(Gate1::S, &mut circuit),
            "S_DAG" => g1(Gate1::SDag, &mut circuit),
            "CX" | "CNOT" | "CZ" | "SWAP" => {
                if qubits.len() % 2 != 0 {
                    return Err(ParseCircuitError {
                        line: lineno,
                        message: format!("{name} needs an even number of targets"),
                    });
                }
                let gate = match name {
                    "CX" | "CNOT" => Gate2::Cx,
                    "CZ" => Gate2::Cz,
                    _ => Gate2::Swap,
                };
                for pair in qubits.chunks(2) {
                    circuit.g2(gate, pair[0], pair[1]);
                }
            }
            "R" => {
                circuit.reset(Basis::Z, &qubits);
            }
            "RX" => {
                circuit.reset(Basis::X, &qubits);
            }
            "M" | "MX" => {
                let basis = if name == "M" { Basis::Z } else { Basis::X };
                for &q in &qubits {
                    meas.push(circuit.measure(q, basis, arg.unwrap_or(0.0)));
                }
            }
            "X_ERROR" | "Y_ERROR" | "Z_ERROR" | "DEPOLARIZE1" => {
                let kind = match name {
                    "X_ERROR" => Noise1::XError,
                    "Y_ERROR" => Noise1::YError,
                    "Z_ERROR" => Noise1::ZError,
                    _ => Noise1::Depolarize1,
                };
                circuit.noise1(kind, arg.unwrap_or(0.0), &qubits);
            }
            "DEPOLARIZE2" => {
                if qubits.len() % 2 != 0 {
                    return Err(ParseCircuitError {
                        line: lineno,
                        message: "DEPOLARIZE2 needs an even number of targets".to_string(),
                    });
                }
                let pairs: Vec<(u32, u32)> = qubits.chunks(2).map(|p| (p[0], p[1])).collect();
                circuit.noise2(Noise2::Depolarize2, arg.unwrap_or(0.0), &pairs);
            }
            "DETECTOR" => {
                circuit.detector(&recs);
            }
            "OBSERVABLE_INCLUDE" => {
                let index = arg.ok_or_else(|| ParseCircuitError {
                    line: lineno,
                    message: "OBSERVABLE_INCLUDE needs an index".to_string(),
                })? as usize;
                circuit.observable(index, &recs);
            }
            other => {
                return Err(ParseCircuitError {
                    line: lineno,
                    message: format!("unsupported instruction {other:?}"),
                })
            }
        }
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Basis, Circuit, Noise1, Noise2};

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.reset(Basis::Z, &[0, 1, 2, 3]);
        c.noise1(Noise1::Depolarize1, 0.001, &[0, 1]);
        c.h(0);
        c.cx(0, 2);
        c.cz(1, 3);
        c.noise2(Noise2::Depolarize2, 0.002, &[(0, 2)]);
        let m0 = c.measure(2, Basis::Z, 0.01);
        let m1 = c.measure(3, Basis::X, 0.0);
        c.detector(&[m0]);
        c.detector(&[m0, m1]);
        c.observable(0, &[m1]);
        c
    }

    #[test]
    fn roundtrip_preserves_ops() {
        let c = sample_circuit();
        let text = to_stim_text(&c);
        let parsed = from_stim_text(&text).expect("parses");
        assert_eq!(parsed.ops(), c.ops());
        assert_eq!(parsed.num_measurements(), c.num_measurements());
        assert_eq!(parsed.num_detectors(), c.num_detectors());
        assert_eq!(parsed.num_observables(), c.num_observables());
    }

    #[test]
    fn exports_stim_syntax() {
        let text = to_stim_text(&sample_circuit());
        assert!(text.contains("R 0 1 2 3"));
        assert!(text.contains("DEPOLARIZE1(0.001) 0 1"));
        assert!(text.contains("M(0.01) 2"));
        assert!(text.contains("MX 3"));
        assert!(text.contains("DETECTOR rec[-2] rec[-1]"));
        assert!(text.contains("OBSERVABLE_INCLUDE(0) rec[-1]"));
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let c = from_stim_text("# header\n\nR 0\nM 0  # readout\nDETECTOR rec[-1]\n").unwrap();
        assert_eq!(c.num_detectors(), 1);
    }

    #[test]
    fn rejects_unknown_instruction() {
        let err = from_stim_text("FROB 1 2").unwrap_err();
        assert!(err.message.contains("unsupported"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_future_lookback() {
        let err = from_stim_text("R 0\nDETECTOR rec[0]").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn cnot_alias_accepted() {
        let c = from_stim_text("R 0 1\nCNOT 0 1\nM 1").unwrap();
        assert_eq!(c.num_measurements(), 1);
    }

    #[test]
    fn multi_target_two_qubit_lines() {
        let c = from_stim_text("R 0 1 2 3\nCX 0 1 2 3\n").unwrap();
        let cx_ops = c
            .ops()
            .iter()
            .filter(|op| matches!(op, crate::circuit::Op::G2(..)))
            .count();
        assert_eq!(cx_ops, 2);
    }
}
