//! Typed validation errors for circuits and compiled sampling programs.
//!
//! The fluent [`Circuit`](crate::Circuit) builder asserts its invariants at
//! construction time, but circuits also arrive from the text parser, from
//! [`Circuit::from_ops`](crate::Circuit::from_ops), and (in principle) from
//! future deserialization paths. [`Circuit::validate`](crate::Circuit::validate)
//! and [`CompiledCircuit::validate`](crate::CompiledCircuit::validate)
//! re-check every invariant the samplers rely on and return a
//! [`CircuitError`] instead of letting a malformed program panic deep in
//! the sampling hot path.

use crate::pauli::Qubit;
use std::fmt;

/// A structural defect found while validating a [`Circuit`](crate::Circuit)
/// or [`CompiledCircuit`](crate::CompiledCircuit).
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitError {
    /// An operation targets a qubit index at or past `num_qubits`.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: Qubit,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A two-qubit gate or noise channel targets the same qubit twice.
    DuplicatePairTarget {
        /// The repeated qubit index.
        qubit: Qubit,
    },
    /// A noise or measurement-flip probability is not a finite number in
    /// `[0, 1]`.
    BadProbability {
        /// The offending probability.
        probability: f64,
    },
    /// A detector or observable references a measurement record at or past
    /// `num_measurements`.
    RecordOutOfRange {
        /// The offending record index.
        record: u32,
        /// The circuit's measurement count.
        num_measurements: usize,
    },
    /// More logical observables than the 64-bit observable masks can hold.
    TooManyObservables {
        /// The circuit's observable count.
        num_observables: usize,
    },
    /// An internal table of a compiled circuit is inconsistent (offsets
    /// non-monotone, counter mismatch, ...). Indicates corruption rather
    /// than a buildable-but-wrong circuit.
    TableInconsistent {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range (circuit has {num_qubits} qubits)")
            }
            CircuitError::DuplicatePairTarget { qubit } => {
                write!(f, "two-qubit operation targets qubit {qubit} twice")
            }
            CircuitError::BadProbability { probability } => {
                write!(f, "probability {probability} is not a finite number in [0, 1]")
            }
            CircuitError::RecordOutOfRange {
                record,
                num_measurements,
            } => write!(
                f,
                "measurement record {record} out of range (circuit has {num_measurements} measurements)"
            ),
            CircuitError::TooManyObservables { num_observables } => write!(
                f,
                "{num_observables} observables exceed the 64-bit observable mask"
            ),
            CircuitError::TableInconsistent { detail } => {
                write!(f, "compiled circuit table inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Checks that `p` is a finite probability in `[0, 1]`.
pub(crate) fn check_probability(p: f64) -> Result<(), CircuitError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(CircuitError::BadProbability { probability: p })
    }
}

/// Checks that `q` indexes one of `num_qubits` qubits.
pub(crate) fn check_qubit_index(q: Qubit, num_qubits: usize) -> Result<(), CircuitError> {
    if (q as usize) < num_qubits {
        Ok(())
    } else {
        Err(CircuitError::QubitOutOfRange {
            qubit: q,
            num_qubits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_bounds() {
        assert!(check_probability(0.0).is_ok());
        assert!(check_probability(1.0).is_ok());
        assert!(check_probability(-0.1).is_err());
        assert!(check_probability(1.5).is_err());
        assert!(check_probability(f64::NAN).is_err());
        assert!(check_probability(f64::INFINITY).is_err());
    }

    #[test]
    fn errors_render() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 7,
            num_qubits: 4,
        };
        assert!(e.to_string().contains("qubit 7"));
        let e = CircuitError::RecordOutOfRange {
            record: 9,
            num_measurements: 3,
        };
        assert!(e.to_string().contains("record 9"));
    }
}
