//! Clifford circuit intermediate representation with noise annotations,
//! detectors, and logical observables.
//!
//! The IR mirrors the subset of Stim's language that surface-code memory
//! experiments need: Clifford gates, basis measurements/resets, Pauli noise
//! channels, and `DETECTOR` / `OBSERVABLE` annotations defined over absolute
//! measurement-record indices.

use crate::error::{check_probability, check_qubit_index, CircuitError};
use crate::pauli::Qubit;
use std::fmt;

/// A single-qubit Clifford gate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Gate1 {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate.
    S,
    /// Inverse phase gate.
    SDag,
}

/// A two-qubit Clifford gate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Gate2 {
    /// Controlled-X (first qubit is the control).
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// Qubit exchange.
    Swap,
}

/// A measurement / reset basis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Basis {
    /// Computational basis.
    Z,
    /// Hadamard basis.
    X,
}

/// A single-qubit Pauli noise channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Noise1 {
    /// Uniform over {X, Y, Z}, total probability `p`.
    Depolarize1,
    /// X with probability `p`.
    XError,
    /// Y with probability `p`.
    YError,
    /// Z with probability `p`.
    ZError,
}

/// A two-qubit Pauli noise channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Noise2 {
    /// Uniform over the 15 non-identity two-qubit Paulis, total probability `p`.
    Depolarize2,
}

/// Absolute index of a measurement record within a circuit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MeasIdx(pub u32);

/// Absolute index of a detector within a circuit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DetIdx(pub u32);

/// One instruction of the circuit IR.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// A single-qubit gate applied to each listed qubit.
    G1(Gate1, Vec<Qubit>),
    /// A two-qubit gate applied to each listed pair.
    G2(Gate2, Vec<(Qubit, Qubit)>),
    /// A basis measurement of one qubit; the classical outcome is flipped
    /// with probability `flip`.
    Measure {
        /// Measurement basis.
        basis: Basis,
        /// Measured qubit.
        qubit: Qubit,
        /// Classical readout flip probability.
        flip: f64,
    },
    /// A basis reset of the listed qubits.
    Reset(Basis, Vec<Qubit>),
    /// A single-qubit noise channel applied independently to each qubit.
    Noise1(Noise1, f64, Vec<Qubit>),
    /// A two-qubit noise channel applied independently to each pair.
    Noise2(Noise2, f64, Vec<(Qubit, Qubit)>),
    /// A detector: the XOR of the listed measurement records, which must be
    /// deterministic (0) in the noiseless circuit.
    Detector(Vec<MeasIdx>),
    /// Accumulates the XOR of the listed measurement records into a logical
    /// observable.
    Observable(usize, Vec<MeasIdx>),
}

/// A Clifford circuit with noise, detectors, and observables.
///
/// Build circuits through the fluent methods; measurement indices are handed
/// back so detectors/observables can reference them.
///
/// # Examples
///
/// ```
/// use caliqec_stab::{Basis, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// let m0 = c.measure(0, Basis::Z, 0.0);
/// let m1 = c.measure(1, Basis::Z, 0.0);
/// c.detector(&[m0, m1]); // Bell-pair parity is deterministic
/// assert_eq!(c.num_measurements(), 2);
/// assert_eq!(c.num_detectors(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Op>,
    num_measurements: u32,
    num_detectors: u32,
    num_observables: usize,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Circuit {
        Circuit {
            num_qubits,
            ..Circuit::default()
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of measurement records produced by one execution.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements as usize
    }

    /// Number of detectors.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors as usize
    }

    /// Number of logical observables.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// The instruction sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    fn check_qubit(&self, q: Qubit) {
        assert!(
            (q as usize) < self.num_qubits,
            "qubit {q} out of range (circuit has {} qubits)",
            self.num_qubits
        );
    }

    /// Appends a single-qubit gate on `q`.
    pub fn g1(&mut self, gate: Gate1, q: Qubit) -> &mut Self {
        self.check_qubit(q);
        self.ops.push(Op::G1(gate, vec![q]));
        self
    }

    /// Appends a single-qubit gate on every listed qubit.
    pub fn g1_all(&mut self, gate: Gate1, qs: &[Qubit]) -> &mut Self {
        for &q in qs {
            self.check_qubit(q);
        }
        if !qs.is_empty() {
            self.ops.push(Op::G1(gate, qs.to_vec()));
        }
        self
    }

    /// Appends a Hadamard on `q`.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.g1(Gate1::H, q)
    }

    /// Appends a two-qubit gate on the pair `(a, b)`.
    pub fn g2(&mut self, gate: Gate2, a: Qubit, b: Qubit) -> &mut Self {
        self.check_qubit(a);
        self.check_qubit(b);
        assert_ne!(a, b, "two-qubit gate targets must differ");
        self.ops.push(Op::G2(gate, vec![(a, b)]));
        self
    }

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: Qubit, t: Qubit) -> &mut Self {
        self.g2(Gate2::Cx, c, t)
    }

    /// Appends a CZ between `a` and `b`.
    pub fn cz(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.g2(Gate2::Cz, a, b)
    }

    /// Appends a measurement, returning its record index.
    pub fn measure(&mut self, qubit: Qubit, basis: Basis, flip: f64) -> MeasIdx {
        self.check_qubit(qubit);
        assert!((0.0..=1.0).contains(&flip), "flip probability out of range");
        let idx = MeasIdx(self.num_measurements);
        self.num_measurements += 1;
        self.ops.push(Op::Measure { basis, qubit, flip });
        idx
    }

    /// Appends a basis reset of the listed qubits.
    pub fn reset(&mut self, basis: Basis, qs: &[Qubit]) -> &mut Self {
        for &q in qs {
            self.check_qubit(q);
        }
        if !qs.is_empty() {
            self.ops.push(Op::Reset(basis, qs.to_vec()));
        }
        self
    }

    /// Appends a single-qubit noise channel on the listed qubits.
    pub fn noise1(&mut self, kind: Noise1, p: f64, qs: &[Qubit]) -> &mut Self {
        for &q in qs {
            self.check_qubit(q);
        }
        assert!((0.0..=1.0).contains(&p), "noise probability out of range");
        if p > 0.0 && !qs.is_empty() {
            self.ops.push(Op::Noise1(kind, p, qs.to_vec()));
        }
        self
    }

    /// Appends a two-qubit noise channel on the listed pairs.
    pub fn noise2(&mut self, kind: Noise2, p: f64, pairs: &[(Qubit, Qubit)]) -> &mut Self {
        for &(a, b) in pairs {
            self.check_qubit(a);
            self.check_qubit(b);
            assert_ne!(a, b, "two-qubit noise targets must differ");
        }
        assert!((0.0..=1.0).contains(&p), "noise probability out of range");
        if p > 0.0 && !pairs.is_empty() {
            self.ops.push(Op::Noise2(kind, p, pairs.to_vec()));
        }
        self
    }

    /// Appends a detector over the listed measurement records.
    ///
    /// Returns the detector index.
    ///
    /// # Panics
    ///
    /// Panics if any record index refers to a measurement that has not yet
    /// been appended.
    pub fn detector(&mut self, meas: &[MeasIdx]) -> DetIdx {
        for m in meas {
            assert!(
                m.0 < self.num_measurements,
                "detector references future measurement {m:?}"
            );
        }
        let idx = DetIdx(self.num_detectors);
        self.num_detectors += 1;
        self.ops.push(Op::Detector(meas.to_vec()));
        idx
    }

    /// Accumulates the listed measurement records into logical observable
    /// `index`.
    pub fn observable(&mut self, index: usize, meas: &[MeasIdx]) -> &mut Self {
        for m in meas {
            assert!(
                m.0 < self.num_measurements,
                "observable references future measurement {m:?}"
            );
        }
        self.num_observables = self.num_observables.max(index + 1);
        self.ops.push(Op::Observable(index, meas.to_vec()));
        self
    }

    /// Returns, for every detector in order, the measurement records it XORs.
    pub fn detector_definitions(&self) -> Vec<Vec<MeasIdx>> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Detector(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    /// Returns, for every observable index, the measurement records it XORs.
    pub fn observable_definitions(&self) -> Vec<Vec<MeasIdx>> {
        let mut defs = vec![Vec::new(); self.num_observables];
        for op in &self.ops {
            if let Op::Observable(i, m) = op {
                defs[*i].extend(m.iter().copied());
            }
        }
        defs
    }

    /// Builds a circuit directly from an instruction list without invariant
    /// checks, recomputing the measurement/detector/observable counters by
    /// scanning `ops`.
    ///
    /// Unlike the fluent builder methods this performs **no** validation, so
    /// it can represent malformed programs — the intended pairing is
    /// [`Circuit::validate`], which reports every defect as a typed
    /// [`CircuitError`] instead of panicking. Fault-injection tests and
    /// deserialization paths construct circuits this way.
    pub fn from_ops(num_qubits: usize, ops: Vec<Op>) -> Circuit {
        let mut num_measurements = 0u32;
        let mut num_detectors = 0u32;
        let mut num_observables = 0usize;
        for op in &ops {
            match op {
                Op::Measure { .. } => num_measurements += 1,
                Op::Detector(_) => num_detectors += 1,
                Op::Observable(i, _) => num_observables = num_observables.max(i + 1),
                _ => {}
            }
        }
        Circuit {
            num_qubits,
            ops,
            num_measurements,
            num_detectors,
            num_observables,
        }
    }

    /// Re-checks every invariant the samplers rely on, returning the first
    /// defect as a typed [`CircuitError`].
    ///
    /// The fluent builder enforces these invariants with asserts at
    /// construction time, but circuits from [`Circuit::from_ops`] or external
    /// text may violate them; validating up front keeps malformed programs
    /// from panicking deep inside the sampling hot path.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.num_observables > 64 {
            return Err(CircuitError::TooManyObservables {
                num_observables: self.num_observables,
            });
        }
        let mut seen_meas = 0u32;
        for op in &self.ops {
            match op {
                Op::G1(_, qs) => {
                    for &q in qs {
                        check_qubit_index(q, self.num_qubits)?;
                    }
                }
                Op::G2(_, pairs) => {
                    for &(a, b) in pairs {
                        check_qubit_index(a, self.num_qubits)?;
                        check_qubit_index(b, self.num_qubits)?;
                        if a == b {
                            return Err(CircuitError::DuplicatePairTarget { qubit: a });
                        }
                    }
                }
                Op::Measure { qubit, flip, .. } => {
                    check_qubit_index(*qubit, self.num_qubits)?;
                    check_probability(*flip)?;
                    seen_meas += 1;
                }
                Op::Reset(_, qs) => {
                    for &q in qs {
                        check_qubit_index(q, self.num_qubits)?;
                    }
                }
                Op::Noise1(_, p, qs) => {
                    check_probability(*p)?;
                    for &q in qs {
                        check_qubit_index(q, self.num_qubits)?;
                    }
                }
                Op::Noise2(_, p, pairs) => {
                    check_probability(*p)?;
                    for &(a, b) in pairs {
                        check_qubit_index(a, self.num_qubits)?;
                        check_qubit_index(b, self.num_qubits)?;
                        if a == b {
                            return Err(CircuitError::DuplicatePairTarget { qubit: a });
                        }
                    }
                }
                Op::Detector(meas) | Op::Observable(_, meas) => {
                    for m in meas {
                        if m.0 >= seen_meas {
                            return Err(CircuitError::RecordOutOfRange {
                                record: m.0,
                                num_measurements: seen_meas as usize,
                            });
                        }
                    }
                }
            }
        }
        if seen_meas != self.num_measurements {
            return Err(CircuitError::TableInconsistent {
                detail: format!(
                    "circuit records {} measurements but ops contain {}",
                    self.num_measurements, seen_meas
                ),
            });
        }
        Ok(())
    }

    /// Total count of elementary noise-channel applications (an upper bound on
    /// distinct error mechanisms before signature merging).
    pub fn num_noise_sites(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Noise1(_, _, qs) => qs.len(),
                Op::Noise2(_, _, pairs) => pairs.len(),
                Op::Measure { flip, .. } if *flip > 0.0 => 1,
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# circuit: {} qubits, {} measurements, {} detectors, {} observables",
            self.num_qubits, self.num_measurements, self.num_detectors, self.num_observables
        )?;
        let mut next_meas = 0u32;
        for op in &self.ops {
            match op {
                Op::G1(g, qs) => {
                    write!(f, "{g:?}")?;
                    for q in qs {
                        write!(f, " {q}")?;
                    }
                    writeln!(f)?;
                }
                Op::G2(g, pairs) => {
                    write!(f, "{g:?}")?;
                    for (a, b) in pairs {
                        write!(f, " {a} {b}")?;
                    }
                    writeln!(f)?;
                }
                Op::Measure { basis, qubit, flip } => {
                    writeln!(f, "M{basis:?}({flip}) {qubit}  # rec {next_meas}")?;
                    next_meas += 1;
                }
                Op::Reset(basis, qs) => {
                    write!(f, "R{basis:?}")?;
                    for q in qs {
                        write!(f, " {q}")?;
                    }
                    writeln!(f)?;
                }
                Op::Noise1(kind, p, qs) => {
                    write!(f, "{kind:?}({p})")?;
                    for q in qs {
                        write!(f, " {q}")?;
                    }
                    writeln!(f)?;
                }
                Op::Noise2(kind, p, pairs) => {
                    write!(f, "{kind:?}({p})")?;
                    for (a, b) in pairs {
                        write!(f, " {a} {b}")?;
                    }
                    writeln!(f)?;
                }
                Op::Detector(meas) => {
                    write!(f, "DETECTOR")?;
                    for m in meas {
                        write!(f, " rec{}", m.0)?;
                    }
                    writeln!(f)?;
                }
                Op::Observable(i, meas) => {
                    write!(f, "OBSERVABLE({i})")?;
                    for m in meas {
                        write!(f, " rec{}", m.0)?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_indices_are_sequential() {
        let mut c = Circuit::new(2);
        let a = c.measure(0, Basis::Z, 0.0);
        let b = c.measure(1, Basis::Z, 0.0);
        assert_eq!(a, MeasIdx(0));
        assert_eq!(b, MeasIdx(1));
        assert_eq!(c.num_measurements(), 2);
    }

    #[test]
    #[should_panic(expected = "future measurement")]
    fn detector_cannot_reference_future() {
        let mut c = Circuit::new(1);
        c.detector(&[MeasIdx(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qubit_bounds_checked() {
        let mut c = Circuit::new(1);
        c.h(1);
    }

    #[test]
    fn zero_probability_noise_is_elided() {
        let mut c = Circuit::new(1);
        c.noise1(Noise1::XError, 0.0, &[0]);
        assert!(c.ops().is_empty());
    }

    #[test]
    fn observable_definitions_accumulate() {
        let mut c = Circuit::new(2);
        let a = c.measure(0, Basis::Z, 0.0);
        c.observable(0, &[a]);
        let b = c.measure(1, Basis::Z, 0.0);
        c.observable(0, &[b]);
        assert_eq!(c.observable_definitions(), vec![vec![a, b]]);
    }

    #[test]
    fn noise_site_count() {
        let mut c = Circuit::new(3);
        c.noise1(Noise1::Depolarize1, 0.01, &[0, 1, 2]);
        c.noise2(Noise2::Depolarize2, 0.01, &[(0, 1)]);
        c.measure(0, Basis::Z, 0.01);
        assert_eq!(c.num_noise_sites(), 5);
    }

    #[test]
    fn from_ops_recomputes_counters() {
        let ops = vec![
            Op::Measure {
                basis: Basis::Z,
                qubit: 0,
                flip: 0.0,
            },
            Op::Detector(vec![MeasIdx(0)]),
            Op::Observable(2, vec![MeasIdx(0)]),
        ];
        let c = Circuit::from_ops(1, ops);
        assert_eq!(c.num_measurements(), 1);
        assert_eq!(c.num_detectors(), 1);
        assert_eq!(c.num_observables(), 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_catches_malformed_ops() {
        let c = Circuit::from_ops(1, vec![Op::G1(Gate1::H, vec![5])]);
        assert!(matches!(
            c.validate(),
            Err(crate::CircuitError::QubitOutOfRange { qubit: 5, .. })
        ));

        let c = Circuit::from_ops(2, vec![Op::Noise1(Noise1::XError, 1.5, vec![0])]);
        assert!(matches!(
            c.validate(),
            Err(crate::CircuitError::BadProbability { .. })
        ));

        let c = Circuit::from_ops(2, vec![Op::Noise1(Noise1::XError, f64::NAN, vec![0])]);
        assert!(c.validate().is_err());

        let c = Circuit::from_ops(2, vec![Op::G2(Gate2::Cx, vec![(1, 1)])]);
        assert!(matches!(
            c.validate(),
            Err(crate::CircuitError::DuplicatePairTarget { qubit: 1 })
        ));

        let c = Circuit::from_ops(1, vec![Op::Detector(vec![MeasIdx(3)])]);
        assert!(matches!(
            c.validate(),
            Err(crate::CircuitError::RecordOutOfRange { record: 3, .. })
        ));
    }

    #[test]
    fn validate_accepts_builder_output() {
        let mut c = Circuit::new(3);
        c.reset(Basis::Z, &[0, 1, 2]);
        c.noise1(Noise1::XError, 0.01, &[0, 1]);
        c.cx(0, 2);
        let m = c.measure(2, Basis::Z, 0.0);
        c.detector(&[m]);
        c.observable(0, &[m]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn display_contains_ops() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let m = c.measure(1, Basis::Z, 0.0);
        c.detector(&[m]);
        let s = c.to_string();
        assert!(s.contains("H 0"));
        assert!(s.contains("Cx 0 1"));
        assert!(s.contains("DETECTOR rec0"));
    }
}
