//! CHP-style stabilizer tableau simulator (Aaronson–Gottesman).
//!
//! Tracks `n` stabilizer and `n` destabilizer generators of an `n`-qubit
//! stabilizer state as rows of symplectic bits, supporting Clifford gates and
//! Z-/X-basis measurement and reset. This simulator is exact and is used as
//! the ground truth the fast Pauli-frame sampler ([`crate::frame`]) is
//! validated against, and to establish reference measurement outcomes.

use crate::pauli::{Pauli, Qubit, SparsePauli};

/// A single row of the tableau: a Pauli product with a sign.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Row {
    x: Vec<bool>,
    z: Vec<bool>,
    /// True when the sign is -1.
    sign: bool,
}

impl Row {
    fn identity(n: usize) -> Row {
        Row {
            x: vec![false; n],
            z: vec![false; n],
            sign: false,
        }
    }
}

/// Exact stabilizer state simulator over a fixed number of qubits.
///
/// # Examples
///
/// ```
/// use caliqec_stab::Tableau;
///
/// // Prepare a Bell pair and verify the measurements are correlated.
/// let mut sim = Tableau::new(2);
/// sim.h(0);
/// sim.cx(0, 1);
/// let (a, deterministic_a) = sim.measure_z(0, || false);
/// let (b, deterministic_b) = sim.measure_z(1, || false);
/// assert!(!deterministic_a); // first measurement of a Bell pair is random
/// assert!(deterministic_b); // second one is pinned by the first
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct Tableau {
    n: usize,
    /// Rows `0..n` are destabilizers, rows `n..2n` are stabilizers.
    rows: Vec<Row>,
}

impl Tableau {
    /// Creates the all-`|0⟩` state on `n` qubits.
    pub fn new(n: usize) -> Tableau {
        let mut rows = vec![Row::identity(n); 2 * n];
        for q in 0..n {
            rows[q].x[q] = true; // destabilizer X_q
            rows[n + q].z[q] = true; // stabilizer Z_q
        }
        Tableau { n, rows }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies a Hadamard on `q`.
    pub fn h(&mut self, q: Qubit) {
        let q = q as usize;
        for row in &mut self.rows {
            row.sign ^= row.x[q] & row.z[q];
            row.x.swap(q, q); // no-op, keeps symmetry explicit
            let (x, z) = (row.x[q], row.z[q]);
            row.x[q] = z;
            row.z[q] = x;
        }
    }

    /// Applies the phase gate S on `q`.
    pub fn s(&mut self, q: Qubit) {
        let q = q as usize;
        for row in &mut self.rows {
            row.sign ^= row.x[q] & row.z[q];
            row.z[q] ^= row.x[q];
        }
    }

    /// Applies S† on `q`.
    pub fn s_dag(&mut self, q: Qubit) {
        // S† = S Z up to global phase; conjugation: X -> -Y, Y -> X, Z -> Z.
        self.s(q);
        self.z(q);
    }

    /// Applies a Pauli X on `q`.
    pub fn x(&mut self, q: Qubit) {
        let q = q as usize;
        for row in &mut self.rows {
            row.sign ^= row.z[q];
        }
    }

    /// Applies a Pauli Z on `q`.
    pub fn z(&mut self, q: Qubit) {
        let q = q as usize;
        for row in &mut self.rows {
            row.sign ^= row.x[q];
        }
    }

    /// Applies a Pauli Y on `q`.
    pub fn y(&mut self, q: Qubit) {
        let q = q as usize;
        for row in &mut self.rows {
            row.sign ^= row.x[q] ^ row.z[q];
        }
    }

    /// Applies a CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cx(&mut self, c: Qubit, t: Qubit) {
        assert_ne!(c, t, "CX control and target must differ");
        let (c, t) = (c as usize, t as usize);
        for row in &mut self.rows {
            row.sign ^= row.x[c] & row.z[t] & (row.x[t] ^ row.z[c] ^ true);
            row.x[t] ^= row.x[c];
            row.z[c] ^= row.z[t];
        }
    }

    /// Applies a CZ between `a` and `b`.
    pub fn cz(&mut self, a: Qubit, b: Qubit) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// Applies a SWAP between `a` and `b`.
    pub fn swap(&mut self, a: Qubit, b: Qubit) {
        let (a, b) = (a as usize, b as usize);
        for row in &mut self.rows {
            row.x.swap(a, b);
            row.z.swap(a, b);
        }
    }

    /// Exponent of `i` contributed when multiplying single-qubit Paulis
    /// `(x1,z1) * (x2,z2)` (the Aaronson–Gottesman `g` function).
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// Multiplies row `i` into row `h` (row_h := row_i * row_h), tracking sign.
    fn row_mul(&mut self, h: usize, i: usize) {
        let mut phase: i32 = 2 * (self.rows[h].sign as i32) + 2 * (self.rows[i].sign as i32);
        for q in 0..self.n {
            phase += Self::g(
                self.rows[i].x[q],
                self.rows[i].z[q],
                self.rows[h].x[q],
                self.rows[h].z[q],
            );
        }
        phase = phase.rem_euclid(4);
        debug_assert!(phase == 0 || phase == 2, "row product must be Hermitian");
        let (ri, rh) = if i < h {
            let (lo, hi) = self.rows.split_at_mut(h);
            (&lo[i], &mut hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(i);
            (&hi[0], &mut lo[h])
        };
        for q in 0..self.n {
            rh.x[q] ^= ri.x[q];
            rh.z[q] ^= ri.z[q];
        }
        rh.sign = phase == 2;
    }

    /// Measures qubit `q` in the Z basis.
    ///
    /// Returns `(outcome, deterministic)`. When the outcome is random, the
    /// `coin` closure supplies the random bit.
    pub fn measure_z(&mut self, q: Qubit, coin: impl FnOnce() -> bool) -> (bool, bool) {
        let qi = q as usize;
        let n = self.n;
        // Look for a stabilizer row that anticommutes with Z_q.
        let p = (n..2 * n).find(|&r| self.rows[r].x[qi]);
        match p {
            Some(p) => {
                // Random outcome.
                for r in 0..2 * n {
                    if r != p && self.rows[r].x[qi] {
                        self.row_mul(r, p);
                    }
                }
                // Destabilizer p-n becomes the old stabilizer row p.
                self.rows[p - n] = self.rows[p].clone();
                let outcome = coin();
                let row = &mut self.rows[p];
                for b in row.x.iter_mut() {
                    *b = false;
                }
                for b in row.z.iter_mut() {
                    *b = false;
                }
                row.z[qi] = true;
                row.sign = outcome;
                (outcome, false)
            }
            None => {
                // Deterministic outcome: accumulate into a scratch row.
                let mut scratch = Row::identity(n);
                let scratch_idx = self.rows.len();
                self.rows.push(scratch.clone());
                for r in 0..n {
                    if self.rows[r].x[qi] {
                        self.row_mul(scratch_idx, r + n);
                    }
                }
                scratch = self.rows.pop().expect("scratch row present");
                (scratch.sign, true)
            }
        }
    }

    /// Measures qubit `q` in the X basis. Returns `(outcome, deterministic)`.
    pub fn measure_x(&mut self, q: Qubit, coin: impl FnOnce() -> bool) -> (bool, bool) {
        self.h(q);
        let out = self.measure_z(q, coin);
        self.h(q);
        out
    }

    /// Resets qubit `q` to `|0⟩`.
    pub fn reset_z(&mut self, q: Qubit, coin: impl FnOnce() -> bool) {
        let (outcome, _) = self.measure_z(q, coin);
        if outcome {
            self.x(q);
        }
    }

    /// Resets qubit `q` to `|+⟩`.
    pub fn reset_x(&mut self, q: Qubit, coin: impl FnOnce() -> bool) {
        let (outcome, _) = self.measure_x(q, coin);
        if outcome {
            self.z(q);
        }
    }

    /// Applies a sparse Pauli product as a physical error.
    pub fn apply_pauli(&mut self, pauli: &SparsePauli) {
        for (q, p) in pauli.iter() {
            match p {
                Pauli::I => {}
                Pauli::X => self.x(q),
                Pauli::Y => self.y(q),
                Pauli::Z => self.z(q),
            }
        }
    }

    /// Measures the expectation of a Pauli product observable without
    /// disturbing the state, when it is determined by the stabilizer group.
    ///
    /// Returns `Some(outcome)` when `observable` (or its negation) is in the
    /// stabilizer group; `None` when the observable anticommutes with some
    /// stabilizer (its value is undetermined).
    pub fn peek_observable(&self, observable: &SparsePauli) -> Option<bool> {
        // The observable is determined iff it commutes with every stabilizer.
        let n = self.n;
        for r in n..2 * n {
            if !self.row_commutes(r, observable) {
                return None;
            }
        }
        // Express the observable as a product of stabilizers using the
        // destabilizer pairing: stabilizer row r+n participates iff the
        // observable anticommutes with destabilizer row r.
        let mut clone = self.clone();
        let scratch_idx = clone.rows.len();
        clone.rows.push(Row::identity(n));
        for r in 0..n {
            if !self.row_commutes(r, observable) {
                clone.row_mul(scratch_idx, r + n);
            }
        }
        let scratch = clone.rows.pop().expect("scratch row present");
        // scratch should now equal the observable as a Pauli product.
        for q in 0..n {
            let want = observable.get(q as Qubit).xz();
            if (scratch.x[q], scratch.z[q]) != want {
                // The observable is not in the stabilizer group (e.g. it is a
                // product involving qubits outside the stabilized subspace).
                return None;
            }
        }
        Some(scratch.sign)
    }

    /// Whether tableau row `r` commutes with the given Pauli product.
    fn row_commutes(&self, r: usize, pauli: &SparsePauli) -> bool {
        let row = &self.rows[r];
        let mut anti = false;
        for (q, p) in pauli.iter() {
            let qp = Pauli::from_xz(row.x[q as usize], row.z[q as usize]);
            if !qp.commutes_with(p) {
                anti = !anti;
            }
        }
        !anti
    }

    /// Returns the current stabilizer generators as sparse Paulis with signs.
    pub fn stabilizers(&self) -> Vec<(SparsePauli, bool)> {
        (self.n..2 * self.n)
            .map(|r| {
                let row = &self.rows[r];
                let p = SparsePauli::from_pairs((0..self.n).filter_map(|q| {
                    let pq = Pauli::from_xz(row.x[q], row.z[q]);
                    (pq != Pauli::I).then_some((q as Qubit, pq))
                }));
                (p, row.sign)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn coin_from(rng: &mut StdRng) -> impl FnOnce() -> bool + '_ {
        || rng.random::<bool>()
    }

    #[test]
    fn zero_state_measures_zero() {
        let mut t = Tableau::new(3);
        for q in 0..3 {
            let (outcome, det) = t.measure_z(q, || true);
            assert!(!outcome);
            assert!(det);
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::new(1);
        t.x(0);
        let (outcome, det) = t.measure_z(0, || false);
        assert!(outcome);
        assert!(det);
    }

    #[test]
    fn hadamard_randomizes() {
        let mut t = Tableau::new(1);
        t.h(0);
        let (outcome, det) = t.measure_z(0, || true);
        assert!(!det);
        assert!(outcome); // the coin decided
                          // After collapse the value repeats deterministically.
        let (again, det2) = t.measure_z(0, || false);
        assert!(det2);
        assert!(again);
    }

    #[test]
    fn plus_state_measures_plus_in_x() {
        let mut t = Tableau::new(1);
        t.reset_x(0, || false);
        let (outcome, det) = t.measure_x(0, || true);
        assert!(det);
        assert!(!outcome);
    }

    #[test]
    fn bell_pair_correlations() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cx(0, 1);
            let (a, _) = t.measure_z(0, coin_from(&mut rng));
            let (b, det) = t.measure_z(1, || false);
            assert!(det);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_parity_via_peek() {
        let mut t = Tableau::new(3);
        t.h(0);
        t.cx(0, 1);
        t.cx(1, 2);
        // X0 X1 X2 stabilizes the GHZ state with +1.
        let obs = SparsePauli::from_pairs([(0, Pauli::X), (1, Pauli::X), (2, Pauli::X)]);
        assert_eq!(t.peek_observable(&obs), Some(false));
        // Z0 alone is undetermined.
        assert_eq!(t.peek_observable(&SparsePauli::single(0, Pauli::Z)), None);
        // Z0 Z1 is determined (+1).
        let zz = SparsePauli::from_pairs([(0, Pauli::Z), (1, Pauli::Z)]);
        assert_eq!(t.peek_observable(&zz), Some(false));
    }

    #[test]
    fn cz_phase_kickback() {
        // CZ on |+>|1> flips the first qubit's X expectation.
        let mut t = Tableau::new(2);
        t.h(0);
        t.x(1);
        t.cz(0, 1);
        let (outcome, det) = t.measure_x(0, || false);
        assert!(det);
        assert!(outcome); // now in |->
    }

    #[test]
    fn swap_moves_state() {
        let mut t = Tableau::new(2);
        t.x(0);
        t.swap(0, 1);
        let (a, _) = t.measure_z(0, || false);
        let (b, _) = t.measure_z(1, || false);
        assert!(!a);
        assert!(b);
    }

    #[test]
    fn s_gate_turns_x_into_y() {
        // S|+> has Y expectation +1: measure via S† H ... easier: S S |+> = Z|+> = |->.
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.s(0);
        let (outcome, det) = t.measure_x(0, || false);
        assert!(det);
        assert!(outcome);
    }

    #[test]
    fn s_dag_inverts_s() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.s_dag(0);
        let (outcome, det) = t.measure_x(0, || false);
        assert!(det);
        assert!(!outcome);
    }

    #[test]
    fn reset_clears_entanglement() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        t.reset_z(0, coin_from(&mut rng));
        let (outcome, det) = t.measure_z(0, || true);
        assert!(det);
        assert!(!outcome);
    }

    #[test]
    fn stabilizer_measurement_is_repeatable() {
        // Measuring Z0 Z1 on |++> (via ancilla) is random but repeatable.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let mut t = Tableau::new(3);
            t.h(0);
            t.h(1);
            // ancilla = qubit 2
            t.cx(0, 2);
            t.cx(1, 2);
            let (m1, det1) = t.measure_z(2, coin_from(&mut rng));
            assert!(!det1);
            t.reset_z(2, || false);
            t.cx(0, 2);
            t.cx(1, 2);
            let (m2, det2) = t.measure_z(2, || false);
            assert!(det2);
            assert_eq!(m1, m2);
        }
    }

    #[test]
    fn stabilizers_of_zero_state() {
        let t = Tableau::new(2);
        let stabs = t.stabilizers();
        assert_eq!(stabs.len(), 2);
        assert_eq!(stabs[0].0, SparsePauli::single(0, Pauli::Z));
        assert!(!stabs[0].1);
    }
}
