//! # caliqec-stab — stabilizer circuit simulation substrate
//!
//! A from-scratch reimplementation of the stabilizer-simulation tooling the
//! CaliQEC paper builds on (the paper uses Stim). It provides:
//!
//! - [`Pauli`] / [`SparsePauli`]: Pauli algebra.
//! - [`Tableau`]: an exact CHP-style (Aaronson–Gottesman) stabilizer
//!   simulator, the ground-truth reference.
//! - [`Circuit`]: a Clifford circuit IR with Pauli noise channels, detectors,
//!   and logical observables.
//! - [`FrameSampler`]: a batched Pauli-frame Monte-Carlo sampler (64 shots
//!   per word) for high-throughput logical-error-rate estimation.
//! - [`SparseBatch`]: word-sparse, allocation-free extraction of per-shot
//!   defect lists and observable masks from a sampled batch — the
//!   decoder-facing hot path of the LER engine.
//! - [`CompiledCircuit`] / [`FrameState`]: the one-time-compiled form of a
//!   circuit backing `FrameSampler`, shareable by `&` across threads with
//!   one cheap `FrameState` per worker — the substrate of the parallel LER
//!   engine in `caliqec-match`.
//! - [`extract_dem`] / [`DetectorErrorModel`]: reduction of a noisy circuit
//!   to its error mechanisms, the decoder-facing interface.
//!
//! # Example
//!
//! ```
//! use caliqec_stab::{Basis, Circuit, FrameSampler, Noise1, extract_dem};
//! use rand::SeedableRng;
//!
//! // A tiny two-qubit parity check with bit-flip noise.
//! let mut c = Circuit::new(3);
//! c.reset(Basis::Z, &[0, 1, 2]);
//! c.noise1(Noise1::XError, 0.01, &[0, 1]);
//! c.cx(0, 2);
//! c.cx(1, 2);
//! let m = c.measure(2, Basis::Z, 0.0);
//! c.detector(&[m]);
//!
//! // Fast sampling:
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let events = FrameSampler::new(&c).sample_batch(&mut rng);
//! assert_eq!(events.detectors.len(), 1);
//!
//! // Decoder-facing error model:
//! let dem = extract_dem(&c);
//! assert_eq!(dem.mechanisms.len(), 1); // both X errors flip the same check
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod compiled;
mod dem;
mod error;
mod frame;
mod pauli;
mod rates;
mod sim;
mod stream;
mod tableau;
mod text;

pub use circuit::{Basis, Circuit, DetIdx, Gate1, Gate2, MeasIdx, Noise1, Noise2, Op};
pub use compiled::{
    chunk_seed, resolve_threads, CompiledCircuit, FrameState, WideFrameState, LANES,
};
pub use dem::{extract_dem, DetectorErrorModel, ErrorMechanism, ErrorSource, SourceContribution};
pub use error::CircuitError;
pub use frame::{
    for_each_set_bit, BatchEvents, FrameSampler, InterpretingSampler, SparseBatch, BATCH,
};
pub use pauli::{Pauli, Qubit, SparsePauli};
pub use rates::RateTable;
pub use sim::{
    check_deterministic_detectors, noiseless_shot, simulate_shot, NondeterministicDetector,
    ShotResult,
};
pub use stream::{round_bounds, RoundStream, WindowBuilder, WindowError};
pub use tableau::Tableau;
pub use text::{from_stim_text, to_stim_text, ParseCircuitError};
