//! Incremental round-by-round syndrome ingestion into decode windows.
//!
//! The batch engine samples a whole circuit execution at once and hands the
//! decoder one [`BatchEvents`] per chunk. A streaming service instead
//! receives detector events *round by round* — a hardware readout line
//! delivers one round's worth of detector words at a time — and must
//! reassemble them into decode windows before any decoder can run.
//!
//! [`WindowBuilder`] is that reassembly buffer: rounds are appended in
//! arrival order and, once they tile the window's detector count exactly,
//! the completed window is swapped out as a [`BatchEvents`] (detector
//! words only; a round stream carries no observable readout). All buffers
//! are reused, so the steady-state ingestion cost is one `memcpy` per
//! round and zero allocations — the same discipline as the
//! [`SparseBatch`](crate::SparseBatch) extraction path downstream.
//!
//! [`RoundStream`] is the loopback source used by tests, the CLI
//! `serve` smoke mode, and the bench load generator: it samples a circuit
//! through the compiled Pauli-frame sampler and replays each 64-shot
//! batch as a sequence of rounds, so a full service stack can be driven
//! deterministically from a seed with no hardware in the loop.

use crate::circuit::Circuit;
use crate::compiled::{CompiledCircuit, FrameState};
use crate::frame::BatchEvents;
use rand::Rng;
use std::fmt;

/// A round that cannot be appended to the current window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowError {
    /// The round carried no detector words.
    EmptyRound,
    /// The round would run past the window boundary: rounds must tile the
    /// window's detector count exactly.
    Misaligned {
        /// Detector words already buffered in the open window.
        buffered: usize,
        /// Detector words in the offending round.
        round: usize,
        /// Detector words per complete window.
        window: usize,
    },
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::EmptyRound => write!(f, "round carries no detector words"),
            WindowError::Misaligned {
                buffered,
                round,
                window,
            } => write!(
                f,
                "round of {round} detectors overruns the window boundary \
                 ({buffered} of {window} buffered)"
            ),
        }
    }
}

impl std::error::Error for WindowError {}

/// Reassembles per-round detector words into fixed-size decode windows.
///
/// Each pushed round is a slice of detector words (bit `s` of word `d` =
/// detector `d` fired in shot lane `s`, exactly as in [`BatchEvents`]).
/// Rounds may vary in length; they must tile the window's total detector
/// count exactly, which [`round_bounds`] guarantees for any even split.
///
/// # Examples
///
/// ```
/// use caliqec_stab::{BatchEvents, WindowBuilder};
///
/// let mut wb = WindowBuilder::new(5);
/// assert!(!wb.push_round(&[1, 2]).unwrap());
/// assert!(wb.push_round(&[3, 4, 5]).unwrap()); // window complete
/// let mut window = BatchEvents::default();
/// wb.finish_window(&mut window);
/// assert_eq!(window.detectors, [1, 2, 3, 4, 5]);
/// assert_eq!(wb.detectors_buffered(), 0); // builder reset for the next window
/// ```
#[derive(Clone, Debug)]
pub struct WindowBuilder {
    window_detectors: usize,
    events: BatchEvents,
    rounds: usize,
}

impl WindowBuilder {
    /// A builder for windows of `window_detectors` detector words (the
    /// decoder graph's detector count).
    ///
    /// # Panics
    ///
    /// Panics if `window_detectors` is zero.
    pub fn new(window_detectors: usize) -> WindowBuilder {
        assert!(window_detectors > 0, "window must hold at least 1 detector");
        WindowBuilder {
            window_detectors,
            events: BatchEvents::default(),
            rounds: 0,
        }
    }

    /// Detector words per complete window.
    pub fn window_detectors(&self) -> usize {
        self.window_detectors
    }

    /// Rounds buffered in the currently open window.
    pub fn rounds_buffered(&self) -> usize {
        self.rounds
    }

    /// Detector words buffered in the currently open window.
    pub fn detectors_buffered(&self) -> usize {
        self.events.detectors.len()
    }

    /// Appends one round. Returns `Ok(true)` when the window is now
    /// complete and ready for [`Self::finish_window`].
    pub fn push_round(&mut self, round: &[u64]) -> Result<bool, WindowError> {
        if round.is_empty() {
            return Err(WindowError::EmptyRound);
        }
        let buffered = self.events.detectors.len();
        if buffered + round.len() > self.window_detectors {
            return Err(WindowError::Misaligned {
                buffered,
                round: round.len(),
                window: self.window_detectors,
            });
        }
        self.events.detectors.extend_from_slice(round);
        self.rounds += 1;
        Ok(self.events.detectors.len() == self.window_detectors)
    }

    /// Swaps the completed window into `out` (its previous buffers come
    /// back for reuse) and resets the builder for the next window. The
    /// window's `observables` are left empty: a round stream carries no
    /// observable readout.
    ///
    /// # Panics
    ///
    /// Panics if the window is not complete.
    pub fn finish_window(&mut self, out: &mut BatchEvents) {
        assert_eq!(
            self.events.detectors.len(),
            self.window_detectors,
            "finish_window on an incomplete window"
        );
        std::mem::swap(out, &mut self.events);
        out.observables.clear();
        self.events.detectors.clear();
        self.events.observables.clear();
        self.rounds = 0;
    }
}

/// The half-open detector range `[lo, hi)` of round `i` when `total`
/// detectors are split into `rounds` nearly-equal contiguous rounds.
///
/// Uses the exact integer partition `lo = i * total / rounds`, so the
/// rounds tile `[0, total)` with sizes differing by at most one — every
/// split produced here satisfies [`WindowBuilder::push_round`]'s tiling
/// requirement.
pub fn round_bounds(total: usize, rounds: usize, i: usize) -> (usize, usize) {
    assert!(rounds > 0 && i < rounds);
    (i * total / rounds, (i + 1) * total / rounds)
}

/// Deterministic loopback round source: samples a circuit batch-by-batch
/// and replays each 64-shot batch as `rounds_per_window` consecutive
/// rounds, window after window.
///
/// One sampled batch is one window, so the stream's window `w` is a pure
/// function of `(circuit, seed)` — independent of how fast rounds are
/// drained — which is what makes golden-replay testing of a streaming
/// service possible.
#[derive(Debug)]
pub struct RoundStream {
    compiled: CompiledCircuit,
    state: FrameState,
    events: BatchEvents,
    rounds_per_window: usize,
    /// Next round index within the current window; `rounds_per_window`
    /// forces a fresh batch on the next call.
    cursor: usize,
    windows_sampled: u64,
}

impl RoundStream {
    /// A round stream over `circuit` emitting `rounds_per_window` rounds
    /// per sampled window. Rounds that would come out empty (more rounds
    /// than detectors) are rejected up front.
    ///
    /// # Panics
    ///
    /// Panics if `rounds_per_window` is zero or exceeds the circuit's
    /// detector count.
    pub fn new(circuit: &Circuit, rounds_per_window: usize) -> RoundStream {
        let compiled = CompiledCircuit::new(circuit);
        assert!(
            rounds_per_window > 0 && rounds_per_window <= compiled.num_detectors(),
            "rounds_per_window must be in 1..={}",
            compiled.num_detectors()
        );
        let state = FrameState::new(&compiled);
        RoundStream {
            compiled,
            state,
            events: BatchEvents::default(),
            rounds_per_window,
            cursor: rounds_per_window,
            windows_sampled: 0,
        }
    }

    /// Detector words per complete window (the circuit's detector count).
    pub fn window_detectors(&self) -> usize {
        self.compiled.num_detectors()
    }

    /// Rounds per window, as configured.
    pub fn rounds_per_window(&self) -> usize {
        self.rounds_per_window
    }

    /// Complete windows sampled so far.
    pub fn windows_sampled(&self) -> u64 {
        self.windows_sampled
    }

    /// The next round's detector words, sampling a fresh 64-shot window
    /// when the previous one is exhausted. Returns `(round_in_window,
    /// words)`; `round_in_window == 0` marks a window boundary.
    pub fn next_round<R: Rng>(&mut self, rng: &mut R) -> (usize, &[u64]) {
        if self.cursor == self.rounds_per_window {
            self.compiled
                .sample_batch_into(&mut self.state, rng, &mut self.events);
            self.cursor = 0;
            self.windows_sampled += 1;
        }
        let i = self.cursor;
        self.cursor += 1;
        let (lo, hi) = round_bounds(self.compiled.num_detectors(), self.rounds_per_window, i);
        (i, &self.events.detectors[lo..hi])
    }

    /// The observable event words of the most recently sampled window
    /// (the ground truth a loopback harness scores decode masks against).
    pub fn window_observables(&self) -> &[u64] {
        &self.events.observables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Basis, Noise1};
    use crate::frame::FrameSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.reset(Basis::Z, &[0, 1, 2]);
        c.noise1(Noise1::XError, 0.3, &[0, 1, 2]);
        let m0 = c.measure(0, Basis::Z, 0.0);
        let m1 = c.measure(1, Basis::Z, 0.0);
        let m2 = c.measure(2, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        c.detector(&[m2]);
        c.detector(&[m0, m1]);
        c.detector(&[m1, m2]);
        c.observable(0, &[m0]);
        c
    }

    #[test]
    fn round_bounds_tile_exactly() {
        for total in 1..40usize {
            for rounds in 1..=total {
                let mut covered = 0;
                for i in 0..rounds {
                    let (lo, hi) = round_bounds(total, rounds, i);
                    assert_eq!(lo, covered, "gap at round {i}");
                    assert!(hi > lo || total < rounds, "empty round {i}");
                    covered = hi;
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn builder_rejects_misaligned_and_empty_rounds() {
        let mut wb = WindowBuilder::new(4);
        assert_eq!(wb.push_round(&[]), Err(WindowError::EmptyRound));
        assert_eq!(wb.push_round(&[1, 2, 3]), Ok(false));
        assert_eq!(
            wb.push_round(&[4, 5]),
            Err(WindowError::Misaligned {
                buffered: 3,
                round: 2,
                window: 4,
            })
        );
        // The failed push left the buffer untouched.
        assert_eq!(wb.detectors_buffered(), 3);
        assert_eq!(wb.push_round(&[4]), Ok(true));
    }

    #[test]
    fn builder_reassembles_windows_and_reuses_buffers() {
        let mut wb = WindowBuilder::new(5);
        let mut out = BatchEvents::default();
        for window in 0u64..3 {
            for i in 0..5 {
                let complete = wb.push_round(&[window * 10 + i]).unwrap();
                assert_eq!(complete, i == 4);
            }
            assert_eq!(wb.rounds_buffered(), 5);
            wb.finish_window(&mut out);
            let expect: Vec<u64> = (0..5).map(|i| window * 10 + i).collect();
            assert_eq!(out.detectors, expect);
            assert!(out.observables.is_empty());
            assert_eq!(wb.rounds_buffered(), 0);
        }
    }

    #[test]
    fn round_stream_reassembles_to_sampled_batches() {
        // Streaming rounds through a WindowBuilder must reproduce, window
        // by window, exactly what the batch sampler produces from the same
        // seed: the round split is pure plumbing.
        let c = tiny_circuit();
        for rounds in [1, 2, 5] {
            let mut stream = RoundStream::new(&c, rounds);
            let mut wb = WindowBuilder::new(stream.window_detectors());
            let mut rng = StdRng::seed_from_u64(7);
            let mut reference = FrameSampler::new(&c);
            let mut ref_rng = StdRng::seed_from_u64(7);
            let mut window = BatchEvents::default();
            for w in 0..4u64 {
                for i in 0..rounds {
                    let (idx, words) = stream.next_round(&mut rng);
                    assert_eq!(idx, i);
                    let complete = wb.push_round(words).unwrap();
                    assert_eq!(complete, i + 1 == rounds);
                }
                wb.finish_window(&mut window);
                let expect = ref_rng_batch(&mut reference, &mut ref_rng);
                assert_eq!(window.detectors, expect.detectors, "window {w}");
                assert_eq!(stream.window_observables(), &expect.observables[..]);
                assert_eq!(stream.windows_sampled(), w + 1);
            }
        }
    }

    fn ref_rng_batch(sampler: &mut FrameSampler, rng: &mut StdRng) -> BatchEvents {
        sampler.sample_batch(rng)
    }
}
