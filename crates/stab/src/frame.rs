//! Batched Pauli-frame Monte-Carlo sampler.
//!
//! Samples 64 shots at a time by tracking, for every qubit, one 64-bit word of
//! X-frame bits and one of Z-frame bits (bit `i` belongs to shot `i`). Errors
//! are sampled per shot, conjugated through Clifford gates word-parallel, and
//! read out as measurement-record flips relative to a noiseless reference
//! execution.
//!
//! # Preconditions
//!
//! The frame sampler reports detector *events* (flips relative to the
//! noiseless run), which equal detector *values* only when the circuit's
//! detectors are noiselessly deterministic and zero — the convention enforced
//! by [`crate::sim::check_deterministic_detectors`] and satisfied by all
//! circuit generators in this workspace.

use crate::circuit::{Basis, Circuit, Gate1, Gate2, Noise1, Noise2, Op};
use crate::compiled::{CompiledCircuit, FrameState};
use crate::pauli::Pauli;
use crate::sim::two_qubit_pauli;
use rand::{Rng, RngExt};

/// Number of shots sampled per batch (bits in a machine word).
pub const BATCH: usize = 64;

/// Calls `f(bit)` for every set bit of `w`, in ascending bit order.
///
/// The shared word-walk helper behind every sparse extraction site
/// ([`SparseBatch::extract`], [`BatchEvents::for_each_shot`]) and the
/// per-hit noise loops of the samplers: cost is one `trailing_zeros` per
/// set bit, so walking a mostly-zero word is nearly free.
#[inline]
pub fn for_each_set_bit(mut w: u64, mut f: impl FnMut(u32)) {
    while w != 0 {
        let s = w.trailing_zeros();
        w &= w - 1;
        f(s);
    }
}

/// Detector and observable events for a batch of [`BATCH`] shots.
///
/// Bit `s` of word `detectors[d]` is the event of detector `d` in shot `s`.
#[derive(Clone, Debug, Default)]
pub struct BatchEvents {
    /// One word per detector.
    pub detectors: Vec<u64>,
    /// One word per observable.
    pub observables: Vec<u64>,
}

impl BatchEvents {
    /// Calls `f(shot, defects, observable_mask)` for every shot in the
    /// batch, where `defects` are the indices of fired detectors and
    /// `observable_mask` packs the observable events as bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use caliqec_stab::{Basis, Circuit, FrameSampler, Noise1};
    /// use rand::SeedableRng;
    ///
    /// let mut c = Circuit::new(1);
    /// c.reset(Basis::Z, &[0]);
    /// c.noise1(Noise1::XError, 1.0, &[0]);
    /// let m = c.measure(0, Basis::Z, 0.0);
    /// c.detector(&[m]);
    /// c.observable(0, &[m]);
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let events = FrameSampler::new(&c).sample_batch(&mut rng);
    /// let mut hits = 0;
    /// events.for_each_shot(|_, defects, obs| {
    ///     assert_eq!(defects, &[0]);
    ///     assert_eq!(obs, 1);
    ///     hits += 1;
    /// });
    /// assert_eq!(hits, 64);
    /// ```
    pub fn for_each_shot(&self, f: impl FnMut(usize, &[usize], u64)) {
        let mut sparse = SparseBatch::new();
        sparse.extract(self);
        sparse.for_each_shot(f);
    }

    /// Extracts the detector events of shot `s` as a bool vector.
    ///
    /// Allocates per call — this is the dense *test oracle* against which
    /// the sparse extraction is validated; the engine hot path never calls
    /// it (it goes through [`SparseBatch`] instead).
    pub fn shot_detectors(&self, s: usize) -> Vec<bool> {
        assert!(s < BATCH);
        self.detectors.iter().map(|w| (w >> s) & 1 == 1).collect()
    }

    /// Extracts the observable events of shot `s` as a bool vector.
    ///
    /// Allocates per call — dense test oracle only; see
    /// [`Self::shot_detectors`].
    pub fn shot_observables(&self, s: usize) -> Vec<bool> {
        assert!(s < BATCH);
        self.observables.iter().map(|w| (w >> s) & 1 == 1).collect()
    }
}

/// Word-sparse, allocation-free view of one [`BatchEvents`] batch: per-shot
/// fired-detector index lists plus per-shot observable masks.
///
/// Owned by the caller and reused across batches, so the steady-state cost
/// of [`Self::extract`] is `O(words + popcount)` — each detector word is
/// visited once, zero words are skipped, and set bits are walked with
/// `trailing_zeros` into per-shot buffers whose capacity persists. This is
/// the decoder-facing extraction path of the Monte-Carlo engine: at low
/// physical error rates almost every word is zero, so extraction cost
/// scales with the number of fired detectors, not with the patch size.
///
/// # Examples
///
/// ```
/// use caliqec_stab::{Basis, Circuit, FrameSampler, Noise1, SparseBatch, BATCH};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 1.0, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let events = FrameSampler::new(&c).sample_batch(&mut rng);
///
/// let mut sparse = SparseBatch::new();
/// sparse.extract(&events);
/// for s in 0..BATCH {
///     assert_eq!(sparse.defects(s), &[0]);
///     assert_eq!(sparse.observables(s), 1);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SparseBatch {
    /// Fired-detector indices per shot, ascending. One buffer per lane,
    /// cleared (capacity kept) on every [`Self::extract`].
    defects: Vec<Vec<usize>>,
    /// Observable event mask per shot (bit `i` = observable `i`).
    observables: Vec<u64>,
}

impl Default for SparseBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl SparseBatch {
    /// Creates an empty scratch batch. Buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> SparseBatch {
        SparseBatch {
            defects: vec![Vec::new(); BATCH],
            observables: vec![0; BATCH],
        }
    }

    /// Scatters `events` into per-shot defect lists and observable masks.
    ///
    /// Iterates each detector word once, skips zero words, and walks set
    /// bits via [`for_each_set_bit`]; defect lists come out in ascending
    /// detector order, identical to the dense [`BatchEvents::shot_detectors`]
    /// oracle.
    #[inline]
    pub fn extract(&mut self, events: &BatchEvents) {
        for buf in &mut self.defects {
            buf.clear();
        }
        self.observables.fill(0);
        for (d, &w) in events.detectors.iter().enumerate() {
            if w == 0 {
                continue;
            }
            for_each_set_bit(w, |s| self.defects[s as usize].push(d));
        }
        for (i, &w) in events.observables.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let bit = 1u64 << i;
            for_each_set_bit(w, |s| self.observables[s as usize] |= bit);
        }
    }

    /// The fired detectors of shot `s`, ascending.
    #[inline]
    pub fn defects(&self, s: usize) -> &[usize] {
        &self.defects[s]
    }

    /// The number of fired detectors of shot `s` — the tier-dispatch /
    /// histogram fast path that avoids materialising the slice.
    #[inline]
    pub fn defect_count(&self, s: usize) -> usize {
        self.defects[s].len()
    }

    /// The observable event mask of shot `s`.
    #[inline]
    pub fn observables(&self, s: usize) -> u64 {
        self.observables[s]
    }

    /// Calls `f(shot, defects, observable_mask)` for every shot, in shot
    /// order — the sparse equivalent of [`BatchEvents::for_each_shot`].
    pub fn for_each_shot(&self, mut f: impl FnMut(usize, &[usize], u64)) {
        for s in 0..BATCH {
            f(s, &self.defects[s], self.observables[s]);
        }
    }
}

/// Samples a Bernoulli(`p`) mask over the 64 shot lanes.
///
/// Uses geometric skipping so the cost is proportional to the number of hits,
/// which is what makes low-physical-error-rate sampling fast.
///
/// Shared with the compiled sampler so both consume RNG draws identically.
pub(crate) fn bernoulli_mask<R: Rng>(p: f64, rng: &mut R) -> u64 {
    bernoulli_mask_with(p, (-p).ln_1p(), rng)
}

/// [`bernoulli_mask`] with `ln(1 - p)` supplied by the caller — the
/// compiled sampler caches it per instruction at compile time, saving an
/// `ln_1p` evaluation per noise site per batch. The arithmetic on the
/// random draws is unchanged, so the sampled masks are bit-identical to
/// the self-computing variant.
pub(crate) fn bernoulli_mask_with<R: Rng>(p: f64, log1p: f64, rng: &mut R) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return u64::MAX;
    }
    let mut mask = 0u64;
    // Skip-ahead sampling: the gap between successes is geometric.
    let mut pos = 0f64;
    loop {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        pos += (u.ln() / log1p).floor();
        if pos >= BATCH as f64 {
            break;
        }
        mask |= 1u64 << (pos as u32);
        pos += 1.0;
    }
    mask
}

/// Pauli-frame sampler over a fixed circuit.
///
/// Since the compiled-engine refactor this is a thin wrapper that compiles
/// the circuit once ([`crate::CompiledCircuit`]) and samples through the
/// compiled program; it keeps the historical one-object API for callers
/// that don't need to share the compiled circuit across threads. For a
/// fixed seed it produces bit-identical events to [`InterpretingSampler`].
///
/// # Examples
///
/// ```
/// use caliqec_stab::{Basis, Circuit, FrameSampler, Noise1};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 1.0, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
///
/// let mut sampler = FrameSampler::new(&c);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let events = sampler.sample_batch(&mut rng);
/// assert_eq!(events.detectors[0], u64::MAX); // the X error always fires
/// ```
#[derive(Clone, Debug)]
pub struct FrameSampler {
    compiled: CompiledCircuit,
    state: FrameState,
    events: BatchEvents,
}

impl FrameSampler {
    /// Creates a sampler for `circuit`, compiling it once.
    pub fn new(circuit: &Circuit) -> FrameSampler {
        let compiled = CompiledCircuit::new(circuit);
        let state = FrameState::new(&compiled);
        FrameSampler {
            compiled,
            state,
            events: BatchEvents::default(),
        }
    }

    /// The compiled program backing this sampler.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// Samples one batch of [`BATCH`] shots, returning detector and
    /// observable events.
    pub fn sample_batch<R: Rng>(&mut self, rng: &mut R) -> BatchEvents {
        self.compiled
            .sample_batch_into(&mut self.state, rng, &mut self.events);
        self.events.clone()
    }

    /// Samples at least `min_shots` shots and returns
    /// `(shots, logical_error_counts_per_observable)` where a logical error is
    /// any shot whose observable event bit is set.
    ///
    /// This raw counter ignores decoding; use the decoder crate to count
    /// *residual* logical errors after correction. For the thread-parallel
    /// variant see [`CompiledCircuit::count_raw_observable_flips`].
    pub fn count_raw_observable_flips<R: Rng>(
        &mut self,
        min_shots: usize,
        rng: &mut R,
    ) -> (usize, Vec<usize>) {
        let batches = min_shots.div_ceil(BATCH).max(1);
        let mut counts = vec![0usize; self.compiled.num_observables()];
        for _ in 0..batches {
            let ev = self.sample_batch(rng);
            for (c, w) in counts.iter_mut().zip(&ev.observables) {
                *c += w.count_ones() as usize;
            }
        }
        (batches * BATCH, counts)
    }
}

/// The original op-by-op Pauli-frame sampler, kept as the reference
/// implementation: differential tests and the `engine` benchmark compare
/// it against [`crate::CompiledCircuit`], whose RNG draw order it defines.
#[derive(Debug)]
pub struct InterpretingSampler<'c> {
    circuit: &'c Circuit,
    /// X-frame word per qubit.
    x: Vec<u64>,
    /// Z-frame word per qubit.
    z: Vec<u64>,
    /// Measurement-record flip word per measurement.
    meas: Vec<u64>,
}

impl<'c> InterpretingSampler<'c> {
    /// Creates a sampler for `circuit`.
    pub fn new(circuit: &'c Circuit) -> InterpretingSampler<'c> {
        InterpretingSampler {
            circuit,
            x: vec![0; circuit.num_qubits()],
            z: vec![0; circuit.num_qubits()],
            meas: vec![0; circuit.num_measurements()],
        }
    }

    /// Samples one batch of [`BATCH`] shots, returning detector and
    /// observable events.
    pub fn sample_batch<R: Rng>(&mut self, rng: &mut R) -> BatchEvents {
        self.x.fill(0);
        self.z.fill(0);
        self.meas.fill(0);
        let mut events = BatchEvents {
            detectors: Vec::with_capacity(self.circuit.num_detectors()),
            observables: vec![0; self.circuit.num_observables()],
        };
        let mut meas_cursor = 0usize;
        for op in self.circuit.ops() {
            match op {
                Op::G1(g, qs) => {
                    for &q in qs {
                        let q = q as usize;
                        match g {
                            // Paulis commute or anticommute with the frame;
                            // signs are irrelevant to error propagation.
                            Gate1::X | Gate1::Y | Gate1::Z => {}
                            Gate1::H => std::mem::swap(&mut self.x[q], &mut self.z[q]),
                            // S: X -> Y (gains a Z component); Z -> Z.
                            Gate1::S | Gate1::SDag => self.z[q] ^= self.x[q],
                        }
                    }
                }
                Op::G2(g, pairs) => {
                    for &(a, b) in pairs {
                        let (a, b) = (a as usize, b as usize);
                        match g {
                            Gate2::Cx => {
                                self.x[b] ^= self.x[a];
                                self.z[a] ^= self.z[b];
                            }
                            Gate2::Cz => {
                                let (xa, xb) = (self.x[a], self.x[b]);
                                self.z[a] ^= xb;
                                self.z[b] ^= xa;
                            }
                            Gate2::Swap => {
                                self.x.swap(a, b);
                                self.z.swap(a, b);
                            }
                        }
                    }
                }
                Op::Measure { basis, qubit, flip } => {
                    let q = *qubit as usize;
                    let mut flips = match basis {
                        Basis::Z => self.x[q],
                        Basis::X => self.z[q],
                    };
                    if *flip > 0.0 {
                        flips ^= bernoulli_mask(*flip, rng);
                    }
                    self.meas[meas_cursor] = flips;
                    meas_cursor += 1;
                    // Collapse decorrelates the conjugate frame component:
                    // re-randomize it so later anticommutation is harmless.
                    match basis {
                        Basis::Z => self.z[q] = rng.random::<u64>(),
                        Basis::X => self.x[q] = rng.random::<u64>(),
                    }
                }
                Op::Reset(_, qs) => {
                    // Reset discards any accumulated error on the qubit.
                    for &q in qs {
                        self.x[q as usize] = 0;
                        self.z[q as usize] = 0;
                    }
                }
                Op::Noise1(kind, p, qs) => {
                    for &q in qs {
                        let hits = bernoulli_mask(*p, rng);
                        if hits == 0 {
                            continue;
                        }
                        let q = q as usize;
                        match kind {
                            Noise1::XError => self.x[q] ^= hits,
                            Noise1::ZError => self.z[q] ^= hits,
                            Noise1::YError => {
                                self.x[q] ^= hits;
                                self.z[q] ^= hits;
                            }
                            Noise1::Depolarize1 => {
                                for_each_set_bit(hits, |s| {
                                    let bit = 1u64 << s;
                                    match Pauli::NON_IDENTITY[rng.random_range(0..3)] {
                                        Pauli::X => self.x[q] ^= bit,
                                        Pauli::Z => self.z[q] ^= bit,
                                        Pauli::Y => {
                                            self.x[q] ^= bit;
                                            self.z[q] ^= bit;
                                        }
                                        Pauli::I => unreachable!(),
                                    }
                                });
                            }
                        }
                    }
                }
                Op::Noise2(kind, p, pairs) => {
                    for &(a, b) in pairs {
                        let hits = bernoulli_mask(*p, rng);
                        if hits == 0 {
                            continue;
                        }
                        let (a, b) = (a as usize, b as usize);
                        match kind {
                            Noise2::Depolarize2 => {
                                for_each_set_bit(hits, |s| {
                                    let bit = 1u64 << s;
                                    let (pa, pb) = two_qubit_pauli(rng.random_range(0..15));
                                    for (q, pq) in [(a, pa), (b, pb)] {
                                        if pq.has_x() {
                                            self.x[q] ^= bit;
                                        }
                                        if pq.has_z() {
                                            self.z[q] ^= bit;
                                        }
                                    }
                                });
                            }
                        }
                    }
                }
                Op::Detector(meas) => {
                    let w = meas
                        .iter()
                        .fold(0u64, |acc, m| acc ^ self.meas[m.0 as usize]);
                    events.detectors.push(w);
                }
                Op::Observable(i, meas) => {
                    let w = meas
                        .iter()
                        .fold(0u64, |acc, m| acc ^ self.meas[m.0 as usize]);
                    events.observables[*i] ^= w;
                }
            }
        }
        events
    }

    /// Samples at least `min_shots` shots and returns
    /// `(shots, logical_error_counts_per_observable)` where a logical error is
    /// any shot whose observable event bit is set.
    ///
    /// This raw counter ignores decoding; use the decoder crate to count
    /// *residual* logical errors after correction.
    pub fn count_raw_observable_flips<R: Rng>(
        &mut self,
        min_shots: usize,
        rng: &mut R,
    ) -> (usize, Vec<usize>) {
        let batches = min_shots.div_ceil(BATCH);
        let mut counts = vec![0usize; self.circuit.num_observables()];
        for _ in 0..batches {
            let ev = self.sample_batch(rng);
            for (c, w) in counts.iter_mut().zip(&ev.observables) {
                *c += w.count_ones() as usize;
            }
        }
        (batches * BATCH, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Basis, Circuit, Gate1};
    use crate::sim::simulate_shot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_mask_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(bernoulli_mask(0.0, &mut rng), 0);
        assert_eq!(bernoulli_mask(1.0, &mut rng), u64::MAX);
    }

    #[test]
    fn bernoulli_mask_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(42);
        for &p in &[0.01, 0.1, 0.5, 0.9] {
            let mut ones = 0u64;
            let trials = 2000;
            for _ in 0..trials {
                ones += bernoulli_mask(p, &mut rng).count_ones() as u64;
            }
            let freq = ones as f64 / (trials as f64 * 64.0);
            assert!((freq - p).abs() < 0.02, "p={p}, freq={freq}");
        }
    }

    /// A 3-qubit repetition-code round with noise and a logical readout.
    fn noisy_rep_circuit(p: f64) -> Circuit {
        let mut c = Circuit::new(5);
        let (d0, d1, d2, a0, a1) = (0, 1, 2, 3, 4);
        c.reset(Basis::Z, &[d0, d1, d2, a0, a1]);
        c.noise1(crate::circuit::Noise1::XError, p, &[d0, d1, d2]);
        c.cx(d0, a0);
        c.cx(d1, a0);
        c.cx(d1, a1);
        c.cx(d2, a1);
        let m0 = c.measure(a0, Basis::Z, 0.0);
        let m1 = c.measure(a1, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let md = c.measure(d0, Basis::Z, 0.0);
        c.observable(0, &[md]);
        c
    }

    #[test]
    fn frame_matches_tableau_statistics() {
        // Compare detector-fire frequencies between the frame sampler and the
        // exact tableau simulator.
        let p = 0.2;
        let c = noisy_rep_circuit(p);
        let mut rng = StdRng::seed_from_u64(5);

        let mut sampler = FrameSampler::new(&c);
        let mut frame_fires = [0usize; 2];
        let batches = 200;
        for _ in 0..batches {
            let ev = sampler.sample_batch(&mut rng);
            frame_fires[0] += ev.detectors[0].count_ones() as usize;
            frame_fires[1] += ev.detectors[1].count_ones() as usize;
        }
        let frame_freq0 = frame_fires[0] as f64 / (batches * BATCH) as f64;

        let mut tab_fires = 0usize;
        let shots = 4000;
        for _ in 0..shots {
            let shot = simulate_shot(&c, &mut rng);
            tab_fires += shot.detectors[0] as usize;
        }
        let tab_freq0 = tab_fires as f64 / shots as f64;
        assert!(
            (frame_freq0 - tab_freq0).abs() < 0.03,
            "frame={frame_freq0}, tableau={tab_freq0}"
        );
    }

    #[test]
    fn deterministic_error_always_fires() {
        let mut c = Circuit::new(2);
        c.reset(Basis::Z, &[0, 1]);
        c.noise1(crate::circuit::Noise1::XError, 1.0, &[0]);
        c.cx(0, 1);
        let m = c.measure(1, Basis::Z, 0.0);
        c.detector(&[m]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut sampler = FrameSampler::new(&c);
        let ev = sampler.sample_batch(&mut rng);
        assert_eq!(ev.detectors[0], u64::MAX);
    }

    #[test]
    fn z_error_invisible_to_z_measurement() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(crate::circuit::Noise1::ZError, 1.0, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut sampler = FrameSampler::new(&c);
        let ev = sampler.sample_batch(&mut rng);
        assert_eq!(ev.detectors[0], 0);
    }

    #[test]
    fn hadamard_turns_z_error_into_x() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(crate::circuit::Noise1::ZError, 1.0, &[0]);
        c.g1(Gate1::H, 0);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        // NOTE: noiselessly this detector is random (H|0> measured), but the
        // frame *event* is still well-defined; we only check the event here.
        let mut rng = StdRng::seed_from_u64(0);
        let mut sampler = FrameSampler::new(&c);
        let ev = sampler.sample_batch(&mut rng);
        assert_eq!(ev.detectors[0], u64::MAX);
    }

    #[test]
    fn reset_clears_pending_errors() {
        let mut c = Circuit::new(1);
        c.noise1(crate::circuit::Noise1::XError, 1.0, &[0]);
        c.reset(Basis::Z, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut sampler = FrameSampler::new(&c);
        let ev = sampler.sample_batch(&mut rng);
        assert_eq!(ev.detectors[0], 0);
    }

    #[test]
    fn raw_flip_counter_counts() {
        let c = noisy_rep_circuit(1.0); // every data qubit always flipped
        let mut rng = StdRng::seed_from_u64(0);
        let mut sampler = FrameSampler::new(&c);
        let (shots, counts) = sampler.count_raw_observable_flips(100, &mut rng);
        assert_eq!(shots, 128);
        assert_eq!(counts[0], 128); // d0 always flipped => observable always flips
    }

    #[test]
    fn swap_moves_frames() {
        let mut c = Circuit::new(2);
        c.reset(Basis::Z, &[0, 1]);
        c.noise1(crate::circuit::Noise1::XError, 1.0, &[0]);
        c.g2(crate::circuit::Gate2::Swap, 0, 1);
        let m0 = c.measure(0, Basis::Z, 0.0);
        let m1 = c.measure(1, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut sampler = FrameSampler::new(&c);
        let ev = sampler.sample_batch(&mut rng);
        assert_eq!(ev.detectors[0], 0);
        assert_eq!(ev.detectors[1], u64::MAX);
    }
}
