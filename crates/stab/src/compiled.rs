//! One-time compilation of a [`Circuit`] into a flat sampling program.
//!
//! [`FrameSampler`](crate::FrameSampler) historically re-walked the `Op`
//! enum — with its heap-allocated target lists — on every 64-shot batch.
//! [`CompiledCircuit`] flattens the circuit once into a dense array of
//! `Copy` instructions (one per qubit/pair target, Pauli gates elided,
//! detector/observable definitions pre-resolved into index tables), and
//! all mutable per-batch data lives in a separate, cheap [`FrameState`].
//! A `CompiledCircuit` is therefore shareable by `&` across threads, which
//! is what the parallel LER engine in `caliqec-match` builds on.
//!
//! The compiled program consumes RNG draws in *exactly* the same order as
//! the interpreting sampler, so for a fixed seed both produce identical
//! [`BatchEvents`] — a property the differential tests rely on.

use crate::circuit::{Basis, Circuit, Gate1, Gate2, Noise1, Noise2, Op};
use crate::dem::ErrorSource;
use crate::error::{check_probability, check_qubit_index, CircuitError};
use crate::frame::{bernoulli_mask_with, for_each_set_bit, BatchEvents, BATCH};
use crate::pauli::Pauli;
use crate::rates::RateTable;
use crate::sim::two_qubit_pauli;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One flattened sampling instruction. Pauli gates compile to nothing;
/// `S` and `SDag` act identically on frames and share one opcode.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Instr {
    /// Hadamard: swap X and Z frames.
    H(u32),
    /// S or SDag: Z frame gains the X component.
    SGate(u32),
    /// CNOT (control, target).
    Cx(u32, u32),
    /// CZ (symmetric).
    Cz(u32, u32),
    /// Qubit exchange.
    Swap(u32, u32),
    /// Reset: discard accumulated error.
    Reset(u32),
    /// Measurement with optional classical flip noise. `l1p` caches
    /// `ln(1 - flip)` for the geometric skip sampler (unused when
    /// `flip` is 0 or 1).
    Meas {
        q: u32,
        basis: Basis,
        flip: f64,
        l1p: f64,
    },
    /// X error with probability `p`; `l1p` caches `ln(1 - p)`.
    NoiseX { q: u32, p: f64, l1p: f64 },
    /// Y error with probability `p`; `l1p` caches `ln(1 - p)`.
    NoiseY { q: u32, p: f64, l1p: f64 },
    /// Z error with probability `p`; `l1p` caches `ln(1 - p)`.
    NoiseZ { q: u32, p: f64, l1p: f64 },
    /// Single-qubit depolarizing channel; `l1p` caches `ln(1 - p)`.
    Dep1 { q: u32, p: f64, l1p: f64 },
    /// Two-qubit depolarizing channel; `l1p` caches `ln(1 - p)`.
    Dep2 { a: u32, b: u32, p: f64, l1p: f64 },
}

/// `ln(1 - p)`, precomputed once at compile time so the per-batch geometric
/// skip sampler ([`bernoulli_mask_with`]) never re-derives it on the hot
/// path. The value is only read for `0 < p < 1`.
#[inline]
fn l1p(p: f64) -> f64 {
    (-p).ln_1p()
}

/// The boosted fire rate of one channel: `min(β·p, ½)`, never below the
/// nominal rate (a channel already at or past ½ keeps its nominal rate —
/// down-boosting deterministic or near-deterministic channels would trade
/// rare-event variance for common-event variance).
#[inline]
fn boost_rate(p: f64, beta: f64) -> f64 {
    let b = (beta * p).min(0.5);
    if b > p {
        b
    } else {
        p
    }
}

/// Log-likelihood-ratio terms of one channel boosted from nominal rate `p`
/// to sampled rate `b`: `(delta, keep)` with `keep = ln((1−p)/(1−b))` (the
/// per-shot constant charged whether or not the channel fires) and
/// `delta = ln(p/b) − keep` (the correction added when it does fire). An
/// un-boosted channel contributes exactly zero to both, so β = 1 yields an
/// identically-zero log-weight.
#[inline]
fn llr_terms(p: f64, b: f64) -> (f64, f64) {
    if p == b {
        return (0.0, 0.0);
    }
    let keep = l1p(p) - l1p(b);
    (p.ln() - b.ln() - keep, keep)
}

/// Per-noise-site importance-sampling tables carried by a boosted
/// [`CompiledCircuit`]: one `delta` entry per noise site (every noise
/// instruction and every measurement, in program order) plus the per-shot
/// constant `base = Σ keep` — see [`llr_terms`]. The weighted samplers
/// accumulate `llr[shot] = base + Σ_{fired sites} delta[site]`, the exact
/// log of `P_nominal(shot) / P_boosted(shot)` (conditional Pauli-choice
/// draws are unchanged by boosting, so only fire bits contribute).
#[derive(Clone, Debug)]
struct LlrTables {
    delta: Vec<f64>,
    base: f64,
    beta: f64,
}

/// A [`Circuit`] compiled for repeated batch sampling.
///
/// Immutable after construction and shareable by `&` across threads; pair
/// it with one [`FrameState`] per thread. See the module docs for the
/// determinism contract with the interpreting sampler.
///
/// # Examples
///
/// ```
/// use caliqec_stab::{Basis, Circuit, CompiledCircuit, FrameState, Noise1};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 1.0, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
///
/// let compiled = CompiledCircuit::new(&c);
/// let mut state = FrameState::new(&compiled);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let events = compiled.sample_batch(&mut state, &mut rng);
/// assert_eq!(events.detectors[0], u64::MAX);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    num_qubits: usize,
    num_measurements: usize,
    num_detectors: usize,
    num_observables: usize,
    instrs: Vec<Instr>,
    /// CSR offsets into `det_meas`, one entry per detector plus a sentinel.
    det_offsets: Vec<u32>,
    /// Measurement-record indices XORed into each detector.
    det_meas: Vec<u32>,
    /// CSR offsets into `obs_meas`, one entry per observable plus a sentinel.
    obs_offsets: Vec<u32>,
    /// Measurement-record indices XORed into each observable (contributions
    /// from multiple `Observable` ops with the same index are concatenated).
    obs_meas: Vec<u32>,
    /// Importance-sampling tables, present only on programs produced by
    /// [`CompiledCircuit::boosted`] / [`CompiledCircuit::boosted_with_rates`].
    llr: Option<LlrTables>,
}

impl CompiledCircuit {
    /// Compiles `circuit`.
    pub fn new(circuit: &Circuit) -> CompiledCircuit {
        let mut instrs = Vec::new();
        let mut det_offsets = vec![0u32];
        let mut det_meas = Vec::new();
        let mut obs_lists: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_observables()];
        for op in circuit.ops() {
            match op {
                Op::G1(g, qs) => {
                    for &q in qs {
                        match g {
                            // Paulis commute or anticommute with the frame;
                            // signs are irrelevant to error propagation.
                            Gate1::X | Gate1::Y | Gate1::Z => {}
                            Gate1::H => instrs.push(Instr::H(q)),
                            Gate1::S | Gate1::SDag => instrs.push(Instr::SGate(q)),
                        }
                    }
                }
                Op::G2(g, pairs) => {
                    for &(a, b) in pairs {
                        instrs.push(match g {
                            Gate2::Cx => Instr::Cx(a, b),
                            Gate2::Cz => Instr::Cz(a, b),
                            Gate2::Swap => Instr::Swap(a, b),
                        });
                    }
                }
                Op::Measure { basis, qubit, flip } => {
                    instrs.push(Instr::Meas {
                        q: *qubit,
                        basis: *basis,
                        flip: *flip,
                        l1p: l1p(*flip),
                    });
                }
                Op::Reset(_, qs) => {
                    for &q in qs {
                        instrs.push(Instr::Reset(q));
                    }
                }
                Op::Noise1(kind, p, qs) => {
                    for &q in qs {
                        instrs.push(match kind {
                            Noise1::XError => Instr::NoiseX {
                                q,
                                p: *p,
                                l1p: l1p(*p),
                            },
                            Noise1::YError => Instr::NoiseY {
                                q,
                                p: *p,
                                l1p: l1p(*p),
                            },
                            Noise1::ZError => Instr::NoiseZ {
                                q,
                                p: *p,
                                l1p: l1p(*p),
                            },
                            Noise1::Depolarize1 => Instr::Dep1 {
                                q,
                                p: *p,
                                l1p: l1p(*p),
                            },
                        });
                    }
                }
                Op::Noise2(kind, p, pairs) => {
                    for &(a, b) in pairs {
                        instrs.push(match kind {
                            Noise2::Depolarize2 => Instr::Dep2 {
                                a,
                                b,
                                p: *p,
                                l1p: l1p(*p),
                            },
                        });
                    }
                }
                Op::Detector(meas) => {
                    det_meas.extend(meas.iter().map(|m| m.0));
                    det_offsets.push(det_meas.len() as u32);
                }
                Op::Observable(i, meas) => {
                    obs_lists[*i].extend(meas.iter().map(|m| m.0));
                }
            }
        }
        let mut obs_offsets = vec![0u32];
        let mut obs_meas = Vec::new();
        for list in &obs_lists {
            obs_meas.extend_from_slice(list);
            obs_offsets.push(obs_meas.len() as u32);
        }
        CompiledCircuit {
            num_qubits: circuit.num_qubits(),
            num_measurements: circuit.num_measurements(),
            num_detectors: circuit.num_detectors(),
            num_observables: circuit.num_observables(),
            instrs,
            det_offsets,
            det_meas,
            obs_offsets,
            obs_meas,
            llr: None,
        }
    }

    /// Recompiles this program with every noise channel's fire rate boosted
    /// to `min(β · p, ½)` (never below nominal — see module notes on
    /// down-boosting), carrying the per-channel log-likelihood-ratio tables
    /// the weighted samplers need to weight each shot back to the nominal
    /// rates. β = 1 leaves every rate untouched and every ratio term
    /// exactly zero, so the boosted program samples bit-identically to the
    /// original with log-weight ≡ 0.
    ///
    /// Panics unless `beta` is finite and ≥ 1.
    pub fn boosted(&self, beta: f64) -> CompiledCircuit {
        self.boosted_with_rates(beta, &RateTable::identity())
    }

    /// [`CompiledCircuit::boosted`] with calibration-epoch composition: each
    /// noise site's *nominal* rate is looked up in `rates` by its
    /// [`ErrorSource`] (falling back to the compiled rate when absent), then
    /// boosted. The recorded likelihood ratios weight shots back to the
    /// table's rates, so importance sampling composes with per-epoch
    /// reweighting: an identity table reduces to [`CompiledCircuit::boosted`].
    pub fn boosted_with_rates(&self, beta: f64, rates: &RateTable) -> CompiledCircuit {
        assert!(
            beta.is_finite() && beta >= 1.0,
            "boost beta must be finite and >= 1, got {beta}"
        );
        let mut out = self.clone();
        let mut delta = Vec::new();
        let mut base = 0.0f64;
        for instr in &mut out.instrs {
            // One (nominal rate, mutable compiled rate, mutable ln(1-p))
            // triple per noise site, in the exact program order the
            // samplers walk — the `delta` table is indexed by that order.
            let site = match instr {
                Instr::Meas {
                    q, flip, l1p: lp, ..
                } => {
                    let nominal = rates.get(&ErrorSource::MeasureFlip(*q)).unwrap_or(*flip);
                    Some((nominal, flip, lp))
                }
                Instr::NoiseX { q, p, l1p: lp } => {
                    let nominal = rates
                        .get(&ErrorSource::Noise1(Noise1::XError, *q))
                        .unwrap_or(*p);
                    Some((nominal, p, lp))
                }
                Instr::NoiseY { q, p, l1p: lp } => {
                    let nominal = rates
                        .get(&ErrorSource::Noise1(Noise1::YError, *q))
                        .unwrap_or(*p);
                    Some((nominal, p, lp))
                }
                Instr::NoiseZ { q, p, l1p: lp } => {
                    let nominal = rates
                        .get(&ErrorSource::Noise1(Noise1::ZError, *q))
                        .unwrap_or(*p);
                    Some((nominal, p, lp))
                }
                Instr::Dep1 { q, p, l1p: lp } => {
                    let nominal = rates
                        .get(&ErrorSource::Noise1(Noise1::Depolarize1, *q))
                        .unwrap_or(*p);
                    Some((nominal, p, lp))
                }
                Instr::Dep2 { a, b, p, l1p: lp } => {
                    let nominal = rates
                        .get(&ErrorSource::Noise2(Noise2::Depolarize2, *a, *b))
                        .unwrap_or(*p);
                    Some((nominal, p, lp))
                }
                _ => None,
            };
            if let Some((nominal, rate, lp)) = site {
                let boosted = boost_rate(nominal, beta);
                let (d, keep) = llr_terms(nominal, boosted);
                delta.push(d);
                base += keep;
                *rate = boosted;
                *lp = l1p(boosted);
            }
        }
        out.llr = Some(LlrTables { delta, base, beta });
        out
    }

    /// The boost factor this program was compiled with (1.0 for plain,
    /// un-boosted programs).
    pub fn boost_beta(&self) -> f64 {
        self.llr.as_ref().map_or(1.0, |t| t.beta)
    }

    /// Whether this program carries importance-sampling tables (i.e. came
    /// from [`CompiledCircuit::boosted`]) and supports the weighted
    /// samplers.
    pub fn is_boosted(&self) -> bool {
        self.llr.is_some()
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of measurement records per shot.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Number of detectors.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Re-checks every invariant [`Self::sample_batch_into`] relies on
    /// (instruction qubit bounds, finite probabilities in `[0, 1]`,
    /// measurement count, monotone in-range detector/observable tables),
    /// returning the first defect as a typed [`CircuitError`].
    ///
    /// [`CompiledCircuit::new`] only produces valid programs from valid
    /// circuits, but the LER engine validates before launching workers so a
    /// malformed circuit (e.g. from [`Circuit::from_ops`]) surfaces as one
    /// typed error instead of a panic inside a worker thread.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.num_observables > 64 {
            return Err(CircuitError::TooManyObservables {
                num_observables: self.num_observables,
            });
        }
        let mut meas_count = 0usize;
        for instr in &self.instrs {
            match *instr {
                Instr::H(q) | Instr::SGate(q) | Instr::Reset(q) => {
                    check_qubit_index(q, self.num_qubits)?;
                }
                Instr::Cx(a, b) | Instr::Cz(a, b) | Instr::Swap(a, b) => {
                    check_qubit_index(a, self.num_qubits)?;
                    check_qubit_index(b, self.num_qubits)?;
                    if a == b {
                        return Err(CircuitError::DuplicatePairTarget { qubit: a });
                    }
                }
                Instr::Meas { q, flip, .. } => {
                    check_qubit_index(q, self.num_qubits)?;
                    check_probability(flip)?;
                    meas_count += 1;
                }
                Instr::NoiseX { q, p, .. }
                | Instr::NoiseY { q, p, .. }
                | Instr::NoiseZ { q, p, .. }
                | Instr::Dep1 { q, p, .. } => {
                    check_qubit_index(q, self.num_qubits)?;
                    check_probability(p)?;
                }
                Instr::Dep2 { a, b, p, .. } => {
                    check_qubit_index(a, self.num_qubits)?;
                    check_qubit_index(b, self.num_qubits)?;
                    if a == b {
                        return Err(CircuitError::DuplicatePairTarget { qubit: a });
                    }
                    check_probability(p)?;
                }
            }
        }
        if meas_count != self.num_measurements {
            return Err(CircuitError::TableInconsistent {
                detail: format!(
                    "program records {} measurements but instrs contain {meas_count}",
                    self.num_measurements
                ),
            });
        }
        Self::validate_csr(
            "detector",
            &self.det_offsets,
            &self.det_meas,
            self.num_detectors,
            self.num_measurements,
        )?;
        Self::validate_csr(
            "observable",
            &self.obs_offsets,
            &self.obs_meas,
            self.num_observables,
            self.num_measurements,
        )?;
        Ok(())
    }

    /// Checks one CSR table: `rows + 1` monotone offsets ending at the entry
    /// count, every entry a valid measurement record.
    fn validate_csr(
        table: &str,
        offsets: &[u32],
        entries: &[u32],
        rows: usize,
        num_measurements: usize,
    ) -> Result<(), CircuitError> {
        if offsets.len() != rows + 1
            || offsets.first() != Some(&0)
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last().copied().unwrap_or(0) as usize != entries.len()
        {
            return Err(CircuitError::TableInconsistent {
                detail: format!(
                    "{table} offsets malformed ({rows} rows, {} entries)",
                    entries.len()
                ),
            });
        }
        for &m in entries {
            if m as usize >= num_measurements {
                return Err(CircuitError::RecordOutOfRange {
                    record: m,
                    num_measurements,
                });
            }
        }
        Ok(())
    }

    /// Samples one batch of [`BATCH`] shots into `events`, reusing its
    /// buffers. `state` carries the per-thread scratch.
    pub fn sample_batch_into<R: Rng>(
        &self,
        state: &mut FrameState,
        rng: &mut R,
        events: &mut BatchEvents,
    ) {
        debug_assert_eq!(state.x.len(), self.num_qubits, "state/circuit mismatch");
        state.x.fill(0);
        state.z.fill(0);
        state.meas.fill(0);
        let x = &mut state.x[..];
        let z = &mut state.z[..];
        let meas = &mut state.meas[..];
        let mut meas_cursor = 0usize;
        for instr in &self.instrs {
            match *instr {
                Instr::H(q) => {
                    let q = q as usize;
                    std::mem::swap(&mut x[q], &mut z[q]);
                }
                Instr::SGate(q) => {
                    let q = q as usize;
                    z[q] ^= x[q];
                }
                Instr::Cx(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    x[b] ^= x[a];
                    z[a] ^= z[b];
                }
                Instr::Cz(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    let (xa, xb) = (x[a], x[b]);
                    z[a] ^= xb;
                    z[b] ^= xa;
                }
                Instr::Swap(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    x.swap(a, b);
                    z.swap(a, b);
                }
                Instr::Reset(q) => {
                    let q = q as usize;
                    x[q] = 0;
                    z[q] = 0;
                }
                Instr::Meas {
                    q,
                    basis,
                    flip,
                    l1p,
                } => {
                    let q = q as usize;
                    let mut flips = match basis {
                        Basis::Z => x[q],
                        Basis::X => z[q],
                    };
                    if flip > 0.0 {
                        flips ^= bernoulli_mask_with(flip, l1p, rng);
                    }
                    meas[meas_cursor] = flips;
                    meas_cursor += 1;
                    // Collapse decorrelates the conjugate frame component:
                    // re-randomize it so later anticommutation is harmless.
                    match basis {
                        Basis::Z => z[q] = rng.random::<u64>(),
                        Basis::X => x[q] = rng.random::<u64>(),
                    }
                }
                Instr::NoiseX { q, p, l1p } => {
                    x[q as usize] ^= bernoulli_mask_with(p, l1p, rng);
                }
                Instr::NoiseY { q, p, l1p } => {
                    let hits = bernoulli_mask_with(p, l1p, rng);
                    x[q as usize] ^= hits;
                    z[q as usize] ^= hits;
                }
                Instr::NoiseZ { q, p, l1p } => {
                    z[q as usize] ^= bernoulli_mask_with(p, l1p, rng);
                }
                Instr::Dep1 { q, p, l1p } => {
                    let q = q as usize;
                    for_each_set_bit(bernoulli_mask_with(p, l1p, rng), |s| {
                        let bit = 1u64 << s;
                        match Pauli::NON_IDENTITY[rng.random_range(0..3)] {
                            Pauli::X => x[q] ^= bit,
                            Pauli::Z => z[q] ^= bit,
                            Pauli::Y => {
                                x[q] ^= bit;
                                z[q] ^= bit;
                            }
                            Pauli::I => unreachable!(),
                        }
                    });
                }
                Instr::Dep2 { a, b, p, l1p } => {
                    let (a, b) = (a as usize, b as usize);
                    for_each_set_bit(bernoulli_mask_with(p, l1p, rng), |s| {
                        let bit = 1u64 << s;
                        let (pa, pb) = two_qubit_pauli(rng.random_range(0..15));
                        for (q, pq) in [(a, pa), (b, pb)] {
                            if pq.has_x() {
                                x[q] ^= bit;
                            }
                            if pq.has_z() {
                                z[q] ^= bit;
                            }
                        }
                    });
                }
            }
        }
        // Detector/observable tables are resolved after the sweep: the
        // measurement words are final by then, and the table evaluation
        // consumes no RNG draws, preserving draw-order compatibility with
        // the interpreting sampler.
        events.detectors.clear();
        events
            .detectors
            .extend(self.det_offsets.windows(2).map(|w| {
                self.det_meas[w[0] as usize..w[1] as usize]
                    .iter()
                    .fold(0u64, |acc, &m| acc ^ meas[m as usize])
            }));
        events.observables.clear();
        events
            .observables
            .extend(self.obs_offsets.windows(2).map(|w| {
                self.obs_meas[w[0] as usize..w[1] as usize]
                    .iter()
                    .fold(0u64, |acc, &m| acc ^ meas[m as usize])
            }));
    }

    /// Samples one batch of [`BATCH`] shots, allocating fresh events.
    pub fn sample_batch<R: Rng>(&self, state: &mut FrameState, rng: &mut R) -> BatchEvents {
        let mut events = BatchEvents::default();
        self.sample_batch_into(state, rng, &mut events);
        events
    }

    /// [`Self::sample_batch_into`] on a boosted program, additionally
    /// filling `llr[s]` with shot `s`'s log-likelihood ratio against the
    /// nominal rates (`exp(llr[s])` is the shot's importance weight). RNG
    /// draws happen in exactly the same order as the unweighted path — the
    /// ratio accumulation consumes none — so a β = 1 boosted program
    /// produces bit-identical events with `llr ≡ 0`.
    ///
    /// Panics if the program carries no tables (see
    /// [`CompiledCircuit::boosted`]).
    pub fn sample_batch_weighted_into<R: Rng>(
        &self,
        state: &mut FrameState,
        rng: &mut R,
        events: &mut BatchEvents,
        llr: &mut [f64; BATCH],
    ) {
        let tables = self
            .llr
            .as_ref()
            .expect("weighted sampling needs a boosted program (CompiledCircuit::boosted)");
        debug_assert_eq!(state.x.len(), self.num_qubits, "state/circuit mismatch");
        state.x.fill(0);
        state.z.fill(0);
        state.meas.fill(0);
        let x = &mut state.x[..];
        let z = &mut state.z[..];
        let meas = &mut state.meas[..];
        let mut meas_cursor = 0usize;
        llr.fill(tables.base);
        let mut site = 0usize;
        for instr in &self.instrs {
            match *instr {
                Instr::H(q) => {
                    let q = q as usize;
                    std::mem::swap(&mut x[q], &mut z[q]);
                }
                Instr::SGate(q) => {
                    let q = q as usize;
                    z[q] ^= x[q];
                }
                Instr::Cx(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    x[b] ^= x[a];
                    z[a] ^= z[b];
                }
                Instr::Cz(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    let (xa, xb) = (x[a], x[b]);
                    z[a] ^= xb;
                    z[b] ^= xa;
                }
                Instr::Swap(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    x.swap(a, b);
                    z.swap(a, b);
                }
                Instr::Reset(q) => {
                    let q = q as usize;
                    x[q] = 0;
                    z[q] = 0;
                }
                Instr::Meas {
                    q,
                    basis,
                    flip,
                    l1p,
                } => {
                    let q = q as usize;
                    let mut flips = match basis {
                        Basis::Z => x[q],
                        Basis::X => z[q],
                    };
                    let mut fired = 0u64;
                    if flip > 0.0 {
                        fired = bernoulli_mask_with(flip, l1p, rng);
                        flips ^= fired;
                    }
                    let d = tables.delta[site];
                    site += 1;
                    if d != 0.0 {
                        for_each_set_bit(fired, |s| llr[s as usize] += d);
                    }
                    meas[meas_cursor] = flips;
                    meas_cursor += 1;
                    // Collapse decorrelates the conjugate frame component:
                    // re-randomize it so later anticommutation is harmless.
                    match basis {
                        Basis::Z => z[q] = rng.random::<u64>(),
                        Basis::X => x[q] = rng.random::<u64>(),
                    }
                }
                Instr::NoiseX { q, p, l1p } => {
                    let fired = bernoulli_mask_with(p, l1p, rng);
                    x[q as usize] ^= fired;
                    let d = tables.delta[site];
                    site += 1;
                    if d != 0.0 {
                        for_each_set_bit(fired, |s| llr[s as usize] += d);
                    }
                }
                Instr::NoiseY { q, p, l1p } => {
                    let fired = bernoulli_mask_with(p, l1p, rng);
                    x[q as usize] ^= fired;
                    z[q as usize] ^= fired;
                    let d = tables.delta[site];
                    site += 1;
                    if d != 0.0 {
                        for_each_set_bit(fired, |s| llr[s as usize] += d);
                    }
                }
                Instr::NoiseZ { q, p, l1p } => {
                    let fired = bernoulli_mask_with(p, l1p, rng);
                    z[q as usize] ^= fired;
                    let d = tables.delta[site];
                    site += 1;
                    if d != 0.0 {
                        for_each_set_bit(fired, |s| llr[s as usize] += d);
                    }
                }
                Instr::Dep1 { q, p, l1p } => {
                    let q = q as usize;
                    let fired = bernoulli_mask_with(p, l1p, rng);
                    // The Pauli-choice draws are conditionally uniform and
                    // unchanged by boosting, so only the fire bits weigh in.
                    for_each_set_bit(fired, |s| {
                        let bit = 1u64 << s;
                        match Pauli::NON_IDENTITY[rng.random_range(0..3)] {
                            Pauli::X => x[q] ^= bit,
                            Pauli::Z => z[q] ^= bit,
                            Pauli::Y => {
                                x[q] ^= bit;
                                z[q] ^= bit;
                            }
                            Pauli::I => unreachable!(),
                        }
                    });
                    let d = tables.delta[site];
                    site += 1;
                    if d != 0.0 {
                        for_each_set_bit(fired, |s| llr[s as usize] += d);
                    }
                }
                Instr::Dep2 { a, b, p, l1p } => {
                    let (a, b) = (a as usize, b as usize);
                    let fired = bernoulli_mask_with(p, l1p, rng);
                    for_each_set_bit(fired, |s| {
                        let bit = 1u64 << s;
                        let (pa, pb) = two_qubit_pauli(rng.random_range(0..15));
                        for (q, pq) in [(a, pa), (b, pb)] {
                            if pq.has_x() {
                                x[q] ^= bit;
                            }
                            if pq.has_z() {
                                z[q] ^= bit;
                            }
                        }
                    });
                    let d = tables.delta[site];
                    site += 1;
                    if d != 0.0 {
                        for_each_set_bit(fired, |s| llr[s as usize] += d);
                    }
                }
            }
        }
        debug_assert_eq!(site, tables.delta.len(), "noise-site walk out of sync");
        // Detector/observable tables are resolved after the sweep, exactly
        // like the unweighted path (no RNG draws).
        events.detectors.clear();
        events
            .detectors
            .extend(self.det_offsets.windows(2).map(|w| {
                self.det_meas[w[0] as usize..w[1] as usize]
                    .iter()
                    .fold(0u64, |acc, &m| acc ^ meas[m as usize])
            }));
        events.observables.clear();
        events
            .observables
            .extend(self.obs_offsets.windows(2).map(|w| {
                self.obs_meas[w[0] as usize..w[1] as usize]
                    .iter()
                    .fold(0u64, |acc, &m| acc ^ meas[m as usize])
            }));
    }

    /// Samples [`LANES`] independent [`BATCH`]-shot batches in lockstep —
    /// the word-level wide path behind the LER engine's dense configs.
    ///
    /// Lane `l` consumes draws from `rngs[l]` in exactly the order
    /// [`Self::sample_batch_into`] would, so `events[l]` is **bit-identical**
    /// to a narrow call with that RNG: widening is purely an execution
    /// strategy, never a statistics change. What the lockstep buys is
    /// amortisation — one instruction-stream walk (decode, bounds checks,
    /// branch prediction) drives `LANES × 64` shots, and the per-qubit
    /// frame updates become fixed-size `[u64; LANES]` loops the compiler
    /// turns into vector ops. Noise sites remain per-lane serial (each
    /// lane's geometric skip depends on its own RNG stream), so the win
    /// concentrates where dense-circuit sampling spends its time: the gate
    /// conjugation sweep.
    pub fn sample_batches_wide_into<R: Rng>(
        &self,
        state: &mut WideFrameState,
        rngs: &mut [R; LANES],
        events: &mut [BatchEvents; LANES],
    ) {
        debug_assert_eq!(state.x.len(), self.num_qubits, "state/circuit mismatch");
        state.x.fill([0; LANES]);
        state.z.fill([0; LANES]);
        state.meas.fill([0; LANES]);
        let x = &mut state.x[..];
        let z = &mut state.z[..];
        let meas = &mut state.meas[..];
        let mut meas_cursor = 0usize;
        for instr in &self.instrs {
            match *instr {
                Instr::H(q) => {
                    let q = q as usize;
                    std::mem::swap(&mut x[q], &mut z[q]);
                }
                Instr::SGate(q) => {
                    let q = q as usize;
                    for l in 0..LANES {
                        z[q][l] ^= x[q][l];
                    }
                }
                Instr::Cx(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    let (xa, zb) = (x[a], z[b]);
                    for (xb, s) in x[b].iter_mut().zip(xa) {
                        *xb ^= s;
                    }
                    for (za, s) in z[a].iter_mut().zip(zb) {
                        *za ^= s;
                    }
                }
                Instr::Cz(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    let (xa, xb) = (x[a], x[b]);
                    for l in 0..LANES {
                        z[a][l] ^= xb[l];
                    }
                    for l in 0..LANES {
                        z[b][l] ^= xa[l];
                    }
                }
                Instr::Swap(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    x.swap(a, b);
                    z.swap(a, b);
                }
                Instr::Reset(q) => {
                    let q = q as usize;
                    x[q] = [0; LANES];
                    z[q] = [0; LANES];
                }
                Instr::Meas {
                    q,
                    basis,
                    flip,
                    l1p,
                } => {
                    let q = q as usize;
                    let mut flips = match basis {
                        Basis::Z => x[q],
                        Basis::X => z[q],
                    };
                    if flip > 0.0 {
                        for (l, rng) in rngs.iter_mut().enumerate() {
                            flips[l] ^= bernoulli_mask_with(flip, l1p, rng);
                        }
                    }
                    meas[meas_cursor] = flips;
                    meas_cursor += 1;
                    // Collapse decorrelates the conjugate frame component:
                    // re-randomize it so later anticommutation is harmless.
                    let conj = match basis {
                        Basis::Z => &mut z[q],
                        Basis::X => &mut x[q],
                    };
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        conj[l] = rng.random::<u64>();
                    }
                }
                Instr::NoiseX { q, p, l1p } => {
                    let q = q as usize;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        x[q][l] ^= bernoulli_mask_with(p, l1p, rng);
                    }
                }
                Instr::NoiseY { q, p, l1p } => {
                    let q = q as usize;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        let hits = bernoulli_mask_with(p, l1p, rng);
                        x[q][l] ^= hits;
                        z[q][l] ^= hits;
                    }
                }
                Instr::NoiseZ { q, p, l1p } => {
                    let q = q as usize;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        z[q][l] ^= bernoulli_mask_with(p, l1p, rng);
                    }
                }
                Instr::Dep1 { q, p, l1p } => {
                    let q = q as usize;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        let hits = bernoulli_mask_with(p, l1p, rng);
                        if hits == 0 {
                            continue;
                        }
                        for_each_set_bit(hits, |s| {
                            let bit = 1u64 << s;
                            match Pauli::NON_IDENTITY[rng.random_range(0..3)] {
                                Pauli::X => x[q][l] ^= bit,
                                Pauli::Z => z[q][l] ^= bit,
                                Pauli::Y => {
                                    x[q][l] ^= bit;
                                    z[q][l] ^= bit;
                                }
                                Pauli::I => unreachable!(),
                            }
                        });
                    }
                }
                Instr::Dep2 { a, b, p, l1p } => {
                    let (a, b) = (a as usize, b as usize);
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        let hits = bernoulli_mask_with(p, l1p, rng);
                        if hits == 0 {
                            continue;
                        }
                        for_each_set_bit(hits, |s| {
                            let bit = 1u64 << s;
                            let (pa, pb) = two_qubit_pauli(rng.random_range(0..15));
                            for (q, pq) in [(a, pa), (b, pb)] {
                                if pq.has_x() {
                                    x[q][l] ^= bit;
                                }
                                if pq.has_z() {
                                    z[q][l] ^= bit;
                                }
                            }
                        });
                    }
                }
            }
        }
        // Resolve the detector/observable tables once, fanning each word
        // out to its lane's events (the narrow path's contract: tables
        // consume no RNG draws).
        for ev in events.iter_mut() {
            ev.detectors.clear();
            ev.observables.clear();
        }
        for w in self.det_offsets.windows(2) {
            let acc = self.det_meas[w[0] as usize..w[1] as usize].iter().fold(
                [0u64; LANES],
                |mut acc, &m| {
                    let row = &meas[m as usize];
                    for l in 0..LANES {
                        acc[l] ^= row[l];
                    }
                    acc
                },
            );
            for (l, ev) in events.iter_mut().enumerate() {
                ev.detectors.push(acc[l]);
            }
        }
        for w in self.obs_offsets.windows(2) {
            let acc = self.obs_meas[w[0] as usize..w[1] as usize].iter().fold(
                [0u64; LANES],
                |mut acc, &m| {
                    let row = &meas[m as usize];
                    for l in 0..LANES {
                        acc[l] ^= row[l];
                    }
                    acc
                },
            );
            for (l, ev) in events.iter_mut().enumerate() {
                ev.observables.push(acc[l]);
            }
        }
    }

    /// [`Self::sample_batches_wide_into`] on a boosted program, filling
    /// `llr[l][s]` with the log-likelihood ratio of lane `l`'s shot `s`.
    /// Lane `l` is bit-identical to a narrow
    /// [`Self::sample_batch_weighted_into`] replay with `rngs[l]`, events
    /// and ratios both — the lockstep walk shares one delta-table cursor
    /// across lanes, advancing it once per noise site.
    ///
    /// Panics if the program carries no tables (see
    /// [`CompiledCircuit::boosted`]).
    pub fn sample_batches_wide_weighted_into<R: Rng>(
        &self,
        state: &mut WideFrameState,
        rngs: &mut [R; LANES],
        events: &mut [BatchEvents; LANES],
        llr: &mut [[f64; BATCH]; LANES],
    ) {
        let tables = self
            .llr
            .as_ref()
            .expect("weighted sampling needs a boosted program (CompiledCircuit::boosted)");
        debug_assert_eq!(state.x.len(), self.num_qubits, "state/circuit mismatch");
        state.x.fill([0; LANES]);
        state.z.fill([0; LANES]);
        state.meas.fill([0; LANES]);
        let x = &mut state.x[..];
        let z = &mut state.z[..];
        let meas = &mut state.meas[..];
        let mut meas_cursor = 0usize;
        for lane in llr.iter_mut() {
            lane.fill(tables.base);
        }
        let mut site = 0usize;
        for instr in &self.instrs {
            match *instr {
                Instr::H(q) => {
                    let q = q as usize;
                    std::mem::swap(&mut x[q], &mut z[q]);
                }
                Instr::SGate(q) => {
                    let q = q as usize;
                    for l in 0..LANES {
                        z[q][l] ^= x[q][l];
                    }
                }
                Instr::Cx(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    let (xa, zb) = (x[a], z[b]);
                    for (xb, s) in x[b].iter_mut().zip(xa) {
                        *xb ^= s;
                    }
                    for (za, s) in z[a].iter_mut().zip(zb) {
                        *za ^= s;
                    }
                }
                Instr::Cz(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    let (xa, xb) = (x[a], x[b]);
                    for l in 0..LANES {
                        z[a][l] ^= xb[l];
                    }
                    for l in 0..LANES {
                        z[b][l] ^= xa[l];
                    }
                }
                Instr::Swap(a, b) => {
                    let (a, b) = (a as usize, b as usize);
                    x.swap(a, b);
                    z.swap(a, b);
                }
                Instr::Reset(q) => {
                    let q = q as usize;
                    x[q] = [0; LANES];
                    z[q] = [0; LANES];
                }
                Instr::Meas {
                    q,
                    basis,
                    flip,
                    l1p,
                } => {
                    let q = q as usize;
                    let mut flips = match basis {
                        Basis::Z => x[q],
                        Basis::X => z[q],
                    };
                    let mut fired = [0u64; LANES];
                    if flip > 0.0 {
                        for (l, rng) in rngs.iter_mut().enumerate() {
                            fired[l] = bernoulli_mask_with(flip, l1p, rng);
                            flips[l] ^= fired[l];
                        }
                    }
                    let d = tables.delta[site];
                    site += 1;
                    if d != 0.0 {
                        for (l, lane) in llr.iter_mut().enumerate() {
                            for_each_set_bit(fired[l], |s| lane[s as usize] += d);
                        }
                    }
                    meas[meas_cursor] = flips;
                    meas_cursor += 1;
                    // Collapse decorrelates the conjugate frame component:
                    // re-randomize it so later anticommutation is harmless.
                    let conj = match basis {
                        Basis::Z => &mut z[q],
                        Basis::X => &mut x[q],
                    };
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        conj[l] = rng.random::<u64>();
                    }
                }
                Instr::NoiseX { q, p, l1p } => {
                    let q = q as usize;
                    let d = tables.delta[site];
                    site += 1;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        let fired = bernoulli_mask_with(p, l1p, rng);
                        x[q][l] ^= fired;
                        if d != 0.0 {
                            for_each_set_bit(fired, |s| llr[l][s as usize] += d);
                        }
                    }
                }
                Instr::NoiseY { q, p, l1p } => {
                    let q = q as usize;
                    let d = tables.delta[site];
                    site += 1;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        let fired = bernoulli_mask_with(p, l1p, rng);
                        x[q][l] ^= fired;
                        z[q][l] ^= fired;
                        if d != 0.0 {
                            for_each_set_bit(fired, |s| llr[l][s as usize] += d);
                        }
                    }
                }
                Instr::NoiseZ { q, p, l1p } => {
                    let q = q as usize;
                    let d = tables.delta[site];
                    site += 1;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        let fired = bernoulli_mask_with(p, l1p, rng);
                        z[q][l] ^= fired;
                        if d != 0.0 {
                            for_each_set_bit(fired, |s| llr[l][s as usize] += d);
                        }
                    }
                }
                Instr::Dep1 { q, p, l1p } => {
                    let q = q as usize;
                    let d = tables.delta[site];
                    site += 1;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        let fired = bernoulli_mask_with(p, l1p, rng);
                        if fired == 0 {
                            continue;
                        }
                        for_each_set_bit(fired, |s| {
                            let bit = 1u64 << s;
                            match Pauli::NON_IDENTITY[rng.random_range(0..3)] {
                                Pauli::X => x[q][l] ^= bit,
                                Pauli::Z => z[q][l] ^= bit,
                                Pauli::Y => {
                                    x[q][l] ^= bit;
                                    z[q][l] ^= bit;
                                }
                                Pauli::I => unreachable!(),
                            }
                        });
                        if d != 0.0 {
                            for_each_set_bit(fired, |s| llr[l][s as usize] += d);
                        }
                    }
                }
                Instr::Dep2 { a, b, p, l1p } => {
                    let (a, b) = (a as usize, b as usize);
                    let d = tables.delta[site];
                    site += 1;
                    for (l, rng) in rngs.iter_mut().enumerate() {
                        let fired = bernoulli_mask_with(p, l1p, rng);
                        if fired == 0 {
                            continue;
                        }
                        for_each_set_bit(fired, |s| {
                            let bit = 1u64 << s;
                            let (pa, pb) = two_qubit_pauli(rng.random_range(0..15));
                            for (q, pq) in [(a, pa), (b, pb)] {
                                if pq.has_x() {
                                    x[q][l] ^= bit;
                                }
                                if pq.has_z() {
                                    z[q][l] ^= bit;
                                }
                            }
                        });
                        if d != 0.0 {
                            for_each_set_bit(fired, |s| llr[l][s as usize] += d);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(site, tables.delta.len(), "noise-site walk out of sync");
        // Resolve the detector/observable tables once, fanning each word
        // out to its lane's events (no RNG draws, like the narrow path).
        for ev in events.iter_mut() {
            ev.detectors.clear();
            ev.observables.clear();
        }
        for w in self.det_offsets.windows(2) {
            let acc = self.det_meas[w[0] as usize..w[1] as usize].iter().fold(
                [0u64; LANES],
                |mut acc, &m| {
                    let row = &meas[m as usize];
                    for l in 0..LANES {
                        acc[l] ^= row[l];
                    }
                    acc
                },
            );
            for (l, ev) in events.iter_mut().enumerate() {
                ev.detectors.push(acc[l]);
            }
        }
        for w in self.obs_offsets.windows(2) {
            let acc = self.obs_meas[w[0] as usize..w[1] as usize].iter().fold(
                [0u64; LANES],
                |mut acc, &m| {
                    let row = &meas[m as usize];
                    for l in 0..LANES {
                        acc[l] ^= row[l];
                    }
                    acc
                },
            );
            for (l, ev) in events.iter_mut().enumerate() {
                ev.observables.push(acc[l]);
            }
        }
    }

    /// Counts raw (undecoded) observable flips over at least `min_shots`
    /// shots on `threads` worker threads (0 = auto, see
    /// [`resolve_threads`]).
    ///
    /// Each 64-shot batch gets its own RNG stream derived from
    /// `(base_seed, batch index)`, and the per-observable sums are
    /// order-independent, so the result is identical at any thread count.
    pub fn count_raw_observable_flips(
        &self,
        min_shots: usize,
        base_seed: u64,
        threads: usize,
    ) -> (usize, Vec<usize>) {
        self.count_flips_parallel(self.num_observables, min_shots, base_seed, threads, |ev| {
            &ev.observables
        })
    }

    /// Counts raw detector flips (one count per detector) over at least
    /// `min_shots` shots on `threads` worker threads (0 = auto).
    ///
    /// Same seeding and determinism contract as
    /// [`Self::count_raw_observable_flips`]; this is what crosstalk probes
    /// use — their "deviation" signal is one detector per probed qubit.
    pub fn count_detector_flips(
        &self,
        min_shots: usize,
        base_seed: u64,
        threads: usize,
    ) -> (usize, Vec<usize>) {
        self.count_flips_parallel(self.num_detectors, min_shots, base_seed, threads, |ev| {
            &ev.detectors
        })
    }

    /// Shared parallel popcount loop over a selected event word list.
    fn count_flips_parallel<F: Fn(&BatchEvents) -> &[u64] + Sync>(
        &self,
        width: usize,
        min_shots: usize,
        base_seed: u64,
        threads: usize,
        select: F,
    ) -> (usize, Vec<usize>) {
        let batches = min_shots.div_ceil(BATCH).max(1);
        let threads = resolve_threads(threads).min(batches);
        let next = AtomicUsize::new(0);
        let mut per_thread = vec![vec![0usize; width]; threads];
        std::thread::scope(|scope| {
            for counts in &mut per_thread {
                scope.spawn(|| {
                    let mut state = FrameState::new(self);
                    let mut events = BatchEvents::default();
                    loop {
                        let batch = next.fetch_add(1, Ordering::Relaxed);
                        if batch >= batches {
                            break;
                        }
                        let mut rng = StdRng::seed_from_u64(chunk_seed(base_seed, batch as u64));
                        self.sample_batch_into(&mut state, &mut rng, &mut events);
                        for (c, w) in counts.iter_mut().zip(select(&events)) {
                            *c += w.count_ones() as usize;
                        }
                    }
                });
            }
        });
        let mut totals = vec![0usize; width];
        for counts in &per_thread {
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
        }
        (batches * BATCH, totals)
    }
}

/// Number of 64-shot batches [`CompiledCircuit::sample_batches_wide_into`]
/// samples in lockstep (`LANES × 64 = 256` shots per wide call). Four
/// `u64` words fill one 256-bit vector register on the targets this
/// workspace cares about, while staying portable scalar code everywhere
/// else.
pub const LANES: usize = 4;

/// Per-thread mutable scratch for the wide sampler: one `[u64; LANES]`
/// row per qubit/measurement, lane `l` belonging to the `l`-th batch of
/// the lockstep group. Cheap to create, reused across wide calls.
#[derive(Clone, Debug)]
pub struct WideFrameState {
    /// X-frame row per qubit.
    x: Vec<[u64; LANES]>,
    /// Z-frame row per qubit.
    z: Vec<[u64; LANES]>,
    /// Measurement-record flip row per measurement.
    meas: Vec<[u64; LANES]>,
}

impl WideFrameState {
    /// Creates scratch sized for `compiled`.
    pub fn new(compiled: &CompiledCircuit) -> WideFrameState {
        WideFrameState {
            x: vec![[0; LANES]; compiled.num_qubits],
            z: vec![[0; LANES]; compiled.num_qubits],
            meas: vec![[0; LANES]; compiled.num_measurements],
        }
    }
}

/// Per-thread mutable scratch for sampling batches from a
/// [`CompiledCircuit`]: frame words per qubit and flip words per
/// measurement record. Cheap to create, reused across batches.
#[derive(Clone, Debug)]
pub struct FrameState {
    /// X-frame word per qubit.
    x: Vec<u64>,
    /// Z-frame word per qubit.
    z: Vec<u64>,
    /// Measurement-record flip word per measurement.
    meas: Vec<u64>,
}

impl FrameState {
    /// Creates scratch sized for `compiled`.
    pub fn new(compiled: &CompiledCircuit) -> FrameState {
        FrameState {
            x: vec![0; compiled.num_qubits],
            z: vec![0; compiled.num_qubits],
            meas: vec![0; compiled.num_measurements],
        }
    }
}

/// Derives the RNG seed for one work chunk from a base seed, so chunk
/// streams are decorrelated but fully determined by `(base_seed, index)`.
///
/// This is the seeding contract shared by every parallel sampler in the
/// workspace: results must depend only on the base seed, never on the
/// thread count or scheduling order.
pub fn chunk_seed(base_seed: u64, chunk_index: u64) -> u64 {
    // SplitMix64 finalizer over a golden-ratio-stepped counter.
    let mut s = base_seed ^ chunk_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    s ^ (s >> 31)
}

/// Resolves a requested worker-thread count: `0` means "use the
/// `CALIQEC_THREADS` environment variable if set, else all available
/// parallelism"; any other value is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("CALIQEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Basis, Circuit, Gate1, Gate2, Noise1, Noise2};
    use crate::frame::InterpretingSampler;

    /// A circuit exercising every instruction kind.
    fn kitchen_sink() -> Circuit {
        let mut c = Circuit::new(4);
        c.reset(Basis::Z, &[0, 1, 2, 3]);
        c.g1(Gate1::H, 0);
        c.g1(Gate1::S, 1);
        c.g1(Gate1::SDag, 2);
        c.g1(Gate1::X, 3); // compiles to nothing
        c.noise1(Noise1::XError, 0.1, &[0, 1]);
        c.noise1(Noise1::YError, 0.05, &[2]);
        c.noise1(Noise1::ZError, 0.2, &[3]);
        c.noise1(Noise1::Depolarize1, 0.15, &[0, 3]);
        c.noise2(Noise2::Depolarize2, 0.1, &[(0, 1), (2, 3)]);
        c.g2(Gate2::Cx, 0, 1);
        c.g2(Gate2::Cz, 1, 2);
        c.g2(Gate2::Swap, 2, 3);
        c.g1(Gate1::H, 0);
        let m0 = c.measure(0, Basis::Z, 0.02);
        let m1 = c.measure(1, Basis::X, 0.0);
        let m2 = c.measure(2, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1, m2]);
        c.observable(0, &[m0]);
        c.observable(0, &[m2]); // second contribution to the same observable
        c.observable(1, &[m1]);
        c
    }

    #[test]
    fn compiled_matches_interpreter_exactly() {
        let c = kitchen_sink();
        let compiled = CompiledCircuit::new(&c);
        let mut state = FrameState::new(&compiled);
        for seed in 0..20 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut interp = InterpretingSampler::new(&c);
            for _ in 0..4 {
                let ev_a = interp.sample_batch(&mut rng_a);
                let ev_b = compiled.sample_batch(&mut state, &mut rng_b);
                assert_eq!(ev_a.detectors, ev_b.detectors, "seed {seed}");
                assert_eq!(ev_a.observables, ev_b.observables, "seed {seed}");
            }
        }
    }

    #[test]
    fn wide_lanes_are_bit_identical_to_narrow_batches() {
        // The wide sampler's contract: lane l with rngs[l] produces exactly
        // the events a narrow sample_batch_into would with that RNG, batch
        // after batch — widening is an execution strategy, not a statistics
        // change.
        let c = kitchen_sink();
        let compiled = CompiledCircuit::new(&c);
        let mut wide = WideFrameState::new(&compiled);
        let mut narrow = FrameState::new(&compiled);
        for seed in 0..8 {
            let mut wide_rngs: [StdRng; LANES] =
                std::array::from_fn(|l| StdRng::seed_from_u64(chunk_seed(seed, l as u64)));
            let mut narrow_rngs: [StdRng; LANES] =
                std::array::from_fn(|l| StdRng::seed_from_u64(chunk_seed(seed, l as u64)));
            let mut wide_events: [BatchEvents; LANES] = Default::default();
            // Multiple wide calls per seed prove the lanes' RNG streams
            // carry over between lockstep groups exactly like narrow ones.
            for batch in 0..3 {
                compiled.sample_batches_wide_into(&mut wide, &mut wide_rngs, &mut wide_events);
                for (l, rng) in narrow_rngs.iter_mut().enumerate() {
                    let narrow_ev = compiled.sample_batch(&mut narrow, rng);
                    assert_eq!(
                        narrow_ev.detectors, wide_events[l].detectors,
                        "seed {seed} lane {l} batch {batch} detectors"
                    );
                    assert_eq!(
                        narrow_ev.observables, wide_events[l].observables,
                        "seed {seed} lane {l} batch {batch} observables"
                    );
                }
            }
        }
    }

    #[test]
    fn counters_carry_over() {
        let c = kitchen_sink();
        let compiled = CompiledCircuit::new(&c);
        assert_eq!(compiled.num_qubits(), 4);
        assert_eq!(compiled.num_measurements(), 3);
        assert_eq!(compiled.num_detectors(), 2);
        assert_eq!(compiled.num_observables(), 2);
    }

    #[test]
    fn parallel_raw_counts_are_thread_count_independent() {
        let mut c = Circuit::new(2);
        c.reset(Basis::Z, &[0, 1]);
        c.noise1(Noise1::XError, 0.3, &[0, 1]);
        let m0 = c.measure(0, Basis::Z, 0.0);
        let m1 = c.measure(1, Basis::Z, 0.0);
        c.observable(0, &[m0]);
        c.observable(1, &[m1]);
        let compiled = CompiledCircuit::new(&c);
        let (shots1, counts1) = compiled.count_raw_observable_flips(1000, 99, 1);
        let (shots4, counts4) = compiled.count_raw_observable_flips(1000, 99, 4);
        assert_eq!(shots1, shots4);
        assert_eq!(counts1, counts4);
        let frac = counts1[0] as f64 / shots1 as f64;
        assert!((frac - 0.3).abs() < 0.05, "flip fraction {frac}");
    }

    #[test]
    fn parallel_detector_counts_are_thread_count_independent() {
        let mut c = Circuit::new(2);
        c.reset(Basis::Z, &[0, 1]);
        c.noise1(Noise1::XError, 0.2, &[0, 1]);
        let m0 = c.measure(0, Basis::Z, 0.0);
        let m1 = c.measure(1, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let compiled = CompiledCircuit::new(&c);
        let (shots1, counts1) = compiled.count_detector_flips(1000, 7, 1);
        let (shots4, counts4) = compiled.count_detector_flips(1000, 7, 4);
        assert_eq!(shots1, shots4);
        assert_eq!(counts1, counts4);
        let frac = counts1[1] as f64 / shots1 as f64;
        assert!((frac - 0.2).abs() < 0.05, "flip fraction {frac}");
    }

    #[test]
    fn chunk_seed_decorrelates() {
        let a = chunk_seed(1, 0);
        let b = chunk_seed(1, 1);
        let c = chunk_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And is a pure function.
        assert_eq!(chunk_seed(1, 0), a);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn validate_accepts_compiled_builder_output() {
        let compiled = CompiledCircuit::new(&kitchen_sink());
        assert!(compiled.validate().is_ok());
    }

    #[test]
    fn validate_catches_malformed_programs() {
        use crate::circuit::{MeasIdx, Op};

        // Out-of-range qubit reaches the compiled program via from_ops.
        let c = Circuit::from_ops(1, vec![Op::G1(Gate1::H, vec![9])]);
        let compiled = CompiledCircuit::new(&c);
        assert!(matches!(
            compiled.validate(),
            Err(crate::CircuitError::QubitOutOfRange { qubit: 9, .. })
        ));

        // Bad noise probability.
        let c = Circuit::from_ops(1, vec![Op::Noise1(Noise1::XError, -0.5, vec![0])]);
        let compiled = CompiledCircuit::new(&c);
        assert!(matches!(
            compiled.validate(),
            Err(crate::CircuitError::BadProbability { .. })
        ));

        // Detector over a nonexistent record.
        let c = Circuit::from_ops(1, vec![Op::Detector(vec![MeasIdx(5)])]);
        let compiled = CompiledCircuit::new(&c);
        assert!(matches!(
            compiled.validate(),
            Err(crate::CircuitError::RecordOutOfRange { record: 5, .. })
        ));
    }

    #[test]
    fn boosted_beta_one_is_bitwise_identical_and_weightless() {
        // β=1 never changes a rate, so the boosted program must replay the
        // plain sampler's RNG stream bit-for-bit with llr ≡ 0 — this is the
        // identity the engine's weight ≡ 1 fast path rests on. kitchen_sink
        // includes p up to 0.2 and a flip=0 measurement, covering the
        // rate-untouched special case at every instruction kind.
        let c = kitchen_sink();
        let plain = CompiledCircuit::new(&c);
        let boosted = plain.boosted(1.0);
        assert_eq!(boosted.boost_beta(), 1.0);
        let mut state_a = FrameState::new(&plain);
        let mut state_b = FrameState::new(&boosted);
        let mut weighted = BatchEvents::default();
        let mut llr = [0.0f64; BATCH];
        for seed in 0..8 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            for _ in 0..3 {
                let ev = plain.sample_batch(&mut state_a, &mut rng_a);
                boosted.sample_batch_weighted_into(
                    &mut state_b,
                    &mut rng_b,
                    &mut weighted,
                    &mut llr,
                );
                assert_eq!(ev.detectors, weighted.detectors, "seed {seed}");
                assert_eq!(ev.observables, weighted.observables, "seed {seed}");
                assert!(
                    llr.iter().all(|&v| v == 0.0),
                    "seed {seed}: llr not exactly 0"
                );
            }
        }
    }

    #[test]
    fn wide_weighted_matches_narrow_weighted() {
        // Same lockstep contract as the unweighted wide sampler, extended to
        // the ratio accumulators: lane l's events AND llr must equal a
        // narrow weighted replay with rngs[l].
        let c = kitchen_sink();
        let boosted = CompiledCircuit::new(&c).boosted(2.5);
        let mut wide = WideFrameState::new(&boosted);
        let mut narrow = FrameState::new(&boosted);
        let mut narrow_ev = BatchEvents::default();
        let mut narrow_llr = [0.0f64; BATCH];
        for seed in 0..6 {
            let mut wide_rngs: [StdRng; LANES] =
                std::array::from_fn(|l| StdRng::seed_from_u64(chunk_seed(seed, l as u64)));
            let mut narrow_rngs: [StdRng; LANES] =
                std::array::from_fn(|l| StdRng::seed_from_u64(chunk_seed(seed, l as u64)));
            let mut wide_events: [BatchEvents; LANES] = Default::default();
            let mut wide_llr = [[0.0f64; BATCH]; LANES];
            for batch in 0..3 {
                boosted.sample_batches_wide_weighted_into(
                    &mut wide,
                    &mut wide_rngs,
                    &mut wide_events,
                    &mut wide_llr,
                );
                for (l, rng) in narrow_rngs.iter_mut().enumerate() {
                    boosted.sample_batch_weighted_into(
                        &mut narrow,
                        rng,
                        &mut narrow_ev,
                        &mut narrow_llr,
                    );
                    assert_eq!(
                        narrow_ev.detectors, wide_events[l].detectors,
                        "seed {seed} lane {l} batch {batch} detectors"
                    );
                    assert_eq!(
                        narrow_ev.observables, wide_events[l].observables,
                        "seed {seed} lane {l} batch {batch} observables"
                    );
                    assert_eq!(
                        narrow_llr, wide_llr[l],
                        "seed {seed} lane {l} batch {batch} llr"
                    );
                }
            }
        }
    }

    #[test]
    fn importance_weights_are_unbiased() {
        // One qubit, one X channel at p, observable = its measurement: the
        // raw flip probability is exactly p. Sampling at β·p and averaging
        // w·flip must recover p — the estimator the engine builds on.
        let p = 0.02;
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::XError, p, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.observable(0, &[m]);
        let boosted = CompiledCircuit::new(&c).boosted(8.0);
        assert!(boosted.is_boosted());
        let mut state = FrameState::new(&boosted);
        let mut ev = BatchEvents::default();
        let mut llr = [0.0f64; BATCH];
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        let (mut sum_wf, mut shots) = (0.0f64, 0u64);
        for _ in 0..4000 {
            boosted.sample_batch_weighted_into(&mut state, &mut rng, &mut ev, &mut llr);
            let flips = ev.observables[0];
            for (s, lr) in llr.iter().enumerate() {
                if flips >> s & 1 == 1 {
                    sum_wf += lr.exp();
                }
            }
            shots += BATCH as u64;
        }
        let est = sum_wf / shots as f64;
        assert!(
            (est - p).abs() < 0.15 * p,
            "weighted estimate {est} vs true {p}"
        );
    }

    #[test]
    fn rate_table_boosting_composes() {
        // boosted_with_rates treats the RateTable as the nominal truth: at
        // β=1 the program fires at the table's rates with llr ≡ 0 (an
        // epoch reweight, no importance sampling); at β>1 the weighted
        // estimator still recovers the table rate.
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::XError, 0.05, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.observable(0, &[m]);
        let compiled = CompiledCircuit::new(&c);
        let mut table = RateTable::identity();
        table.set(ErrorSource::Noise1(Noise1::XError, 0), 0.2);

        let run = |prog: &CompiledCircuit, seed: u64| {
            let mut state = FrameState::new(prog);
            let mut ev = BatchEvents::default();
            let mut llr = [0.0f64; BATCH];
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut raw, mut weighted, mut shots) = (0u64, 0.0f64, 0u64);
            let mut llr_all_zero = true;
            for _ in 0..2000 {
                prog.sample_batch_weighted_into(&mut state, &mut rng, &mut ev, &mut llr);
                let flips = ev.observables[0];
                raw += flips.count_ones() as u64;
                for (s, lr) in llr.iter().enumerate() {
                    llr_all_zero &= *lr == 0.0;
                    if flips >> s & 1 == 1 {
                        weighted += lr.exp();
                    }
                }
                shots += BATCH as u64;
            }
            (
                raw as f64 / shots as f64,
                weighted / shots as f64,
                llr_all_zero,
            )
        };

        // β=1: pure reweight — fires at 0.2, no ratio terms.
        let (raw, weighted, zero) = run(&compiled.boosted_with_rates(1.0, &table), 11);
        assert!(zero, "β=1 reweight must leave llr exactly 0");
        assert!((raw - 0.2).abs() < 0.01, "raw rate {raw} vs table 0.2");
        assert!((weighted - 0.2).abs() < 0.01);

        // β=2: fires at 0.4, weighted estimate recovers the table's 0.2.
        let (raw, weighted, _) = run(&compiled.boosted_with_rates(2.0, &table), 12);
        assert!((raw - 0.4).abs() < 0.01, "boosted raw rate {raw} vs 0.4");
        assert!(
            (weighted - 0.2).abs() < 0.015,
            "weighted estimate {weighted} vs nominal 0.2"
        );
    }
}
