//! Pauli operators and sparse Pauli products.
//!
//! These are the basic algebraic objects of stabilizer simulation: single-qubit
//! Paulis, and sparse products of them used when propagating individual error
//! mechanisms through a Clifford circuit (see [`crate::dem`]).

use std::collections::BTreeMap;
use std::fmt;

/// A qubit index within a circuit or tableau.
pub type Qubit = u32;

/// A single-qubit Pauli operator (phase-free).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub enum Pauli {
    /// The identity.
    #[default]
    I,
    /// Bit flip.
    X,
    /// Bit and phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All non-identity Paulis, in `X, Y, Z` order.
    pub const NON_IDENTITY: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns the (x, z) symplectic components of this Pauli.
    ///
    /// `X = (1, 0)`, `Z = (0, 1)`, `Y = (1, 1)`, `I = (0, 0)`.
    #[inline]
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Builds a Pauli from its symplectic components.
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Whether this Pauli commutes with `other`.
    ///
    /// Two single-qubit Paulis commute iff they are equal or either is the
    /// identity.
    #[inline]
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }

    /// Phase-free product of two Paulis (`X * Z = Y`, ignoring the `i` phase).
    #[inline]
    pub fn mul_ignoring_phase(self, other: Pauli) -> Pauli {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        Pauli::from_xz(x1 ^ x2, z1 ^ z2)
    }

    /// Whether this Pauli has an X component (anticommutes with Z).
    #[inline]
    pub fn has_x(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// Whether this Pauli has a Z component (anticommutes with X).
    #[inline]
    pub fn has_z(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A sparse, phase-free product of single-qubit Paulis.
///
/// Only non-identity factors are stored. The map is ordered so that iteration,
/// equality and hashing are deterministic.
///
/// This is the workhorse of error propagation: a sampled physical error is a
/// `SparsePauli`, and conjugating it through the remaining Clifford circuit
/// keeps it a (usually very small) `SparsePauli`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SparsePauli {
    factors: BTreeMap<Qubit, Pauli>,
}

impl SparsePauli {
    /// Creates the identity operator.
    pub fn identity() -> SparsePauli {
        SparsePauli::default()
    }

    /// Creates a single-qubit Pauli on `qubit`.
    pub fn single(qubit: Qubit, pauli: Pauli) -> SparsePauli {
        let mut s = SparsePauli::identity();
        s.set(qubit, pauli);
        s
    }

    /// Creates a Pauli product from `(qubit, pauli)` pairs.
    ///
    /// Later pairs multiply into earlier ones (phase-free).
    pub fn from_pairs<I: IntoIterator<Item = (Qubit, Pauli)>>(pairs: I) -> SparsePauli {
        let mut s = SparsePauli::identity();
        for (q, p) in pairs {
            s.mul_assign_single(q, p);
        }
        s
    }

    /// Returns the Pauli acting on `qubit` (identity if absent).
    #[inline]
    pub fn get(&self, qubit: Qubit) -> Pauli {
        self.factors.get(&qubit).copied().unwrap_or(Pauli::I)
    }

    /// Overwrites the factor on `qubit`.
    pub fn set(&mut self, qubit: Qubit, pauli: Pauli) {
        if pauli == Pauli::I {
            self.factors.remove(&qubit);
        } else {
            self.factors.insert(qubit, pauli);
        }
    }

    /// Multiplies a single-qubit Pauli into this product (phase-free).
    pub fn mul_assign_single(&mut self, qubit: Qubit, pauli: Pauli) {
        let merged = self.get(qubit).mul_ignoring_phase(pauli);
        self.set(qubit, merged);
    }

    /// Multiplies another sparse Pauli into this one (phase-free).
    pub fn mul_assign(&mut self, other: &SparsePauli) {
        for (&q, &p) in &other.factors {
            self.mul_assign_single(q, p);
        }
    }

    /// Whether this is the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.factors.is_empty()
    }

    /// Number of non-identity factors.
    #[inline]
    pub fn weight(&self) -> usize {
        self.factors.len()
    }

    /// Iterates over `(qubit, pauli)` factors in qubit order.
    pub fn iter(&self) -> impl Iterator<Item = (Qubit, Pauli)> + '_ {
        self.factors.iter().map(|(&q, &p)| (q, p))
    }

    /// The set of qubits acted on non-trivially.
    pub fn support(&self) -> impl Iterator<Item = Qubit> + '_ {
        self.factors.keys().copied()
    }

    /// Whether this product commutes with `other`.
    ///
    /// Two Pauli products commute iff the number of positions where their
    /// factors anticommute is even.
    pub fn commutes_with(&self, other: &SparsePauli) -> bool {
        let mut anti = 0usize;
        // Iterate over the smaller operator.
        let (small, big) = if self.weight() <= other.weight() {
            (self, other)
        } else {
            (other, self)
        };
        for (q, p) in small.iter() {
            if !p.commutes_with(big.get(q)) {
                anti += 1;
            }
        }
        anti.is_multiple_of(2)
    }
}

impl FromIterator<(Qubit, Pauli)> for SparsePauli {
    fn from_iter<T: IntoIterator<Item = (Qubit, Pauli)>>(iter: T) -> Self {
        SparsePauli::from_pairs(iter)
    }
}

impl fmt::Display for SparsePauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            return write!(f, "I");
        }
        let mut first = true;
        for (q, p) in self.iter() {
            if !first {
                write!(f, "*")?;
            }
            write!(f, "{p}{q}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_xz_roundtrip() {
        for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            let (x, z) = p.xz();
            assert_eq!(Pauli::from_xz(x, z), p);
        }
    }

    #[test]
    fn pauli_commutation_table() {
        use Pauli::*;
        assert!(X.commutes_with(X));
        assert!(X.commutes_with(I));
        assert!(!X.commutes_with(Z));
        assert!(!X.commutes_with(Y));
        assert!(!Y.commutes_with(Z));
        assert!(Z.commutes_with(Z));
    }

    #[test]
    fn pauli_products() {
        use Pauli::*;
        assert_eq!(X.mul_ignoring_phase(Z), Y);
        assert_eq!(X.mul_ignoring_phase(X), I);
        assert_eq!(Y.mul_ignoring_phase(Z), X);
        assert_eq!(I.mul_ignoring_phase(Z), Z);
    }

    #[test]
    fn sparse_pauli_mul_cancels() {
        let mut a = SparsePauli::single(3, Pauli::X);
        a.mul_assign_single(3, Pauli::X);
        assert!(a.is_identity());
    }

    #[test]
    fn sparse_pauli_commutation() {
        // X0*X1 commutes with Z0*Z1 (two anticommuting positions).
        let xx = SparsePauli::from_pairs([(0, Pauli::X), (1, Pauli::X)]);
        let zz = SparsePauli::from_pairs([(0, Pauli::Z), (1, Pauli::Z)]);
        assert!(xx.commutes_with(&zz));
        // X0 anticommutes with Z0*Z1 (one position).
        let x0 = SparsePauli::single(0, Pauli::X);
        assert!(!x0.commutes_with(&zz));
    }

    #[test]
    fn sparse_pauli_display() {
        let p = SparsePauli::from_pairs([(2, Pauli::Z), (0, Pauli::X)]);
        assert_eq!(p.to_string(), "X0*Z2");
        assert_eq!(SparsePauli::identity().to_string(), "I");
    }

    #[test]
    fn sparse_pauli_weight_and_support() {
        let p = SparsePauli::from_pairs([(5, Pauli::Y), (1, Pauli::X), (1, Pauli::X)]);
        assert_eq!(p.weight(), 1);
        assert_eq!(p.support().collect::<Vec<_>>(), vec![5]);
    }
}
