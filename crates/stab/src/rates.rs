//! Per-source physical error rates — the calibration-to-decoder interface.
//!
//! A [`RateTable`] carries updated per-gate error rates keyed by
//! [`ErrorSource`]. It is produced by characterization / drift models
//! (`caliqec-device`, `caliqec-core`) and consumed by
//! [`DetectorErrorModel::reweighted`](crate::DetectorErrorModel::reweighted)
//! and by the incremental `MatchingGraph::reweight` in `caliqec-match`.

use crate::dem::ErrorSource;
use std::collections::HashMap;

/// A table of per-source physical error rates.
///
/// Lookup is two-level: an explicit per-source entry wins, otherwise the
/// optional uniform default applies, otherwise the source is *unchanged* and
/// consumers fall back to the probability recorded at extraction time. The
/// empty table with no default ([`RateTable::identity`]) therefore leaves
/// every probability bit-identical.
///
/// All stored rates are clamped to
/// [[`RateTable::MIN_RATE`], [`RateTable::MAX_RATE`]] so that any legally
/// drifted table keeps merged edge probabilities inside the open interval
/// `(0, 1)` and graph validation can never fail after a reweight.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RateTable {
    rates: HashMap<ErrorSource, f64>,
    default: Option<f64>,
}

impl RateTable {
    /// Smallest storable rate. Matches the probability floor used by
    /// `probability_to_weight` in `caliqec-match`.
    pub const MIN_RATE: f64 = 1e-12;
    /// Largest storable rate: 0.5 is the zero-information point of a binary
    /// symmetric channel; beyond it edge weights would turn negative.
    pub const MAX_RATE: f64 = 0.5;

    /// The identity table: no entries, no default — every source keeps its
    /// extraction-time probability.
    pub fn identity() -> RateTable {
        RateTable::default()
    }

    /// A table mapping *every* source to `rate` (clamped).
    pub fn uniform(rate: f64) -> RateTable {
        RateTable {
            rates: HashMap::new(),
            default: Some(Self::clamp(rate)),
        }
    }

    fn clamp(rate: f64) -> f64 {
        if rate.is_nan() {
            Self::MIN_RATE
        } else {
            rate.clamp(Self::MIN_RATE, Self::MAX_RATE)
        }
    }

    /// Sets the rate for one source, clamping it to the legal range.
    pub fn set(&mut self, source: ErrorSource, rate: f64) {
        self.rates.insert(source, Self::clamp(rate));
    }

    /// Looks up the effective rate for `source`: explicit entry, else the
    /// uniform default, else `None` (keep the extraction-time probability).
    pub fn get(&self, source: &ErrorSource) -> Option<f64> {
        self.rates.get(source).copied().or(self.default)
    }

    /// True when this table changes nothing (no entries and no default).
    pub fn is_identity(&self) -> bool {
        self.rates.is_empty() && self.default.is_none()
    }

    /// Number of explicit per-source entries (the uniform default, if any,
    /// is not counted).
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True when the table has no explicit per-source entries.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Noise1;

    const SRC: ErrorSource = ErrorSource::Noise1(Noise1::XError, 0);

    #[test]
    fn identity_resolves_nothing() {
        let t = RateTable::identity();
        assert!(t.is_identity());
        assert_eq!(t.get(&SRC), None);
    }

    #[test]
    fn explicit_entry_beats_default() {
        let mut t = RateTable::uniform(0.01);
        assert!(!t.is_identity());
        assert_eq!(t.get(&SRC), Some(0.01));
        t.set(SRC, 0.2);
        assert_eq!(t.get(&SRC), Some(0.2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rates_are_clamped_to_legal_range() {
        let mut t = RateTable::identity();
        t.set(SRC, 0.0);
        assert_eq!(t.get(&SRC), Some(RateTable::MIN_RATE));
        t.set(SRC, 0.9);
        assert_eq!(t.get(&SRC), Some(RateTable::MAX_RATE));
        t.set(SRC, f64::NAN);
        assert_eq!(t.get(&SRC), Some(RateTable::MIN_RATE));
        assert_eq!(
            RateTable::uniform(f64::INFINITY).get(&SRC),
            Some(RateTable::MAX_RATE)
        );
    }
}
