//! Detector error model (DEM) extraction.
//!
//! Every elementary error mechanism in a noisy Clifford circuit — each Pauli
//! component of each noise channel, and each measurement-record flip — is
//! propagated through the remainder of the circuit to find the set of
//! detectors and logical observables it flips. Mechanisms with identical
//! signatures are merged (probabilities combine under XOR-convolution). The
//! result is the input to the decoders in `caliqec-match`.

use crate::circuit::{Basis, Circuit, DetIdx, Gate1, Gate2, MeasIdx, Noise1, Noise2, Op};
use crate::pauli::{Pauli, Qubit};
use crate::rates::RateTable;
use crate::sim::two_qubit_pauli;
use std::collections::HashMap;

/// The physical origin of an error-mechanism component: which noise channel
/// acting on which qubit(s) produced it.
///
/// This is the provenance key of the calibration loop. A characterization pass
/// measures per-gate rates keyed by `ErrorSource`; a [`RateTable`] carries the
/// updated rates; [`DetectorErrorModel::reweighted`] (and the incremental
/// `MatchingGraph::reweight` in `caliqec-match`) recompute merged
/// probabilities without re-extracting the DEM.
///
/// Identity is the *gate*, not the circuit site: every instance of the same
/// channel on the same qubit(s) shares one source and therefore one rate.
/// Note that gate-attached and idling depolarization on the same qubit
/// collapse to one `Noise1(Depolarize1, q)` source.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErrorSource {
    /// A single-qubit noise channel on a qubit.
    Noise1(Noise1, Qubit),
    /// A two-qubit noise channel on an ordered qubit pair.
    Noise2(Noise2, Qubit, Qubit),
    /// A classical readout flip of a measurement on a qubit.
    MeasureFlip(Qubit),
}

/// One recorded contribution of a physical source to a merged mechanism.
///
/// `base` is the component probability exactly as computed at extraction time
/// (e.g. `p / 3.0` for one leg of `Depolarize1`); `divisor` maps an updated
/// per-source rate to the component probability as `rate / divisor`. Storing
/// the divisor — rather than a precomputed reciprocal — makes the reweighted
/// fold bit-identical to extraction whenever the updated rate equals the
/// original one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SourceContribution {
    /// Index into [`DetectorErrorModel::sources`].
    pub source: u32,
    /// Component probability recorded at extraction time.
    pub base: f64,
    /// Rate-to-component divisor: 1.0, 3.0 (`Depolarize1`) or 15.0
    /// (`Depolarize2`).
    pub divisor: f64,
}

/// One merged error mechanism: a probability and the detectors/observables it
/// flips.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorMechanism {
    /// Probability that this mechanism fires (after merging same-signature
    /// mechanisms under XOR-convolution).
    pub probability: f64,
    /// Sorted detector indices flipped by this mechanism.
    pub detectors: Vec<DetIdx>,
    /// Bitmask of flipped logical observables.
    pub observables: u64,
    /// Contributing physical sources in the order they were XOR-folded into
    /// `probability` at extraction time. Zero-probability components are not
    /// recorded (folding 0 is an exact no-op), so a mechanism with an empty
    /// list has probability 0 and is frozen under reweighting.
    pub sources: Vec<SourceContribution>,
}

/// A detector error model: the error mechanisms of a circuit reduced to their
/// detector/observable signatures.
#[derive(Clone, Debug, Default)]
pub struct DetectorErrorModel {
    /// Number of detectors in the originating circuit.
    pub num_detectors: usize,
    /// Number of observables in the originating circuit.
    pub num_observables: usize,
    /// Merged error mechanisms, sorted by signature.
    pub mechanisms: Vec<ErrorMechanism>,
    /// Interned physical sources referenced by
    /// [`SourceContribution::source`].
    pub sources: Vec<ErrorSource>,
}

impl DetectorErrorModel {
    /// Mechanisms that flip at most `k` detectors.
    pub fn mechanisms_with_at_most(&self, k: usize) -> impl Iterator<Item = &ErrorMechanism> {
        self.mechanisms
            .iter()
            .filter(move |m| m.detectors.len() <= k)
    }

    /// Number of mechanisms flipping more than two detectors (hyperedges that
    /// matching-based decoders must decompose).
    pub fn num_hyperedges(&self) -> usize {
        self.mechanisms
            .iter()
            .filter(|m| m.detectors.len() > 2)
            .count()
    }

    /// Returns a copy with every mechanism probability recomputed from
    /// `rates`, replaying the extraction-time XOR fold over the recorded
    /// [`SourceContribution`]s.
    ///
    /// Sources absent from `rates` (and every source, under
    /// [`RateTable::identity`]) keep their recorded `base` component, which
    /// makes the identity reweight bit-identical to the original model.
    /// Zero-probability mechanisms have no recorded contributions and are
    /// frozen, so the mechanism set — and hence any graph topology derived
    /// from it — is stable under every rate table.
    pub fn reweighted(&self, rates: &RateTable) -> DetectorErrorModel {
        let mut out = self.clone();
        for mech in &mut out.mechanisms {
            if mech.sources.is_empty() {
                continue;
            }
            let mut acc = 0.0f64;
            for c in &mech.sources {
                let p = match rates.get(&self.sources[c.source as usize]) {
                    Some(rate) => rate / c.divisor,
                    None => c.base,
                };
                acc = acc * (1.0 - p) + p * (1.0 - acc);
            }
            mech.probability = acc;
        }
        out
    }
}

/// A dense Pauli frame used during single-mechanism propagation.
///
/// Indexed flat by qubit so the per-gate symplectic updates are array
/// accesses rather than hash lookups — propagation visits every gate
/// operand whether or not the frame touches it, so lookup cost dominates
/// extraction. The frame is reused across mechanisms: `touched` remembers
/// which entries may be non-identity, letting [`PropFrame::reset_to`]
/// clear in O(support) instead of O(qubits).
#[derive(Clone, Debug)]
struct PropFrame {
    /// qubit -> (x, z)
    xz: Vec<(bool, bool)>,
    /// Qubits whose entry may have been set since the last reset (may
    /// contain duplicates).
    touched: Vec<Qubit>,
    /// Number of non-identity entries.
    live: usize,
}

impl PropFrame {
    fn new(num_qubits: usize) -> PropFrame {
        PropFrame {
            xz: vec![(false, false); num_qubits],
            touched: Vec::new(),
            live: 0,
        }
    }

    /// Clears the frame and seeds it with `p` on `qubit`.
    fn reset_to(&mut self, qubit: Qubit, p: Pauli) {
        for &q in &self.touched {
            self.xz[q as usize] = (false, false);
        }
        self.touched.clear();
        self.live = 0;
        self.mul(qubit, p);
    }

    fn mul(&mut self, qubit: Qubit, p: Pauli) {
        if p == Pauli::I {
            return;
        }
        let (px, pz) = p.xz();
        let (x, z) = self.xz(qubit);
        self.set(qubit, (x ^ px, z ^ pz));
    }

    #[inline]
    fn xz(&self, qubit: Qubit) -> (bool, bool) {
        self.xz[qubit as usize]
    }

    #[inline]
    fn set(&mut self, qubit: Qubit, xz: (bool, bool)) {
        let e = &mut self.xz[qubit as usize];
        if *e == xz {
            return;
        }
        if *e == (false, false) {
            self.touched.push(qubit);
            self.live += 1;
        } else if xz == (false, false) {
            self.live -= 1;
        }
        *e = xz;
    }

    fn clear(&mut self, qubit: Qubit) {
        self.set(qubit, (false, false));
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// Propagates `frame` through `ops[start..]`, where `meas_base` is the index
/// of the next measurement record at `ops[start]`.
fn propagate_from(
    frame: &mut PropFrame,
    ops: &[Op],
    start: usize,
    meas_base: u32,
    flipped: &mut Vec<MeasIdx>,
) {
    let mut next_meas = meas_base;
    for op in &ops[start..] {
        if frame.is_empty() {
            // Nothing downstream can repopulate an empty frame (noise ops
            // are transparent here), so no further measurement can flip.
            return;
        }
        match op {
            Op::G1(g, qs) => {
                for &qb in qs {
                    let (x, z) = frame.xz(qb);
                    if !x && !z {
                        continue;
                    }
                    match g {
                        Gate1::X | Gate1::Y | Gate1::Z => {}
                        Gate1::H => frame.set(qb, (z, x)),
                        Gate1::S | Gate1::SDag => frame.set(qb, (x, z ^ x)),
                    }
                }
            }
            Op::G2(g, pairs) => {
                for &(a, b) in pairs {
                    let (xa, za) = frame.xz(a);
                    let (xb, zb) = frame.xz(b);
                    if !xa && !za && !xb && !zb {
                        continue;
                    }
                    match g {
                        Gate2::Cx => {
                            frame.set(a, (xa, za ^ zb));
                            frame.set(b, (xb ^ xa, zb));
                        }
                        Gate2::Cz => {
                            frame.set(a, (xa, za ^ xb));
                            frame.set(b, (xb, zb ^ xa));
                        }
                        Gate2::Swap => {
                            frame.set(a, (xb, zb));
                            frame.set(b, (xa, za));
                        }
                    }
                }
            }
            Op::Measure { basis, qubit, .. } => {
                let (x, z) = frame.xz(*qubit);
                match basis {
                    Basis::Z => {
                        if x {
                            flipped.push(MeasIdx(next_meas));
                        }
                        // Z component is absorbed by the collapse.
                        frame.set(*qubit, (x, false));
                    }
                    Basis::X => {
                        if z {
                            flipped.push(MeasIdx(next_meas));
                        }
                        frame.set(*qubit, (false, z));
                    }
                }
                next_meas += 1;
            }
            Op::Reset(_, qs) => {
                for &qb in qs {
                    frame.clear(qb);
                }
            }
            // Noise, detectors and observables do not transform the frame.
            Op::Noise1(..) | Op::Noise2(..) | Op::Detector(..) | Op::Observable(..) => {}
        }
    }
}

/// Extracts the detector error model of `circuit`.
///
/// # Examples
///
/// ```
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.125, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// let dem = extract_dem(&c);
/// assert_eq!(dem.mechanisms.len(), 1);
/// assert!((dem.mechanisms[0].probability - 0.125).abs() < 1e-12);
/// ```
pub fn extract_dem(circuit: &Circuit) -> DetectorErrorModel {
    // Map each measurement record to the detectors / observables containing it.
    let mut meas_to_dets: HashMap<u32, Vec<DetIdx>> = HashMap::new();
    let mut meas_to_obs: HashMap<u32, u64> = HashMap::new();
    {
        let mut det = 0u32;
        for op in circuit.ops() {
            match op {
                Op::Detector(meas) => {
                    for m in meas {
                        meas_to_dets.entry(m.0).or_default().push(DetIdx(det));
                    }
                    det += 1;
                }
                Op::Observable(i, meas) => {
                    for m in meas {
                        *meas_to_obs.entry(m.0).or_default() ^= 1u64 << i;
                    }
                }
                _ => {}
            }
        }
    }

    let ops = circuit.ops();
    type Signature = (Vec<DetIdx>, u64);
    let mut signatures: HashMap<Signature, (f64, Vec<SourceContribution>)> = HashMap::new();
    let mut flipped = Vec::new();

    // Interned provenance sources: one id per (channel, qubits) gate identity.
    let mut sources: Vec<ErrorSource> = Vec::new();
    let mut source_ids: HashMap<ErrorSource, u32> = HashMap::new();
    let mut intern = |s: ErrorSource| -> u32 {
        *source_ids.entry(s).or_insert_with(|| {
            sources.push(s);
            (sources.len() - 1) as u32
        })
    };

    let record =
        |flipped: &mut Vec<MeasIdx>,
         p: f64,
         source: u32,
         divisor: f64,
         signatures: &mut HashMap<Signature, (f64, Vec<SourceContribution>)>| {
            // Convert flipped measurements to a detector/observable signature.
            let mut det_count: HashMap<DetIdx, usize> = HashMap::new();
            let mut obs = 0u64;
            for m in flipped.iter() {
                if let Some(ds) = meas_to_dets.get(&m.0) {
                    for &d in ds {
                        *det_count.entry(d).or_default() += 1;
                    }
                }
                if let Some(&o) = meas_to_obs.get(&m.0) {
                    obs ^= o;
                }
            }
            let mut dets: Vec<DetIdx> = det_count
                .into_iter()
                .filter_map(|(d, c)| (c % 2 == 1).then_some(d))
                .collect();
            dets.sort_unstable();
            flipped.clear();
            if dets.is_empty() && obs == 0 {
                return; // invisible mechanism
            }
            let entry = signatures.entry((dets, obs)).or_insert((0.0, Vec::new()));
            entry.0 = entry.0 * (1.0 - p) + p * (1.0 - entry.0);
            if p > 0.0 {
                entry.1.push(SourceContribution {
                    source,
                    base: p,
                    divisor,
                });
            }
        };

    // One reusable frame, plus flip lists for the single-Pauli generators
    // of the current noise site. A k-qubit depolarizing channel has 4^k − 1
    // Pauli components, but propagation is linear over GF(2) — Clifford
    // conjugation, measurement collapse ((x, z) → (x, 0)) and reset are all
    // linear maps on the frame — so every component's flip set is the
    // parity-XOR of the flips of its 2k generators (X and Z on each qubit).
    // Propagating only the generators and composing turns 15 circuit walks
    // per Depolarize2 site into 4, and `record` already reduces repeated
    // measurement indices by parity, so concatenating generator flip lists
    // is exact — the output is bit-identical to walking every component.
    let mut frame = PropFrame::new(circuit.num_qubits());
    let mut gen: [Vec<MeasIdx>; 4] = Default::default();

    let mut next_meas = 0u32;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Measure { qubit, flip, .. } => {
                if *flip > 0.0 {
                    let src = intern(ErrorSource::MeasureFlip(*qubit));
                    flipped.push(MeasIdx(next_meas));
                    record(&mut flipped, *flip, src, 1.0, &mut signatures);
                }
                next_meas += 1;
            }
            Op::Noise1(kind, p, qs) => match kind {
                Noise1::XError | Noise1::YError | Noise1::ZError => {
                    let pauli = match kind {
                        Noise1::XError => Pauli::X,
                        Noise1::YError => Pauli::Y,
                        Noise1::ZError => Pauli::Z,
                        Noise1::Depolarize1 => unreachable!(),
                    };
                    for &q in qs {
                        let src = intern(ErrorSource::Noise1(*kind, q));
                        frame.reset_to(q, pauli);
                        propagate_from(&mut frame, ops, i + 1, next_meas, &mut flipped);
                        record(&mut flipped, *p, src, 1.0, &mut signatures);
                    }
                }
                Noise1::Depolarize1 => {
                    for &q in qs {
                        let src = intern(ErrorSource::Noise1(*kind, q));
                        for (g, pauli) in gen.iter_mut().zip([Pauli::X, Pauli::Z]) {
                            g.clear();
                            frame.reset_to(q, pauli);
                            propagate_from(&mut frame, ops, i + 1, next_meas, g);
                        }
                        let cp = *p / 3.0;
                        for comp in Pauli::NON_IDENTITY {
                            let (x, z) = comp.xz();
                            if x {
                                flipped.extend_from_slice(&gen[0]);
                            }
                            if z {
                                flipped.extend_from_slice(&gen[1]);
                            }
                            record(&mut flipped, cp, src, 3.0, &mut signatures);
                        }
                    }
                }
            },
            Op::Noise2(kind, p, pairs) => match kind {
                Noise2::Depolarize2 => {
                    for &(a, b) in pairs {
                        let src = intern(ErrorSource::Noise2(*kind, a, b));
                        for (g, (q, pauli)) in gen.iter_mut().zip([
                            (a, Pauli::X),
                            (a, Pauli::Z),
                            (b, Pauli::X),
                            (b, Pauli::Z),
                        ]) {
                            g.clear();
                            frame.reset_to(q, pauli);
                            propagate_from(&mut frame, ops, i + 1, next_meas, g);
                        }
                        for comp in 0..15 {
                            let (pa, pb) = two_qubit_pauli(comp);
                            let (xa, za) = pa.xz();
                            let (xb, zb) = pb.xz();
                            for (on, g) in [xa, za, xb, zb].into_iter().zip(gen.iter()) {
                                if on {
                                    flipped.extend_from_slice(g);
                                }
                            }
                            record(&mut flipped, *p / 15.0, src, 15.0, &mut signatures);
                        }
                    }
                }
            },
            _ => {}
        }
    }

    let mut mechanisms: Vec<ErrorMechanism> = signatures
        .into_iter()
        .map(
            |((detectors, observables), (probability, sources))| ErrorMechanism {
                probability,
                detectors,
                observables,
                sources,
            },
        )
        .collect();
    mechanisms.sort_by(|a, b| {
        a.detectors
            .cmp(&b.detectors)
            .then(a.observables.cmp(&b.observables))
    });
    DetectorErrorModel {
        num_detectors: circuit.num_detectors(),
        num_observables: circuit.num_observables(),
        mechanisms,
        sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Basis, Circuit, Noise1, Noise2};

    #[test]
    fn x_error_before_z_measurement_fires_detector() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::XError, 0.1, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        let dem = extract_dem(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        assert_eq!(dem.mechanisms[0].detectors, vec![DetIdx(0)]);
    }

    #[test]
    fn z_error_is_invisible() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::ZError, 0.1, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        let dem = extract_dem(&c);
        assert!(dem.mechanisms.is_empty());
    }

    #[test]
    fn depolarize1_merges_x_and_y() {
        // X and Y both flip a Z measurement: signatures merge.
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::Depolarize1, 0.3, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        let dem = extract_dem(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        // p = 0.1 xor-combined with 0.1 = 0.1*0.9 + 0.9*0.1 = 0.18
        assert!((dem.mechanisms[0].probability - 0.18).abs() < 1e-12);
    }

    #[test]
    fn observable_flips_are_tracked() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::XError, 0.05, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        c.observable(0, &[m]);
        let dem = extract_dem(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        assert_eq!(dem.mechanisms[0].observables, 1);
    }

    #[test]
    fn error_propagates_through_cx() {
        // X on control propagates to target.
        let mut c = Circuit::new(2);
        c.reset(Basis::Z, &[0, 1]);
        c.noise1(Noise1::XError, 0.1, &[0]);
        c.cx(0, 1);
        let m0 = c.measure(0, Basis::Z, 0.0);
        let m1 = c.measure(1, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let dem = extract_dem(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        assert_eq!(dem.mechanisms[0].detectors, vec![DetIdx(0), DetIdx(1)]);
    }

    #[test]
    fn measurement_flip_noise_is_local() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        let m1 = c.measure(0, Basis::Z, 0.02);
        let m2 = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m1, m2]);
        let dem = extract_dem(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        assert_eq!(dem.mechanisms[0].detectors, vec![DetIdx(0)]);
        assert!((dem.mechanisms[0].probability - 0.02).abs() < 1e-12);
    }

    #[test]
    fn detector_pair_cancellation() {
        // An error flipping a measurement used by two detectors lights both;
        // an error flipping two measurements of the *same* detector cancels.
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::XError, 0.1, &[0]);
        let m1 = c.measure(0, Basis::Z, 0.0);
        // X frame survives the measurement; the same flip appears at m2.
        let m2 = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m1, m2]);
        let dem = extract_dem(&c);
        assert!(dem.mechanisms.is_empty(), "double flip cancels in detector");
    }

    #[test]
    fn depolarize2_components_merge() {
        let mut c = Circuit::new(2);
        c.reset(Basis::Z, &[0, 1]);
        c.noise2(Noise2::Depolarize2, 0.15, &[(0, 1)]);
        let m0 = c.measure(0, Basis::Z, 0.0);
        let m1 = c.measure(1, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let dem = extract_dem(&c);
        // Signatures: {d0}, {d1}, {d0,d1} (Z components invisible).
        assert_eq!(dem.mechanisms.len(), 3);
        for m in &dem.mechanisms {
            assert!(m.probability > 0.0);
        }
    }

    #[test]
    fn provenance_records_sources_and_divisors() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::Depolarize1, 0.3, &[0]);
        let m = c.measure(0, Basis::Z, 0.02);
        c.detector(&[m]);
        let dem = extract_dem(&c);
        assert_eq!(
            dem.sources,
            vec![
                ErrorSource::Noise1(Noise1::Depolarize1, 0),
                ErrorSource::MeasureFlip(0),
            ]
        );
        // X and Y legs merge with the readout flip into one mechanism with
        // three contributions, XOR-folded in extraction order.
        assert_eq!(dem.mechanisms.len(), 1);
        let mech = &dem.mechanisms[0];
        assert_eq!(mech.sources.len(), 3);
        // X and Y legs are recorded first (the noise op precedes the
        // measurement), then the readout flip.
        assert_eq!(mech.sources[0].source, 0);
        assert_eq!(mech.sources[0].divisor, 3.0);
        assert_eq!(mech.sources[0].base, 0.3 / 3.0);
        assert_eq!(mech.sources[1].source, 0);
        assert_eq!(mech.sources[2].source, 1);
        assert_eq!(mech.sources[2].divisor, 1.0);
        assert_eq!(mech.sources[2].base, 0.02);
    }

    #[test]
    fn identity_reweight_is_bit_identical() {
        let mut c = Circuit::new(2);
        c.reset(Basis::Z, &[0, 1]);
        c.noise1(Noise1::Depolarize1, 0.013, &[0, 1]);
        c.noise2(Noise2::Depolarize2, 0.007, &[(0, 1)]);
        let m0 = c.measure(0, Basis::Z, 0.003);
        let m1 = c.measure(1, Basis::Z, 0.003);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let dem = extract_dem(&c);
        let re = dem.reweighted(&RateTable::identity());
        for (a, b) in dem.mechanisms.iter().zip(re.mechanisms.iter()) {
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
        }
    }

    #[test]
    fn reweighted_matches_fresh_extraction() {
        // Reweighting the p=0.1 model with rate 0.2 must reproduce — bit for
        // bit — the model extracted from the p=0.2 circuit.
        let build = |p: f64| {
            let mut c = Circuit::new(2);
            c.reset(Basis::Z, &[0, 1]);
            c.noise1(Noise1::Depolarize1, p, &[0, 1]);
            c.noise2(Noise2::Depolarize2, p, &[(0, 1)]);
            let m0 = c.measure(0, Basis::Z, p);
            let m1 = c.measure(1, Basis::Z, p);
            c.detector(&[m0]);
            c.detector(&[m1]);
            extract_dem(&c)
        };
        let dem = build(0.1);
        let fresh = build(0.2);
        let re = dem.reweighted(&RateTable::uniform(0.2));
        assert_eq!(re.mechanisms.len(), fresh.mechanisms.len());
        for (a, b) in re.mechanisms.iter().zip(fresh.mechanisms.iter()) {
            assert_eq!(a.detectors, b.detectors);
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
        }
    }

    #[test]
    fn hyperedge_counting() {
        let mut c = Circuit::new(1);
        c.reset(Basis::Z, &[0]);
        c.noise1(Noise1::XError, 0.1, &[0]);
        let m = c.measure(0, Basis::Z, 0.0);
        c.detector(&[m]);
        c.detector(&[m]);
        c.detector(&[m]);
        let dem = extract_dem(&c);
        assert_eq!(dem.num_hyperedges(), 1);
        assert_eq!(dem.mechanisms_with_at_most(2).count(), 0);
    }
}
