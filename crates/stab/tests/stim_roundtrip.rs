//! Property-based round-trip tests of the Stim-format serializer: any
//! circuit expressible in the IR must survive export → parse unchanged, and
//! parsing must reject malformed input without panicking.

use caliqec_stab::{from_stim_text, to_stim_text, Basis, Circuit, Gate1, Gate2, Noise1, Noise2};
use proptest::prelude::*;

/// One random instruction to append.
#[derive(Clone, Debug)]
enum Instr {
    G1(u8, u32),
    G2(u8, u32, u32),
    Reset(bool, u32),
    Measure(bool, u32, bool),
    Noise1(u8, u32, u8),
    Noise2(u32, u32, u8),
    Detector(u8),
    Observable(u8, u8),
}

fn instr_strategy(n: u32) -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0..6u8, 0..n).prop_map(|(g, q)| Instr::G1(g, q)),
        (0..3u8, 0..n, 0..n)
            .prop_filter("distinct", |(_, a, b)| a != b)
            .prop_map(|(g, a, b)| Instr::G2(g, a, b)),
        (any::<bool>(), 0..n).prop_map(|(x, q)| Instr::Reset(x, q)),
        (any::<bool>(), 0..n, any::<bool>()).prop_map(|(x, q, f)| Instr::Measure(x, q, f)),
        (0..4u8, 0..n, 1..100u8).prop_map(|(k, q, p)| Instr::Noise1(k, q, p)),
        (0..n, 0..n, 1..100u8)
            .prop_filter("distinct", |(a, b, _)| a != b)
            .prop_map(|(a, b, p)| Instr::Noise2(a, b, p)),
        (1..4u8).prop_map(Instr::Detector),
        (0..3u8, 1..3u8).prop_map(|(i, k)| Instr::Observable(i, k)),
    ]
}

fn build(instrs: &[Instr], n: u32) -> Circuit {
    let mut c = Circuit::new(n as usize);
    let mut meas = Vec::new();
    for i in instrs {
        match *i {
            Instr::G1(g, q) => {
                let gate = [
                    Gate1::X,
                    Gate1::Y,
                    Gate1::Z,
                    Gate1::H,
                    Gate1::S,
                    Gate1::SDag,
                ][g as usize % 6];
                c.g1(gate, q);
            }
            Instr::G2(g, a, b) => {
                let gate = [Gate2::Cx, Gate2::Cz, Gate2::Swap][g as usize % 3];
                c.g2(gate, a, b);
            }
            Instr::Reset(x, q) => {
                c.reset(if x { Basis::X } else { Basis::Z }, &[q]);
            }
            Instr::Measure(x, q, flip) => {
                let basis = if x { Basis::X } else { Basis::Z };
                let p = if flip { 0.015625 } else { 0.0 };
                meas.push(c.measure(q, basis, p));
            }
            Instr::Noise1(k, q, p) => {
                let kind = [
                    Noise1::XError,
                    Noise1::YError,
                    Noise1::ZError,
                    Noise1::Depolarize1,
                ][k as usize % 4];
                c.noise1(kind, p as f64 / 256.0, &[q]);
            }
            Instr::Noise2(a, b, p) => {
                c.noise2(Noise2::Depolarize2, p as f64 / 256.0, &[(a, b)]);
            }
            Instr::Detector(k) => {
                let take: Vec<_> = meas.iter().rev().take(k as usize).copied().collect();
                if !take.is_empty() {
                    c.detector(&take);
                }
            }
            Instr::Observable(idx, k) => {
                let take: Vec<_> = meas.iter().rev().take(k as usize).copied().collect();
                if !take.is_empty() {
                    c.observable(idx as usize, &take);
                }
            }
        }
    }
    // Guarantee the max qubit appears so the parser infers the same width.
    c.g1(Gate1::X, n - 1);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Export → parse is the identity on ops and counters.
    #[test]
    fn roundtrip_identity(instrs in prop::collection::vec(instr_strategy(6), 0..40)) {
        let original = build(&instrs, 6);
        let text = to_stim_text(&original);
        let parsed = from_stim_text(&text)
            .unwrap_or_else(|e| panic!("own output failed to parse: {e}\n{text}"));
        prop_assert_eq!(parsed.ops(), original.ops());
        prop_assert_eq!(parsed.num_qubits(), original.num_qubits());
        prop_assert_eq!(parsed.num_measurements(), original.num_measurements());
        prop_assert_eq!(parsed.num_detectors(), original.num_detectors());
        prop_assert_eq!(parsed.num_observables(), original.num_observables());
    }

    /// The parser never panics on arbitrary input lines.
    #[test]
    fn parser_is_total(garbage in "[ -~\\n]{0,200}") {
        let _ = from_stim_text(&garbage);
    }
}
