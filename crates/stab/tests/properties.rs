//! Property-based tests of the stabilizer substrate: gate identities on the
//! tableau, frame-sampler/tableau agreement, and Pauli algebra laws.

use caliqec_stab::{
    noiseless_shot, simulate_shot, Basis, Circuit, FrameSampler, Gate1, Gate2, Noise1, Pauli,
    SparsePauli, Tableau,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random small Clifford circuit description.
#[derive(Clone, Debug)]
enum RandOp {
    G1(Gate1, u32),
    G2(Gate2, u32, u32),
}

fn rand_ops(n_qubits: u32) -> impl Strategy<Value = Vec<RandOp>> {
    let g1 = (0..6u8, 0..n_qubits).prop_map(|(g, q)| {
        let gate = match g {
            0 => Gate1::X,
            1 => Gate1::Y,
            2 => Gate1::Z,
            3 => Gate1::H,
            4 => Gate1::S,
            _ => Gate1::SDag,
        };
        RandOp::G1(gate, q)
    });
    let g2 = (0..3u8, 0..n_qubits, 0..n_qubits)
        .prop_filter("distinct", |(_, a, b)| a != b)
        .prop_map(|(g, a, b)| {
            let gate = match g {
                0 => Gate2::Cx,
                1 => Gate2::Cz,
                _ => Gate2::Swap,
            };
            RandOp::G2(gate, a, b)
        });
    prop::collection::vec(prop_oneof![g1, g2], 0..24)
}

fn apply_ops(c: &mut Circuit, ops: &[RandOp]) {
    for op in ops {
        match *op {
            RandOp::G1(g, q) => {
                c.g1(g, q);
            }
            RandOp::G2(g, a, b) => {
                c.g2(g, a, b);
            }
        }
    }
}

fn apply_ops_tableau(t: &mut Tableau, ops: &[RandOp]) {
    for op in ops {
        match *op {
            RandOp::G1(Gate1::X, q) => t.x(q),
            RandOp::G1(Gate1::Y, q) => t.y(q),
            RandOp::G1(Gate1::Z, q) => t.z(q),
            RandOp::G1(Gate1::H, q) => t.h(q),
            RandOp::G1(Gate1::S, q) => t.s(q),
            RandOp::G1(Gate1::SDag, q) => t.s_dag(q),
            RandOp::G2(Gate2::Cx, a, b) => t.cx(a, b),
            RandOp::G2(Gate2::Cz, a, b) => t.cz(a, b),
            RandOp::G2(Gate2::Swap, a, b) => t.swap(a, b),
        }
    }
}

fn undo_ops_tableau(t: &mut Tableau, ops: &[RandOp]) {
    for op in ops.iter().rev() {
        match *op {
            RandOp::G1(Gate1::S, q) => t.s_dag(q),
            RandOp::G1(Gate1::SDag, q) => t.s(q),
            // All other generators are involutions.
            _ => apply_ops_tableau(t, std::slice::from_ref(op)),
        }
    }
}

const N: u32 = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying a random Clifford circuit and its inverse returns the
    /// all-zero state exactly.
    #[test]
    fn tableau_inverse_roundtrip(ops in rand_ops(N)) {
        let mut t = Tableau::new(N as usize);
        apply_ops_tableau(&mut t, &ops);
        undo_ops_tableau(&mut t, &ops);
        for q in 0..N {
            let (outcome, det) = t.measure_z(q, || true);
            prop_assert!(det, "qubit {q} not deterministic after inverse");
            prop_assert!(!outcome, "qubit {q} flipped after inverse");
        }
    }

    /// Noiseless circuits produce no frame events, and fully deterministic
    /// injected errors produce identical events in the frame sampler and the
    /// exact simulator.
    #[test]
    fn frame_agrees_with_tableau_on_deterministic_errors(
        ops in rand_ops(N),
        err_qubit in 0..N,
        measure_qubit in 0..N,
    ) {
        // Build: reset all -> random Clifford -> X error (p=1) -> undo
        // Clifford -> measure. The detector value is deterministic, so the
        // frame event must equal the tableau outcome.
        let mut c = Circuit::new(N as usize);
        let all: Vec<u32> = (0..N).collect();
        c.reset(Basis::Z, &all);
        apply_ops(&mut c, &ops);
        c.noise1(Noise1::XError, 1.0, &[err_qubit]);
        // Undo the Clifford so the final state is computational-basis again.
        let inverse: Vec<RandOp> = ops.iter().rev().map(|op| match *op {
            RandOp::G1(Gate1::S, q) => RandOp::G1(Gate1::SDag, q),
            RandOp::G1(Gate1::SDag, q) => RandOp::G1(Gate1::S, q),
            ref other => other.clone(),
        }).collect();
        apply_ops(&mut c, &inverse);
        let m = c.measure(measure_qubit, Basis::Z, 0.0);
        c.detector(&[m]);

        let mut rng = StdRng::seed_from_u64(7);
        let tableau_shot = simulate_shot(&c, &mut rng);
        let clean = noiseless_shot(&c, &mut rng);
        prop_assert!(!clean.detectors[0], "noiseless detector must be quiet");

        let mut sampler = FrameSampler::new(&c);
        let events = sampler.sample_batch(&mut rng);
        let frame_bit = events.detectors[0] & 1 == 1;
        prop_assert_eq!(frame_bit, tableau_shot.detectors[0]);
        // The error is deterministic, so all 64 lanes agree.
        prop_assert!(events.detectors[0] == 0 || events.detectors[0] == u64::MAX);
    }

    /// Pauli commutation is symmetric and products are involutive.
    #[test]
    fn pauli_algebra_laws(
        pairs_a in prop::collection::vec((0u32..6, 0u8..4), 0..6),
        pairs_b in prop::collection::vec((0u32..6, 0u8..4), 0..6),
    ) {
        let to_pauli = |v: u8| match v { 0 => Pauli::I, 1 => Pauli::X, 2 => Pauli::Y, _ => Pauli::Z };
        let a = SparsePauli::from_pairs(pairs_a.iter().map(|&(q, p)| (q, to_pauli(p))));
        let b = SparsePauli::from_pairs(pairs_b.iter().map(|&(q, p)| (q, to_pauli(p))));
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        let mut sq = a.clone();
        sq.mul_assign(&a);
        prop_assert!(sq.is_identity(), "P * P must be the identity");
        prop_assert!(a.commutes_with(&a));
    }

    /// The stabilizers reported by the tableau always commute pairwise and
    /// stabilize the state the measurements report.
    #[test]
    fn stabilizers_commute_pairwise(ops in rand_ops(4)) {
        let mut t = Tableau::new(4);
        apply_ops_tableau(&mut t, &ops);
        let stabs = t.stabilizers();
        for (i, (a, _)) in stabs.iter().enumerate() {
            for (b, _) in stabs.iter().skip(i + 1) {
                prop_assert!(a.commutes_with(b));
            }
        }
        // Each stabilizer's expectation is determined (peek succeeds).
        for (s, sign) in &stabs {
            prop_assert_eq!(t.peek_observable(s), Some(*sign));
        }
    }
}
