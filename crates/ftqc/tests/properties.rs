//! Property-based tests of the FTQC substrate: layout monotonicity, factory
//! algebra, routing invariants, and retry-risk bounds.

use caliqec_device::DriftDistribution;
use caliqec_ftqc::{
    base_exec_hours, distill_15_to_1, lsc_periods, physical_qubits, qecali_periods, qubit_overhead,
    retry_risk, route_random_workload, BenchProgram, CalibrationPeriods, DriftEnsemble,
    FactorySpec, Policy, TileLayout,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Qubit counts are monotone in logical qubits and distance, and the
    /// policy ordering QECali < LSC holds whenever the headroom is small
    /// relative to the distance. QECali costs `((d + Δd)/d)²` vs LSC's
    /// fixed 4.63×, so the ordering requires `Δd < 1.15·d`; the paper's
    /// regime is d ≥ 25 with Δd = 4, and `d ≥ 9, Δd ≤ 8` keeps the whole
    /// generated domain inside the valid region.
    #[test]
    fn qubit_accounting_monotone(
        l in 1usize..2000,
        d in 9usize..40,
        delta in 1usize..8,
    ) {
        let base = physical_qubits(l, d, Policy::NoCalibration);
        prop_assert!(physical_qubits(l + 1, d, Policy::NoCalibration) > base);
        prop_assert!(physical_qubits(l, d + 2, Policy::NoCalibration) > base);
        let q = physical_qubits(l, d, Policy::Qecali { delta_d: delta });
        let lsc = physical_qubits(l, d, Policy::Lsc);
        prop_assert!(base <= q);
        prop_assert!(q < lsc, "QECali {q} must stay below LSC {lsc}");
        prop_assert!(qubit_overhead(l, d, Policy::Lsc) > 4.0);
    }

    /// Distillation strictly reduces sub-50% errors, and deeper pipelines
    /// cost more tiles and time.
    #[test]
    fn factory_algebra(p in 1e-5f64..0.2) {
        let out = distill_15_to_1(p);
        if p < 0.1 {
            prop_assert!(out < p, "distillation must improve {p} (got {out})");
        }
        if let (Some(a), Some(b)) = (
            FactorySpec::for_target(1e-3, 1e-5),
            FactorySpec::for_target(1e-3, 1e-12),
        ) {
            prop_assert!(b.levels >= a.levels);
            prop_assert!(b.tiles >= a.tiles);
            prop_assert!(b.timesteps_per_state >= a.timesteps_per_state);
        }
    }

    /// Routing: every requested CNOT eventually routes on an unblocked
    /// layout, and the path stays on corridor tiles.
    #[test]
    fn routing_always_completes(n in 2usize..40, cnots in 1usize..120, seed in 0u64..100) {
        let layout = TileLayout::place(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = route_random_workload(&layout, cnots, &HashSet::new(), &mut rng);
        prop_assert_eq!(stats.routed, cnots);
        prop_assert!(stats.timesteps >= 1);
        prop_assert!(stats.parallelism <= cnots as f64 + 1e-9);
    }

    /// Retry risk is a probability, monotone in both arguments.
    #[test]
    fn retry_risk_bounds(ops in 1.0f64..1e12, ler in 1e-18f64..1e-2) {
        let r = retry_risk(ops, ler);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!(retry_risk(ops * 10.0, ler) >= r);
        prop_assert!(retry_risk(ops, ler * 10.0) >= r);
    }

    /// QECali's calibration periods never exceed LSC's (it always calibrates
    /// at least as early), so its events-per-hour is at least LSC's.
    #[test]
    fn qecali_calibrates_no_later_than_lsc(seed in 0u64..200, p_tar in 2e-3f64..9e-3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ensemble = DriftEnsemble::sample(64, 1e-3, &DriftDistribution::current(), &mut rng);
        let CalibrationPeriods::PerGate(lsc) = lsc_periods(&ensemble, p_tar) else {
            unreachable!()
        };
        let CalibrationPeriods::PerGate(qec) = qecali_periods(&ensemble, p_tar) else {
            unreachable!()
        };
        for (a, b) in qec.iter().zip(&lsc) {
            prop_assert!(a <= &(b + 1e-9), "QECali period {a} exceeds deadline {b}");
        }
    }

    /// Execution time grows with workload and distance.
    #[test]
    fn exec_time_monotone(n in 2usize..30) {
        let small = BenchProgram::jellium(250);
        let large = BenchProgram::jellium(250 + n * 10);
        prop_assert!(base_exec_hours(&large, 25) > base_exec_hours(&small, 25));
        prop_assert!(base_exec_hours(&small, 27) > base_exec_hours(&small, 25));
    }
}
