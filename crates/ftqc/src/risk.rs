//! Drift-integrated logical error and retry risk (paper Sec. 7.1, 8.1).
//!
//! Retry risk quantifies the probability of an uncorrectable logical error
//! over a whole program run; the paper computes it as the logical error rate
//! multiplied by the total number of logical operations. Under drift the LER
//! is time-dependent: each gate's physical error follows Eqn. 1 between
//! calibrations, producing a sawtooth under a calibration policy and
//! unbounded growth without one.

use caliqec_device::DriftModel;
use caliqec_sched::{assign_groups, ler, GateDrift};
use rand::Rng;

/// A sampled population of gate drift behaviours.
#[derive(Clone, Debug)]
pub struct DriftEnsemble {
    /// Freshly calibrated error rate shared by all gates.
    pub p0: f64,
    /// Per-gate drift-time constants (hours per 10×).
    pub t_drifts: Vec<f64>,
}

impl DriftEnsemble {
    /// Samples `n` gates from a drift distribution.
    pub fn sample<R: Rng>(
        n: usize,
        p0: f64,
        dist: &caliqec_device::DriftDistribution,
        rng: &mut R,
    ) -> DriftEnsemble {
        DriftEnsemble {
            p0,
            t_drifts: dist.sample_many(n, rng),
        }
    }

    /// Hours each gate takes to drift from `p0` to `p_tar` (the calibration
    /// deadline `T_drift,p_tar`).
    pub fn deadlines(&self, p_tar: f64) -> Vec<f64> {
        self.t_drifts
            .iter()
            .map(|&t| DriftModel::new(self.p0, t).time_to_reach(p_tar).max(1e-3))
            .collect()
    }
}

/// Per-gate calibration periods of a policy (`None` = never calibrated).
#[derive(Clone, Debug)]
pub enum CalibrationPeriods {
    /// No calibration: errors drift unboundedly.
    Never,
    /// Each gate calibrated with its own period (hours).
    PerGate(Vec<f64>),
}

/// Periods of the LSC baseline: each gate calibrated exactly at its drift
/// deadline (coarse-grained, rides at `p_tar`).
pub fn lsc_periods(ensemble: &DriftEnsemble, p_tar: f64) -> CalibrationPeriods {
    CalibrationPeriods::PerGate(ensemble.deadlines(p_tar))
}

/// Periods of QECali: drift-based grouping assigns each gate the period
/// `k·T_Cali ≤ deadline`, so gates are on average calibrated *earlier* than
/// their deadlines (lower time-averaged error than LSC).
pub fn qecali_periods(ensemble: &DriftEnsemble, p_tar: f64) -> CalibrationPeriods {
    let gates: Vec<GateDrift> = ensemble
        .deadlines(p_tar)
        .into_iter()
        .enumerate()
        .map(|(gate, drift_hours)| GateDrift { gate, drift_hours })
        .collect();
    let groups = assign_groups(&gates);
    let periods = (0..gates.len())
        .map(|g| groups.period_of(g).expect("every gate grouped"))
        .collect();
    CalibrationPeriods::PerGate(periods)
}

/// Device-wide calibration events per hour under the given periods.
pub fn events_per_hour(periods: &CalibrationPeriods) -> f64 {
    match periods {
        CalibrationPeriods::Never => 0.0,
        CalibrationPeriods::PerGate(p) => p.iter().map(|&t| 1.0 / t).sum(),
    }
}

/// Mean physical error across the ensemble at absolute time `t` (hours),
/// given per-gate calibration phases.
fn mean_error_at(
    ensemble: &DriftEnsemble,
    periods: &CalibrationPeriods,
    phases: &[f64],
    t: f64,
) -> f64 {
    let n = ensemble.t_drifts.len() as f64;
    let sum: f64 = ensemble
        .t_drifts
        .iter()
        .enumerate()
        .map(|(i, &td)| {
            let age = match periods {
                CalibrationPeriods::Never => t,
                CalibrationPeriods::PerGate(p) => (t + phases[i] * p[i]).rem_euclid(p[i]),
            };
            // Cap at 0.3: beyond that the depolarizing-model error rate is
            // saturated and the LER model is pinned at alpha anyway.
            (ensemble.p0 * 10f64.powf(age / td)).min(0.3)
        })
        .sum();
    sum / n
}

/// Time-averaged logical error rate of a distance-`d` patch over a run of
/// `horizon_hours`, integrating the drifting mean physical error on a
/// 256-point grid with randomized calibration phases.
pub fn average_ler<R: Rng>(
    d: usize,
    ensemble: &DriftEnsemble,
    periods: &CalibrationPeriods,
    horizon_hours: f64,
    rng: &mut R,
) -> f64 {
    let phases: Vec<f64> = (0..ensemble.t_drifts.len())
        .map(|_| rng.random::<f64>())
        .collect();
    let steps = 256;
    let mut acc = 0.0;
    for k in 0..steps {
        let t = horizon_hours * (k as f64 + 0.5) / steps as f64;
        acc += ler(d, mean_error_at(ensemble, periods, &phases, t));
    }
    acc / steps as f64
}

/// Retry risk of a run with `logical_ops` operations at time-averaged
/// logical error `avg_ler` per operation: `1 - exp(-ops · LER)` (the paper's
/// `LER × #ops`, saturating near 100 %).
pub fn retry_risk(logical_ops: f64, avg_ler: f64) -> f64 {
    1.0 - (-logical_ops * avg_ler).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliqec_device::DriftDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ensemble(seed: u64) -> DriftEnsemble {
        let mut rng = StdRng::seed_from_u64(seed);
        DriftEnsemble::sample(500, 1e-3, &DriftDistribution::current(), &mut rng)
    }

    #[test]
    fn deadlines_shrink_with_tighter_targets() {
        let e = ensemble(1);
        let loose: f64 = e.deadlines(8e-3).iter().sum();
        let tight: f64 = e.deadlines(2e-3).iter().sum();
        assert!(tight < loose);
    }

    #[test]
    fn qecali_periods_never_exceed_deadlines() {
        let e = ensemble(2);
        let p_tar = 5e-3;
        let deadlines = e.deadlines(p_tar);
        let CalibrationPeriods::PerGate(periods) = qecali_periods(&e, p_tar) else {
            panic!()
        };
        for (p, dl) in periods.iter().zip(&deadlines) {
            assert!(p <= &(dl + 1e-9));
        }
    }

    #[test]
    fn no_calibration_ler_grows_catastrophically() {
        let e = ensemble(3);
        let mut rng = StdRng::seed_from_u64(9);
        let short = average_ler(25, &e, &CalibrationPeriods::Never, 2.0, &mut rng);
        let long = average_ler(25, &e, &CalibrationPeriods::Never, 100.0, &mut rng);
        assert!(long > short * 10.0, "short {short:e}, long {long:e}");
    }

    #[test]
    fn qecali_average_ler_below_lsc() {
        let e = ensemble(4);
        let p_tar = 5e-3;
        let mut rng = StdRng::seed_from_u64(10);
        let lsc = average_ler(25, &e, &lsc_periods(&e, p_tar), 50.0, &mut rng);
        let insitu = average_ler(25, &e, &qecali_periods(&e, p_tar), 50.0, &mut rng);
        assert!(insitu < lsc, "QECali {insitu:e} should beat LSC {lsc:e}");
    }

    #[test]
    fn retry_risk_saturates() {
        assert!(retry_risk(1e9, 1e-3) > 0.999);
        assert!(retry_risk(1e9, 1e-12) < 0.01);
        assert!((retry_risk(1e9, 3e-11) - 0.0296).abs() < 0.01);
    }

    #[test]
    fn events_per_hour_counts() {
        let p = CalibrationPeriods::PerGate(vec![2.0, 4.0]);
        assert!((events_per_hour(&p) - 0.75).abs() < 1e-12);
        assert_eq!(events_per_hour(&CalibrationPeriods::Never), 0.0);
    }
}
