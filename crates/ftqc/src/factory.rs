//! Magic-state distillation factory model (paper Sec. 7.1; T gates are
//! implemented via magic state distillation following Fowler & Gidney, the
//! paper's reference [19]).
//!
//! The 15-to-1 protocol consumes 15 noisy `|T⟩` states and produces one with
//! error `≈ 35·p³`; levels stack until the output error supports the
//! program's total T count. Each level-1 factory occupies a block of surface
//! code tiles and produces one state per ~6.5 logical timesteps.

/// Error rate of a raw (injected) magic state, conservatively a small
/// multiple of the physical error rate.
pub fn injected_error(p_phys: f64) -> f64 {
    (10.0 * p_phys).min(0.5)
}

/// Output error of one 15-to-1 round on inputs with error `p_in`.
pub fn distill_15_to_1(p_in: f64) -> f64 {
    (35.0 * p_in.powi(3)).min(0.5)
}

/// A configured distillation pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FactorySpec {
    /// Distillation levels (1 or 2 in practice).
    pub levels: u32,
    /// Output error per magic state.
    pub output_error: f64,
    /// Logical timesteps (of `d` cycles) per output state per factory.
    pub timesteps_per_state: f64,
    /// Layout tiles per factory.
    pub tiles: usize,
}

/// Tiles of one level-1 15-to-1 factory (Litinski-style block estimate).
pub const LEVEL1_TILES: usize = 11;

/// Logical timesteps for one level-1 15-to-1 round.
pub const LEVEL1_TIMESTEPS: f64 = 6.5;

impl FactorySpec {
    /// Chooses the number of 15-to-1 levels so each magic state's error is
    /// below `target` (the per-T-gate error budget), starting from injected
    /// states at the physical rate `p_phys`.
    ///
    /// Returns `None` if even three levels cannot reach the target.
    pub fn for_target(p_phys: f64, target: f64) -> Option<FactorySpec> {
        let mut err = injected_error(p_phys);
        for levels in 1..=3u32 {
            err = distill_15_to_1(err);
            if err <= target {
                return Some(FactorySpec {
                    levels,
                    output_error: err,
                    // Each extra level multiplies both footprint and latency
                    // (15 inputs per output, pipelined).
                    timesteps_per_state: LEVEL1_TIMESTEPS * levels as f64,
                    // Higher levels pipeline their sub-factories; footprint
                    // grows linearly with depth (Litinski-style blocks), not
                    // with the 15x input fan-in.
                    tiles: LEVEL1_TILES * (2 * levels as usize - 1),
                });
            }
        }
        None
    }

    /// Number of factories needed so `t_count` states are produced within
    /// `available_timesteps` of program execution.
    pub fn factories_needed(&self, t_count: f64, available_timesteps: f64) -> usize {
        if available_timesteps <= 0.0 {
            return 1;
        }
        let per_factory = available_timesteps / self.timesteps_per_state;
        (t_count / per_factory).ceil().max(1.0) as usize
    }

    /// Total tile footprint of `n` factories.
    pub fn total_tiles(&self, n: usize) -> usize {
        self.tiles * n
    }
}

/// The per-T error budget of a program: the retry target shared over the T
/// count.
pub fn t_error_budget(t_count: f64, retry_target: f64) -> f64 {
    (retry_target / t_count).min(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distillation_cubes_the_error() {
        let out = distill_15_to_1(1e-2);
        assert!((out - 3.5e-5).abs() < 1e-12);
        assert!(distill_15_to_1(out) < 1e-11);
    }

    #[test]
    fn one_level_suffices_for_moderate_targets() {
        let spec = FactorySpec::for_target(1e-3, 1e-4).expect("feasible");
        assert_eq!(spec.levels, 1);
        assert_eq!(spec.tiles, LEVEL1_TILES);
    }

    #[test]
    fn tight_targets_need_two_levels() {
        // 1e-3 physical -> injected 1e-2 -> level 1 gives 3.5e-5; a 1e-10
        // budget needs level 2.
        let spec = FactorySpec::for_target(1e-3, 1e-10).expect("feasible");
        assert_eq!(spec.levels, 2);
        assert!(spec.output_error < 1e-10);
        assert_eq!(spec.tiles, LEVEL1_TILES * 3);
    }

    #[test]
    fn infeasible_targets_rejected() {
        assert_eq!(FactorySpec::for_target(5e-2, 1e-30), None);
    }

    #[test]
    fn factory_count_scales_with_demand() {
        let spec = FactorySpec::for_target(1e-3, 1e-9).unwrap();
        let few = spec.factories_needed(1e6, 1e7);
        let many = spec.factories_needed(1e9, 1e7);
        assert!(many > few);
        assert!(few >= 1);
    }

    #[test]
    fn budget_divides_retry_target() {
        let b = t_error_budget(7.1e8, 0.01);
        assert!((b - 0.01 / 7.1e8).abs() / b < 1e-12);
    }
}
