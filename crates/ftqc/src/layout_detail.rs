//! Detailed, component-resolved layout accounting — the bottom-up
//! counterpart of the calibrated `TILES_PER_LOGICAL` model in
//! [`crate::arch`], and the home of the paper's compensation-qubit-sharing
//! optimization (Sec. 8.2.1).

use crate::arch::tile_qubits;
use crate::factory::{t_error_budget, FactorySpec};
use crate::program::BenchProgram;
use crate::router::TileLayout;

/// A component-resolved FTQC layout for one program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetailedLayout {
    /// Tiles occupied by logical patches.
    pub patch_tiles: usize,
    /// Routing-corridor tiles.
    pub routing_tiles: usize,
    /// Magic-state factory tiles.
    pub factory_tiles: usize,
    /// Number of factories keeping up with the T stream.
    pub factories: usize,
    /// Physical qubits of the whole layout (`tiles × (2d² - 1)`).
    pub physical_qubits: usize,
}

impl DetailedLayout {
    /// Total tiles.
    pub fn total_tiles(&self) -> usize {
        self.patch_tiles + self.routing_tiles + self.factory_tiles
    }

    /// Tiles per logical qubit (compare with
    /// [`crate::arch::TILES_PER_LOGICAL`]).
    pub fn tiles_per_logical(&self, logical_qubits: usize) -> f64 {
        self.total_tiles() as f64 / logical_qubits as f64
    }
}

/// Builds the component-resolved layout of a program: patches + corridors
/// from the router's placement, factories sized so the T stream never
/// starves (one consumption per logical timestep).
///
/// # Examples
///
/// ```
/// use caliqec_ftqc::{detailed_layout, BenchProgram};
///
/// let layout = detailed_layout(&BenchProgram::hubbard(10, 10), 25, 1e-3, 0.01);
/// // The bottom-up count lands near the calibrated 4-tiles-per-logical model.
/// let per_logical = layout.tiles_per_logical(200);
/// assert!((2.0..8.0).contains(&per_logical));
/// ```
pub fn detailed_layout(
    program: &BenchProgram,
    d: usize,
    p_phys: f64,
    retry_target: f64,
) -> DetailedLayout {
    let tiles = TileLayout::place(program.logical_qubits);
    let budget = t_error_budget(program.t_count, retry_target);
    // Fall back to the deepest pipeline when the budget is unreachable —
    // the layout is then optimistic, which only matters for infeasible runs.
    let spec = FactorySpec::for_target(p_phys, budget).unwrap_or(FactorySpec {
        levels: 3,
        output_error: budget,
        timesteps_per_state: 19.5,
        tiles: 11 * 225,
    });
    // One T consumed per logical timestep at full throughput.
    let factories = spec.factories_needed(program.t_count, program.t_count);
    DetailedLayout {
        patch_tiles: tiles.patches.len(),
        routing_tiles: tiles.num_corridor_tiles(),
        factory_tiles: spec.total_tiles(factories),
        factories,
        physical_qubits: (tiles.num_tiles() + spec.total_tiles(factories)) * tile_qubits(d),
    }
}

/// QECali's enlargement headroom with compensation-qubit **sharing**
/// (paper Sec. 8.2.1): only the patches currently under calibration need
/// the `d → d + Δd` expansion, so a shared pool sized for the concurrent
/// batch replaces per-patch headroom.
///
/// Returns `(per_patch_headroom_qubits, shared_headroom_qubits)` for a
/// layout of `logical_qubits` patches of which at most
/// `concurrent_calibrating` are deformed at once.
pub fn compensation_headroom(
    logical_qubits: usize,
    d: usize,
    delta_d: usize,
    concurrent_calibrating: usize,
) -> (usize, usize) {
    let per_patch_extra = tile_qubits(d + delta_d) - tile_qubits(d);
    let per_patch = logical_qubits * per_patch_extra;
    let shared = concurrent_calibrating.min(logical_qubits) * per_patch_extra;
    (per_patch, shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detailed_layout_components_positive() {
        let l = detailed_layout(&BenchProgram::jellium(250), 39, 1e-3, 0.01);
        assert!(l.patch_tiles == 250);
        assert!(l.routing_tiles > l.patch_tiles);
        assert!(l.factories >= 1);
        assert!(l.physical_qubits > 1_000_000);
    }

    #[test]
    fn detailed_count_matches_calibrated_model_scale() {
        let program = BenchProgram::hubbard(10, 10);
        let l = detailed_layout(&program, 25, 1e-3, 0.01);
        let per_logical = l.tiles_per_logical(program.logical_qubits);
        // The paper-calibrated model uses 4 tiles/logical; the bottom-up
        // count must be in the same regime.
        assert!(
            (2.0..8.0).contains(&per_logical),
            "tiles per logical {per_logical}"
        );
    }

    #[test]
    fn sharing_shrinks_headroom_proportionally() {
        let (per_patch, shared) = compensation_headroom(100, 11, 4, 10);
        assert_eq!(shared * 10, per_patch);
        // The paper's Sec. 8.2.1: sharing cuts the net overhead by more
        // than half (14% -> 6% in its configuration).
        assert!(shared < per_patch / 2);
    }

    #[test]
    fn sharing_saturates_at_all_patches() {
        let (per_patch, shared) = compensation_headroom(5, 11, 4, 50);
        assert_eq!(per_patch, shared);
    }
}
