//! Benchmark program resource models (paper Sec. 7.1 and Table 2).
//!
//! Each benchmark is described by its logical resource footprint: logical
//! qubit count, CX count, and T count. The named variants reproduce the
//! paper's Table 2 columns exactly; the parametric generators are power-law
//! fits through those anchor points (documented in DESIGN.md) so other
//! problem sizes can be explored.

/// Logical resource footprint of a fault-tolerant program.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchProgram {
    /// Display name (e.g. `Hubbard-10-10`).
    pub name: String,
    /// Number of logical qubits.
    pub logical_qubits: usize,
    /// Number of logical CX (lattice-surgery) operations.
    pub cx_count: f64,
    /// Number of T gates (magic-state consumptions).
    pub t_count: f64,
}

impl BenchProgram {
    /// Total logical operations (the multiplier in the paper's retry-risk
    /// definition).
    pub fn logical_ops(&self) -> f64 {
        self.cx_count + self.t_count
    }

    /// Hubbard model simulation on an `nx × ny` site lattice (paper
    /// benchmark [3]); two logical qubits per site, gate counts fitted
    /// through the paper's 10×10 and 20×20 anchors.
    pub fn hubbard(nx: usize, ny: usize) -> BenchProgram {
        let sites = (nx * ny) as f64;
        BenchProgram {
            name: format!("Hubbard-{nx}-{ny}"),
            logical_qubits: 2 * nx * ny,
            cx_count: 1.64e9 * (sites / 100.0).powf(2.513),
            t_count: 7.10e8 * (sites / 100.0).powf(2.040),
        }
    }

    /// Jellium (uniform electron gas) simulation with `n` spin orbitals
    /// (paper benchmark [61]); fitted through the 250 and 1024 anchors.
    pub fn jellium(n: usize) -> BenchProgram {
        let x = n as f64 / 250.0;
        BenchProgram {
            name: format!("jellium-{n}"),
            logical_qubits: n,
            cx_count: 8.23e9 * x.powf(3.562),
            t_count: 1.10e9 * x.powf(2.604),
        }
    }

    /// Grover search over `n` qubits; T count dominated by the `~2^(n/2)`
    /// iteration count, anchored at the paper's Grover-100.
    pub fn grover(n: usize) -> BenchProgram {
        let iters = 2f64.powf((n as f64 - 100.0) / 2.0);
        BenchProgram {
            name: format!("Grover-{n}"),
            logical_qubits: n,
            cx_count: 6.8e9 * iters * (n as f64 / 100.0).powi(2),
            t_count: 5.4e10 * iters * (n as f64 / 100.0),
        }
    }

    /// FeMoCo catalyst ground-state estimation, the paper's flagship
    /// quantum-chemistry motivation [40] (tensor-hypercontraction resource
    /// figures from Lee et al. 2021).
    pub fn femoco() -> BenchProgram {
        BenchProgram {
            name: "FeMoCo".to_string(),
            logical_qubits: 2196,
            cx_count: 1.10e10,
            t_count: 6.00e9,
        }
    }

    /// The five benchmark variants of Table 2, in row order.
    pub fn table2_variants() -> Vec<BenchProgram> {
        vec![
            BenchProgram::hubbard(10, 10),
            BenchProgram::hubbard(20, 20),
            BenchProgram::jellium(250),
            BenchProgram::jellium(1024),
            BenchProgram::grover(100),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() / b < tol
    }

    #[test]
    fn hubbard_anchors_match_table2() {
        let h10 = BenchProgram::hubbard(10, 10);
        assert_eq!(h10.logical_qubits, 200);
        assert!(close(h10.cx_count, 1.64e9, 0.01));
        assert!(close(h10.t_count, 7.10e8, 0.01));
        let h20 = BenchProgram::hubbard(20, 20);
        assert_eq!(h20.logical_qubits, 800);
        assert!(close(h20.cx_count, 5.3e10, 0.03), "{}", h20.cx_count);
        assert!(close(h20.t_count, 1.2e10, 0.03), "{}", h20.t_count);
    }

    #[test]
    fn jellium_anchors_match_table2() {
        let j250 = BenchProgram::jellium(250);
        assert!(close(j250.cx_count, 8.23e9, 0.01));
        assert!(close(j250.t_count, 1.10e9, 0.01));
        let j1024 = BenchProgram::jellium(1024);
        assert!(close(j1024.cx_count, 1.25e12, 0.03), "{}", j1024.cx_count);
        assert!(close(j1024.t_count, 4.3e10, 0.03), "{}", j1024.t_count);
    }

    #[test]
    fn grover_anchor_matches_table2() {
        let g = BenchProgram::grover(100);
        assert_eq!(g.logical_qubits, 100);
        assert!(close(g.cx_count, 6.8e9, 0.01));
        assert!(close(g.t_count, 5.4e10, 0.01));
    }

    #[test]
    fn generators_scale_monotonically() {
        assert!(BenchProgram::hubbard(12, 12).t_count > BenchProgram::hubbard(10, 10).t_count);
        assert!(BenchProgram::jellium(500).cx_count > BenchProgram::jellium(250).cx_count);
        assert!(BenchProgram::grover(102).t_count > BenchProgram::grover(100).t_count);
    }

    #[test]
    fn table2_has_five_rows() {
        let v = BenchProgram::table2_variants();
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|p| p.logical_ops() > 1e9));
    }

    #[test]
    fn femoco_is_large() {
        let f = BenchProgram::femoco();
        assert!(f.logical_qubits > 2000);
        assert!(f.logical_ops() > 1e10);
    }
}
