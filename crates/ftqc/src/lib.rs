//! # caliqec-ftqc — FTQC architecture and evaluation substrate
//!
//! The large-scale half of the CaliQEC evaluation (paper Sec. 7–8): surface
//! code tiles with routing channels, the execution-time model, the benchmark
//! programs of Table 2, the two baselines (no calibration and Logical Swap
//! for Calibration), and the drift-integrated retry-risk estimate.
//!
//! # Example: one Table 2 row
//!
//! ```
//! use caliqec_ftqc::{table2_row, BenchProgram, EvalConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let program = BenchProgram::hubbard(10, 10);
//! let [nocal, lsc, qecali] = table2_row(&program, 25, &EvalConfig::default(), &mut rng);
//! assert!(nocal.retry_risk > 0.99);            // calibration is indispensable
//! assert!(qecali.physical_qubits < lsc.physical_qubits); // in-situ wins on qubits
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;
mod eval;
mod exec;
mod factory;
mod layout_detail;
mod program;
mod risk;
mod router;

pub use arch::{physical_qubits, qubit_overhead, tile_qubits, Policy, TILES_PER_LOGICAL};
pub use eval::{evaluate, p_tar_for_run, table2_row, EvalConfig, PolicyResult};
pub use exec::{base_exec_hours, exec_hours, CX_PARALLELISM, CYCLE_US};
pub use factory::{
    distill_15_to_1, injected_error, t_error_budget, FactorySpec, LEVEL1_TILES, LEVEL1_TIMESTEPS,
};
pub use layout_detail::{compensation_headroom, detailed_layout, DetailedLayout};
pub use program::BenchProgram;
pub use risk::{
    average_ler, events_per_hour, lsc_periods, qecali_periods, retry_risk, CalibrationPeriods,
    DriftEnsemble,
};
pub use router::{route_random_workload, RoutingStats, Tile, TileLayout};
