//! Execution-time model (paper Sec. 7.1).
//!
//! QEC cycles take 1 µs. A lattice-surgery operation (logical CX or magic
//! state consumption) occupies `d` cycles; CX operations overlap across the
//! routing fabric while the T stream is serialized through distillation,
//! which matches the T-dominated runtimes of large chemistry programs. The
//! policies add their own overheads: LSC stalls computation during logical
//! state transfer; QECali runs calibration concurrently and adds none.
//!
//! Absolute times differ from the paper's lattice-surgery-compiler results
//! (see DESIGN.md); the policy *ratios* — LSC slower, QECali at baseline —
//! are the reproduced quantity.

use crate::arch::Policy;
use crate::program::BenchProgram;

/// QEC cycle time in microseconds (standard in FTQC studies).
pub const CYCLE_US: f64 = 1.0;

/// Effective number of logical CX operations commuting through the routing
/// fabric concurrently.
pub const CX_PARALLELISM: f64 = 8.0;

/// Baseline execution time in hours: T consumption serialized, CX routed
/// with [`CX_PARALLELISM`]-way overlap, each op costing `d` cycles.
pub fn base_exec_hours(program: &BenchProgram, d: usize) -> f64 {
    let cycles = (program.t_count + program.cx_count / CX_PARALLELISM) * d as f64;
    cycles * CYCLE_US / 3.6e9
}

/// Routing-congestion penalty while LSC calibration traffic occupies
/// corridors (measured by the routing study in `caliqec-bench`: blocking
/// ~15 % of the corridor fabric slows CX routing by this much).
pub const LSC_CONGESTION: f64 = 0.18;

/// Execution time under a calibration policy.
///
/// `calibration_events_per_hour` and `t_cali_hours` describe the calibration
/// schedule. LSC's logical state transfers occupy routing corridors and
/// staging patches while a calibration is in flight, slowing the
/// lattice-surgery fabric by [`LSC_CONGESTION`] for the utilized fraction of
/// the run (plus the per-move logical-SWAP latency). QECali calibrates in
/// situ and the no-calibration baseline never calibrates: both run at the
/// baseline time.
pub fn exec_hours(
    program: &BenchProgram,
    d: usize,
    policy: Policy,
    calibration_events_per_hour: f64,
    t_cali_hours: f64,
) -> f64 {
    let base = base_exec_hours(program, d);
    match policy {
        Policy::NoCalibration | Policy::Qecali { .. } => base,
        Policy::Lsc => {
            // Fraction of the run during which at least one calibration (and
            // thus a pair of logical moves through the fabric) is in flight.
            let utilization = (calibration_events_per_hour * t_cali_hours).min(1.0);
            let congestion = base * LSC_CONGESTION * utilization;
            // Logical SWAP latency: 4d cycles per move, two moves per event,
            // serialized through the CX fabric.
            let events = calibration_events_per_hour * base;
            let swaps = events * 8.0 * d as f64 * CYCLE_US / 3.6e9 / CX_PARALLELISM;
            base + congestion + swaps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_time_is_t_dominated_for_chemistry() {
        let p = BenchProgram::hubbard(10, 10);
        let h = base_exec_hours(&p, 25);
        // T-count 7.1e8 at d = 25 alone gives 4.9 h; CX adds ~1.4 h.
        assert!((4.0..8.0).contains(&h), "exec hours {h}");
    }

    #[test]
    fn qecali_adds_no_time() {
        let p = BenchProgram::hubbard(10, 10);
        let base = exec_hours(&p, 25, Policy::NoCalibration, 10.0, 0.1);
        let insitu = exec_hours(&p, 25, Policy::Qecali { delta_d: 4 }, 10.0, 0.1);
        assert_eq!(base, insitu);
    }

    #[test]
    fn lsc_is_slower_and_scales_with_events() {
        let p = BenchProgram::hubbard(10, 10);
        let base = exec_hours(&p, 25, Policy::NoCalibration, 0.0, 0.1);
        let slow = exec_hours(&p, 25, Policy::Lsc, 2.0, 0.1);
        let saturated = exec_hours(&p, 25, Policy::Lsc, 60.0, 0.1);
        assert!(slow > base);
        assert!(saturated > slow);
        // The paper reports ~10-20% slowdown for realistic rates.
        let ratio = saturated / base;
        assert!((1.05..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn larger_distance_takes_longer() {
        let p = BenchProgram::jellium(250);
        assert!(base_exec_hours(&p, 41) > base_exec_hours(&p, 39));
    }
}
