//! FTQC architecture layouts and physical-qubit accounting (paper Sec. 2.1,
//! Sec. 7.3).
//!
//! Code patches are tiled on a plane with a routing interspace of width `d`
//! serving lattice-surgery operations; additional tiles host magic-state
//! distillation. The three policies differ only in layout:
//!
//! - **No calibration**: the baseline tiling.
//! - **LSC**: the communication channels are expanded in *both* dimensions
//!   to leave room for logical state transfer during calibration, roughly
//!   quadrupling the footprint, plus staging patches for parked logical
//!   qubits (Sec. 7.3).
//! - **QECali**: the baseline layout with the interspace widened by `Δd` so
//!   patches can be enlarged during calibration without colliding.

/// Physical qubits of one distance-`d` tile (a rotated patch plus its share
/// of routing ancillas: `2d² - 1` for the patch, `2d²` including routing).
pub fn tile_qubits(d: usize) -> usize {
    2 * d * d - 1
}

/// Tiles per logical qubit in the baseline architecture: the logical patch,
/// its routing share, and the per-qubit share of T-gate distillation
/// capacity (calibrated so the totals land on the paper's Table 2 baseline
/// column — see DESIGN.md).
pub const TILES_PER_LOGICAL: f64 = 4.0;

/// The calibration policies compared in the evaluation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Policy {
    /// Run without calibrating (Baseline 1).
    NoCalibration,
    /// Logical Swap for Calibration (Baseline 2).
    Lsc,
    /// In-situ calibration via code deformation with enlargement headroom
    /// `delta_d` (the paper uses 4).
    Qecali {
        /// Maximum tolerable code-distance loss `Δd`.
        delta_d: usize,
    },
}

/// Physical qubit count of a program under a policy.
///
/// # Examples
///
/// ```
/// use caliqec_ftqc::{physical_qubits, Policy};
///
/// let base = physical_qubits(200, 25, Policy::NoCalibration);
/// let lsc = physical_qubits(200, 25, Policy::Lsc);
/// let insitu = physical_qubits(200, 25, Policy::Qecali { delta_d: 4 });
/// // LSC pays ~4.6x; QECali pays ~(1 + Δd/d)² ≈ 1.35x.
/// assert!(lsc > 4 * base);
/// assert!(insitu < base * 3 / 2);
/// ```
pub fn physical_qubits(logical_qubits: usize, d: usize, policy: Policy) -> usize {
    let base = TILES_PER_LOGICAL * logical_qubits as f64 * tile_qubits(d) as f64;
    let scaled = match policy {
        Policy::NoCalibration => base,
        // 2-D channel expansion (×4) plus staging patches for parked logical
        // qubits — the paper reports a 363 % increase (4.63×).
        Policy::Lsc => base * 4.0 + 0.63 * base,
        // Interspace widened from d to d + Δd in both dimensions.
        Policy::Qecali { delta_d } => {
            let f = (d as f64 + delta_d as f64) / d as f64;
            base * f * f
        }
    };
    scaled.round() as usize
}

/// The qubit-overhead factor of a policy relative to the baseline.
pub fn qubit_overhead(logical_qubits: usize, d: usize, policy: Policy) -> f64 {
    physical_qubits(logical_qubits, d, policy) as f64
        / physical_qubits(logical_qubits, d, Policy::NoCalibration) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2_scale() {
        // Hubbard-10-10: 200 logical qubits at d = 25 -> ~9.8e5 physical.
        let q = physical_qubits(200, 25, Policy::NoCalibration);
        assert!((9.0e5..1.1e6).contains(&(q as f64)), "baseline qubits {q}");
        // jellium-1024 at d = 45 -> ~1.66e7.
        let q = physical_qubits(1024, 45, Policy::NoCalibration);
        assert!((1.5e7..1.8e7).contains(&(q as f64)), "{q}");
    }

    #[test]
    fn lsc_overhead_is_about_4_6x() {
        let o = qubit_overhead(200, 25, Policy::Lsc);
        assert!((4.4..4.8).contains(&o), "LSC overhead {o}");
    }

    #[test]
    fn qecali_overhead_shrinks_with_distance() {
        let small = qubit_overhead(200, 25, Policy::Qecali { delta_d: 4 });
        let large = qubit_overhead(200, 45, Policy::Qecali { delta_d: 4 });
        assert!(small > large);
        assert!((1.1..1.6).contains(&small), "QECali overhead {small}");
    }

    #[test]
    fn qecali_beats_lsc_always() {
        for d in [25, 29, 39, 45] {
            let q = qubit_overhead(100, d, Policy::Qecali { delta_d: 4 });
            let l = qubit_overhead(100, d, Policy::Lsc);
            assert!(q < l / 2.0);
        }
    }

    #[test]
    fn tile_qubit_formula() {
        assert_eq!(tile_qubits(3), 17);
        assert_eq!(tile_qubits(25), 1249);
    }
}
