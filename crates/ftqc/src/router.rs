//! Lattice-surgery routing on the tiled FTQC layout (paper Sec. 2.1,
//! Fig. 3e/f).
//!
//! Logical patches are tiled on a plane with width-`d` routing corridors;
//! a logical CNOT occupies a corridor path between the two patches for one
//! logical timestep (`d` QEC cycles). This module places patches, routes
//! batches of concurrent CNOTs with BFS over free corridor tiles, and
//! measures the achievable parallelism — the quantity the execution-time
//! model's `CX_PARALLELISM` abstracts, and the thing LSC's widened channels
//! exist to protect during state transfer.

use rand::{Rng, RngExt};
use std::collections::{HashSet, VecDeque};

/// A tile coordinate on the layout grid.
pub type Tile = (usize, usize);

/// The tiled layout: patches at even-even tiles, corridors elsewhere.
#[derive(Clone, Debug)]
pub struct TileLayout {
    /// Grid rows (tiles).
    pub rows: usize,
    /// Grid columns (tiles).
    pub cols: usize,
    /// Patch tiles, indexed by logical qubit id.
    pub patches: Vec<Tile>,
}

impl TileLayout {
    /// Places `logical_qubits` patches on a near-square grid with one-tile
    /// corridors between them (the paper's interspace-`d` layout).
    pub fn place(logical_qubits: usize) -> TileLayout {
        assert!(logical_qubits > 0, "need at least one logical qubit");
        let per_side = (logical_qubits as f64).sqrt().ceil() as usize;
        // Patches at (2r, 2c); corridors at odd rows/cols; a border corridor
        // rings the array.
        let rows = 2 * per_side + 1;
        let cols = 2 * per_side + 1;
        let patches = (0..logical_qubits)
            .map(|i| (2 * (i / per_side) + 1, 2 * (i % per_side) + 1))
            .collect();
        TileLayout {
            rows,
            cols,
            patches,
        }
    }

    /// Whether a tile is a routing corridor (not occupied by any patch).
    pub fn is_corridor(&self, t: Tile) -> bool {
        t.0 < self.rows && t.1 < self.cols && !self.patches.contains(&t)
    }

    /// Total tiles in the layout.
    pub fn num_tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Corridor tiles in the layout.
    pub fn num_corridor_tiles(&self) -> usize {
        self.num_tiles() - self.patches.len()
    }

    fn neighbours(&self, t: Tile) -> impl Iterator<Item = Tile> + '_ {
        let (r, c) = (t.0 as isize, t.1 as isize);
        [(r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)]
            .into_iter()
            .filter(|&(r, c)| r >= 0 && c >= 0)
            .map(|(r, c)| (r as usize, c as usize))
            .filter(|&(r, c)| r < self.rows && c < self.cols)
    }

    /// BFS route between the corridors adjacent to two patches, avoiding
    /// `busy` tiles. Returns the corridor path (including both endpoints).
    pub fn route(&self, from: usize, to: usize, busy: &HashSet<Tile>) -> Option<Vec<Tile>> {
        let src_patch = self.patches[from];
        let dst_patch = self.patches[to];
        let starts: Vec<Tile> = self
            .neighbours(src_patch)
            .filter(|&t| self.is_corridor(t) && !busy.contains(&t))
            .collect();
        let goals: HashSet<Tile> = self
            .neighbours(dst_patch)
            .filter(|&t| self.is_corridor(t) && !busy.contains(&t))
            .collect();
        if starts.is_empty() || goals.is_empty() {
            return None;
        }
        let mut prev: std::collections::HashMap<Tile, Tile> = std::collections::HashMap::new();
        let mut queue: VecDeque<Tile> = VecDeque::new();
        let mut seen: HashSet<Tile> = HashSet::new();
        for &s in &starts {
            queue.push_back(s);
            seen.insert(s);
        }
        while let Some(t) = queue.pop_front() {
            if goals.contains(&t) {
                // Reconstruct.
                let mut path = vec![t];
                let mut cur = t;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for n in self.neighbours(t) {
                if self.is_corridor(n) && !busy.contains(&n) && seen.insert(n) {
                    prev.insert(n, t);
                    queue.push_back(n);
                }
            }
        }
        None
    }
}

/// Result of routing a workload of logical CNOTs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoutingStats {
    /// CNOTs routed.
    pub routed: usize,
    /// Logical timesteps consumed.
    pub timesteps: usize,
    /// Mean CNOTs per timestep (the achieved parallelism).
    pub parallelism: f64,
    /// Mean corridor tiles occupied per routed CNOT.
    pub mean_path_len: f64,
}

/// Routes `cnots` random logical CNOT pairs over the layout, greedily
/// packing each timestep with non-overlapping paths, optionally with a set
/// of corridor tiles blocked (e.g. a region under LSC-style calibration).
///
/// # Examples
///
/// ```
/// use caliqec_ftqc::{route_random_workload, TileLayout};
/// use rand::SeedableRng;
///
/// let layout = TileLayout::place(16);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let stats = route_random_workload(&layout, 200, &Default::default(), &mut rng);
/// assert_eq!(stats.routed, 200);
/// assert!(stats.parallelism > 1.0); // corridors admit concurrent CNOTs
/// ```
pub fn route_random_workload<R: Rng>(
    layout: &TileLayout,
    cnots: usize,
    blocked: &HashSet<Tile>,
    rng: &mut R,
) -> RoutingStats {
    let n = layout.patches.len();
    assert!(n >= 2, "need at least two patches to route CNOTs");
    let mut pending: VecDeque<(usize, usize)> = (0..cnots)
        .map(|_| {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            (a, b)
        })
        .collect();
    let mut timesteps = 0usize;
    let mut routed = 0usize;
    let mut total_path = 0usize;
    while !pending.is_empty() {
        timesteps += 1;
        let mut busy: HashSet<Tile> = blocked.clone();
        let mut deferred: VecDeque<(usize, usize)> = VecDeque::new();
        let mut progressed = false;
        for (a, b) in pending.drain(..) {
            match layout.route(a, b, &busy) {
                Some(path) => {
                    total_path += path.len();
                    busy.extend(path);
                    routed += 1;
                    progressed = true;
                }
                None => deferred.push_back((a, b)),
            }
        }
        pending = deferred;
        if !progressed {
            // Fully blocked layout: stop rather than spin.
            break;
        }
    }
    RoutingStats {
        routed,
        timesteps,
        parallelism: if timesteps == 0 {
            0.0
        } else {
            routed as f64 / timesteps as f64
        },
        mean_path_len: if routed == 0 {
            0.0
        } else {
            total_path as f64 / routed as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn placement_reserves_corridors() {
        let layout = TileLayout::place(9);
        assert_eq!(layout.patches.len(), 9);
        // Patches sit at odd-odd tiles, corridors surround them.
        for &(r, c) in &layout.patches {
            assert_eq!(r % 2, 1);
            assert_eq!(c % 2, 1);
        }
        assert!(layout.num_corridor_tiles() > layout.patches.len());
    }

    #[test]
    fn adjacent_patches_route_directly() {
        let layout = TileLayout::place(4);
        let path = layout.route(0, 1, &HashSet::new()).expect("route exists");
        assert!(!path.is_empty());
        assert!(path.iter().all(|&t| layout.is_corridor(t)));
    }

    #[test]
    fn busy_tiles_force_detours_or_defer() {
        let layout = TileLayout::place(4);
        let free = layout.route(0, 3, &HashSet::new()).expect("free route");
        // Block the free path: either a longer detour exists or routing
        // fails — both acceptable, but never reuse a blocked tile.
        let blocked: HashSet<Tile> = free.iter().copied().collect();
        if let Some(detour) = layout.route(0, 3, &blocked) {
            assert!(detour.iter().all(|t| !blocked.contains(t)));
        }
    }

    #[test]
    fn workload_routes_to_completion() {
        let layout = TileLayout::place(16);
        let mut rng = StdRng::seed_from_u64(4);
        let stats = route_random_workload(&layout, 500, &HashSet::new(), &mut rng);
        assert_eq!(stats.routed, 500);
        assert!(stats.parallelism >= 1.0);
        assert!(stats.mean_path_len >= 1.0);
    }

    #[test]
    fn blocking_a_region_reduces_parallelism() {
        let layout = TileLayout::place(16);
        let mut rng = StdRng::seed_from_u64(5);
        let free = route_random_workload(&layout, 400, &HashSet::new(), &mut rng);
        // Block the middle corridor row except one gap: cross traffic
        // funnels through a single tile.
        let mid_r = layout.rows / 2 - (layout.rows / 2) % 2; // even row = corridor row
        let blocked: HashSet<Tile> = (0..layout.cols - 1).map(|c| (mid_r, c)).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let congested = route_random_workload(&layout, 400, &blocked, &mut rng);
        assert_eq!(congested.routed, 400, "gap keeps the layout connected");
        assert!(
            congested.parallelism <= free.parallelism,
            "congestion cannot raise parallelism ({} vs {})",
            congested.parallelism,
            free.parallelism
        );
    }

    #[test]
    fn parallelism_grows_with_array_size() {
        let mut rng = StdRng::seed_from_u64(6);
        let small = route_random_workload(&TileLayout::place(4), 300, &HashSet::new(), &mut rng);
        let large = route_random_workload(&TileLayout::place(64), 300, &HashSet::new(), &mut rng);
        assert!(
            large.parallelism > small.parallelism,
            "large {} !> small {}",
            large.parallelism,
            small.parallelism
        );
    }
}
