//! End-to-end policy evaluation (Table 2 of the paper).
//!
//! For each (benchmark, distance, policy) triple this module produces the
//! three Table 2 quantities: physical qubit count, execution time, and retry
//! risk, by composing the architecture layouts, the execution-time model,
//! and the drift-integrated risk estimate.

use crate::arch::{physical_qubits, Policy};
use crate::exec::exec_hours;
use crate::program::BenchProgram;
use crate::risk::{
    average_ler, events_per_hour, lsc_periods, qecali_periods, retry_risk, CalibrationPeriods,
    DriftEnsemble,
};
use caliqec_device::DriftDistribution;
use caliqec_sched::{ALPHA, P_TH};
use rand::Rng;

/// Evaluation configuration shared by all policies of one Table 2 row.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Freshly calibrated physical error rate (the paper starts 10× below
    /// the 1 % threshold).
    pub p0: f64,
    /// Drift-time distribution (current or future model).
    pub drift: DriftDistribution,
    /// Retry-risk level the policies calibrate towards (1 % or 0.1 % rows).
    pub retry_target: f64,
    /// Targeted physical error rate the schedules keep every gate below
    /// (the paper holds gates a safe margin under the 1 % threshold).
    pub p_tar: f64,
    /// Mean single-gate calibration duration in hours (drives LSC's
    /// channel-congestion window).
    pub t_cali_hours: f64,
    /// QECali's enlargement headroom Δd.
    pub delta_d: usize,
    /// Number of sampled gates in the drift ensemble.
    pub ensemble_size: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            p0: 1e-3,
            drift: DriftDistribution::current(),
            retry_target: 0.01,
            p_tar: 3e-3,
            t_cali_hours: 0.1,
            delta_d: 4,
            ensemble_size: 500,
        }
    }
}

/// One cell-group of Table 2: a policy's qubits, time, and risk.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyResult {
    /// The evaluated policy.
    pub policy: Policy,
    /// Total physical qubits.
    pub physical_qubits: usize,
    /// Execution time in hours.
    pub exec_hours: f64,
    /// Retry risk in `[0, 1]`.
    pub retry_risk: f64,
}

/// The physical error rate at which a sustained run of `ops` operations on a
/// distance-`d` code hits the retry target — the `p_tar` the calibration
/// schedule must keep every gate below.
pub fn p_tar_for_run(d: usize, ops: f64, retry_target: f64) -> f64 {
    let per_op = retry_target / ops;
    (P_TH * (per_op / ALPHA).powf(2.0 / (d as f64 + 1.0))).min(P_TH * 0.999)
}

/// Evaluates one policy on one benchmark at distance `d`.
///
/// # Examples
///
/// ```
/// use caliqec_ftqc::{evaluate, BenchProgram, EvalConfig, Policy};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let program = BenchProgram::hubbard(10, 10);
/// let r = evaluate(&program, 25, Policy::NoCalibration, &EvalConfig::default(), &mut rng);
/// assert!(r.retry_risk > 0.99); // drift kills uncalibrated runs
/// ```
pub fn evaluate<R: Rng>(
    program: &BenchProgram,
    d: usize,
    policy: Policy,
    config: &EvalConfig,
    rng: &mut R,
) -> PolicyResult {
    let ensemble = DriftEnsemble::sample(config.ensemble_size, config.p0, &config.drift, rng);
    let ops = program.logical_ops();
    let p_tar = config.p_tar.max(config.p0 * 1.05);
    let periods = match policy {
        Policy::NoCalibration => CalibrationPeriods::Never,
        Policy::Lsc => lsc_periods(&ensemble, p_tar),
        Policy::Qecali { .. } => qecali_periods(&ensemble, p_tar),
    };
    let events = events_per_hour(&periods);
    let hours = exec_hours(program, d, policy, events, config.t_cali_hours);
    let avg_ler = average_ler(d, &ensemble, &periods, hours, rng);
    PolicyResult {
        policy,
        physical_qubits: physical_qubits(program.logical_qubits, d, policy),
        exec_hours: hours,
        retry_risk: retry_risk(ops, avg_ler),
    }
}

/// Evaluates the full policy trio of one Table 2 row.
pub fn table2_row<R: Rng>(
    program: &BenchProgram,
    d: usize,
    config: &EvalConfig,
    rng: &mut R,
) -> [PolicyResult; 3] {
    [
        evaluate(program, d, Policy::NoCalibration, config, rng),
        evaluate(program, d, Policy::Lsc, config, rng),
        evaluate(
            program,
            d,
            Policy::Qecali {
                delta_d: config.delta_d,
            },
            config,
            rng,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> EvalConfig {
        EvalConfig {
            ensemble_size: 200,
            ..EvalConfig::default()
        }
    }

    #[test]
    fn table2_row_reproduces_the_paper_ordering() {
        let mut rng = StdRng::seed_from_u64(42);
        let program = BenchProgram::hubbard(10, 10);
        let [nocal, lsc, qecali] = table2_row(&program, 25, &quick_config(), &mut rng);

        // Observation 1: no calibration -> retry risk approaches 100%.
        assert!(nocal.retry_risk > 0.99, "no-cal risk {}", nocal.retry_risk);
        // Observation 2: LSC controls risk but pays ~4.6x qubits and time.
        assert!(lsc.retry_risk < 0.5);
        assert!(lsc.physical_qubits > 4 * nocal.physical_qubits);
        assert!(lsc.exec_hours > nocal.exec_hours);
        // Observation 3: QECali controls risk at least as well with far
        // fewer qubits and no time overhead.
        assert!(qecali.retry_risk <= lsc.retry_risk * 1.05);
        assert!(qecali.physical_qubits < lsc.physical_qubits / 2);
        assert!((qecali.exec_hours - nocal.exec_hours).abs() < 1e-9);
    }

    #[test]
    fn p_tar_tightens_with_more_ops() {
        let few = p_tar_for_run(25, 1e6, 0.01);
        let many = p_tar_for_run(25, 1e12, 0.01);
        assert!(many < few);
        assert!(many > 0.0);
    }

    #[test]
    fn p_tar_loosens_with_distance() {
        let small = p_tar_for_run(21, 1e9, 0.01);
        let large = p_tar_for_run(31, 1e9, 0.01);
        assert!(large > small);
    }

    #[test]
    fn larger_distance_reduces_risk_for_same_policy() {
        let mut rng = StdRng::seed_from_u64(7);
        let program = BenchProgram::hubbard(10, 10);
        let cfg = quick_config();
        let low = evaluate(&program, 25, Policy::Qecali { delta_d: 4 }, &cfg, &mut rng);
        let high = evaluate(&program, 27, Policy::Qecali { delta_d: 4 }, &cfg, &mut rng);
        assert!(high.retry_risk <= low.retry_risk * 1.1);
    }

    #[test]
    fn future_model_still_needs_calibration() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = EvalConfig {
            drift: DriftDistribution::future(),
            ..quick_config()
        };
        let program = BenchProgram::jellium(1024);
        let [nocal, _, qecali] = table2_row(&program, 45, &cfg, &mut rng);
        assert!(nocal.retry_risk > 0.99);
        assert!(qecali.retry_risk < nocal.retry_risk);
    }
}
