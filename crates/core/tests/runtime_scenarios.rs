//! Scenario tests of the runtime engine beyond the happy path: heavy-hex
//! patches, drift-model variants, horizon scaling, and trace invariants.

use caliqec::{compile, run_runtime, CaliqecConfig, Preparation};
use caliqec_code::Lattice;
use caliqec_device::{DeviceConfig, DeviceModel, DriftDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(
    lattice: Lattice,
    drift: DriftDistribution,
    seed: u64,
) -> (DeviceModel, caliqec::CompiledPlan, CaliqecConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let device = DeviceModel::synthetic(
        &DeviceConfig {
            rows: 5,
            cols: 5,
            drift,
            ..DeviceConfig::default()
        },
        &mut rng,
    );
    let config = CaliqecConfig {
        lattice,
        distance: 5,
        ..CaliqecConfig::default()
    };
    let prep = Preparation::run(&device, &mut rng);
    let plan = compile(&device, &prep, &config, &mut rng);
    (device, plan, config)
}

#[test]
fn heavy_hex_runtime_runs_and_calibrates() {
    let (device, plan, config) = setup(Lattice::HeavyHex, DriftDistribution::current(), 41);
    let report = run_runtime(&device, Some(&plan), &config, 24.0, 48);
    assert!(report.calibrations > 0);
    // Heavy-hex patches carry bridge ancillas, so the qubit counts are much
    // larger than the square baseline of 2d²-1.
    assert!(report.trace[0].physical_qubits > 2 * 5 * 5 - 1);
    for p in &report.trace {
        assert!(p.distance >= 1);
        assert!(p.mean_p > 0.0);
    }
}

#[test]
fn future_drift_model_needs_fewer_calibrations() {
    let (dev_now, plan_now, cfg) = setup(Lattice::Square, DriftDistribution::current(), 43);
    let (dev_fut, plan_fut, _) = setup(Lattice::Square, DriftDistribution::future(), 43);
    let horizon = 48.0;
    let now = run_runtime(&dev_now, Some(&plan_now), &cfg, horizon, 48);
    let fut = run_runtime(&dev_fut, Some(&plan_fut), &cfg, horizon, 48);
    assert!(
        fut.calibrations < now.calibrations,
        "slower drift must calibrate less: {} !< {}",
        fut.calibrations,
        now.calibrations
    );
}

#[test]
fn trace_length_matches_steps_and_time_is_monotone() {
    let (device, plan, config) = setup(Lattice::Square, DriftDistribution::current(), 47);
    let report = run_runtime(&device, Some(&plan), &config, 12.0, 37);
    assert_eq!(report.trace.len(), 37);
    for w in report.trace.windows(2) {
        assert!(w[1].hours > w[0].hours);
    }
    assert!(report.trace.last().unwrap().hours < 12.0);
}

#[test]
fn longer_horizon_accumulates_more_calibrations() {
    let (device, plan, config) = setup(Lattice::Square, DriftDistribution::current(), 53);
    let short = run_runtime(&device, Some(&plan), &config, 12.0, 24);
    let long = run_runtime(&device, Some(&plan), &config, 48.0, 96);
    assert!(long.calibrations > short.calibrations);
}

#[test]
fn exceedance_accounting_is_consistent() {
    let (device, _, config) = setup(Lattice::Square, DriftDistribution::current(), 59);
    let report = run_runtime(&device, None, &config, 36.0, 60);
    let manual = report
        .trace
        .iter()
        .filter(|p| p.ler > report.ler_target)
        .count();
    assert_eq!(report.ler_exceedances, manual);
    assert!((report.exceedance_fraction() - manual as f64 / 60.0).abs() < 1e-12);
}
