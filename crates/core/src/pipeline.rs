//! The three-stage CaliQEC pipeline (paper Fig. 5).
//!
//! **Preparation** characterizes the device (drift rates, calibration times,
//! crosstalk); **compilation** builds the calibration plan (grouping +
//! intra-group batches) and lowers each batch to code-deformation
//! instructions; the **runtime** ([`crate::runtime`]) executes the plan
//! concurrently with computation.

use crate::config::CaliqecConfig;
use caliqec_code::{data_coord, Coord, DeformInstruction};
use caliqec_device::{
    characterize_device, measure_all_crosstalk, CharacterizeOptions, CrosstalkProbe, DeviceModel,
    DriftModel, GateCharacterization, GateId, ProbeOptions, QubitId,
};
use caliqec_sched::{
    adaptive_schedule, assign_groups, cluster_workloads, CalibrationGroups, GateDrift,
    IntraSchedule, Workload,
};
use rand::Rng;
use std::collections::BTreeMap;

/// Output of the preparation stage.
#[derive(Clone, Debug)]
pub struct Preparation {
    /// Per-gate characterization results.
    pub characterization: Vec<GateCharacterization>,
    /// Per-gate measured crosstalk neighbourhoods (`Some` when the probes
    /// were run, see [`Preparation::run_with_probes`]).
    pub crosstalk: Option<Vec<CrosstalkProbe>>,
}

impl Preparation {
    /// Runs the preparation stage: simulated interleaved-RB characterization
    /// of every gate (paper Sec. 4).
    pub fn run<R: Rng>(device: &DeviceModel, rng: &mut R) -> Preparation {
        Preparation {
            characterization: characterize_device(device, &CharacterizeOptions::default(), rng),
            crosstalk: None,
        }
    }

    /// Like [`Preparation::run`], additionally measuring every gate's
    /// crosstalk neighbourhood with the Fig. 6 state-disturbance probe,
    /// sampled on `threads` workers (0 = auto).
    pub fn run_with_probes<R: Rng>(
        device: &DeviceModel,
        threads: usize,
        rng: &mut R,
    ) -> Preparation {
        let mut prep = Preparation::run(device, rng);
        let options = ProbeOptions {
            threads,
            ..ProbeOptions::default()
        };
        prep.crosstalk = Some(measure_all_crosstalk(device, &options, rng));
        prep
    }

    /// The estimated drift model of a gate.
    pub fn drift_of(&self, gate: GateId) -> DriftModel {
        self.characterization[gate].estimated
    }
}

/// One executable calibration batch: the gates, their duration, and the
/// deformation instructions that isolate them.
#[derive(Clone, Debug)]
pub struct CompiledBatch {
    /// Gates calibrated concurrently.
    pub gates: Vec<GateId>,
    /// Batch duration in hours.
    pub duration_hours: f64,
    /// Code-distance loss while the batch is isolated.
    pub distance_loss: usize,
    /// Isolation instructions (applied at batch start, reversed at batch
    /// end when the qubits are reintegrated).
    pub isolation: Vec<DeformInstruction>,
}

/// The compiled calibration plan, lowered to deformation instructions.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    /// Drift-based grouping (Algorithm 1 output).
    pub groups: CalibrationGroups,
    /// Batches of each group, in execution order.
    pub batches: BTreeMap<usize, Vec<CompiledBatch>>,
    /// The Δd chosen per group.
    pub chosen_delta_d: BTreeMap<usize, usize>,
}

impl CompiledPlan {
    /// The base calibration interval in hours.
    pub fn t_cali_hours(&self) -> f64 {
        self.groups.t_cali_hours
    }

    /// Batches due in the `m`-th interval (groups whose index divides `m`).
    pub fn batches_in_interval(&self, m: usize) -> Vec<&CompiledBatch> {
        self.batches
            .iter()
            .filter(|(&k, _)| m.is_multiple_of(k))
            .flat_map(|(_, b)| b.iter())
            .collect()
    }

    /// Total calibration operations over a horizon.
    pub fn operations_over(&self, horizon_hours: f64) -> usize {
        self.groups.operations_over(horizon_hours)
    }
}

/// Maps a device qubit to the protected patch's data-qubit coordinate, when
/// it lies inside the patch's `d × d` window.
pub fn device_qubit_to_patch(q: QubitId, grid_cols: usize, d: usize) -> Option<Coord> {
    let (r, c) = (q as usize / grid_cols, q as usize % grid_cols);
    (r < d && c < d).then(|| data_coord(r, c))
}

/// Lowers a scheduled workload to isolation instructions on the protected
/// patch: every region qubit inside the patch window is isolated with
/// `DataQ_RM` (the crosstalk barrier of Sec. 4).
fn lower_workload(w: &Workload, grid_cols: usize, d: usize) -> Vec<DeformInstruction> {
    w.region
        .iter()
        .filter_map(|&q| device_qubit_to_patch(q, grid_cols, d))
        .map(|qubit| DeformInstruction::DataQRm { qubit })
        .collect()
}

/// Runs the compilation stage: drift-based grouping from the characterized
/// drift models, intra-group adaptive scheduling, and lowering to the
/// deformation instruction set.
pub fn compile<R: Rng>(
    device: &DeviceModel,
    preparation: &Preparation,
    config: &CaliqecConfig,
    _rng: &mut R,
) -> CompiledPlan {
    let drifts: Vec<GateDrift> = preparation
        .characterization
        .iter()
        .enumerate()
        .map(|(gate, c)| GateDrift {
            gate,
            drift_hours: c.estimated.time_to_reach(config.p_tar).max(1e-3),
        })
        .collect();
    let groups = assign_groups(&drifts);
    let mut batches = BTreeMap::new();
    let mut chosen_delta_d = BTreeMap::new();
    for (&k, gates) in &groups.groups {
        let workloads = cluster_workloads(device, gates);
        let (schedule, delta) = adaptive_schedule(&workloads, config.delta_d);
        let compiled: Vec<CompiledBatch> = lower_schedule(&schedule, device, config);
        batches.insert(k, compiled);
        chosen_delta_d.insert(k, delta.min(config.delta_d));
    }
    CompiledPlan {
        groups,
        batches,
        chosen_delta_d,
    }
}

fn lower_schedule(
    schedule: &IntraSchedule,
    device: &DeviceModel,
    config: &CaliqecConfig,
) -> Vec<CompiledBatch> {
    schedule
        .batches
        .iter()
        .map(|b| {
            let gates: Vec<GateId> = b
                .workloads
                .iter()
                .flat_map(|w| w.gates.iter().copied())
                .collect();
            let isolation: Vec<DeformInstruction> = b
                .workloads
                .iter()
                .flat_map(|w| lower_workload(w, device.grid_cols, config.distance))
                .collect();
            CompiledBatch {
                gates,
                duration_hours: b.duration_hours,
                distance_loss: b.distance_loss,
                isolation,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliqec_device::DeviceConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DeviceModel, Preparation, CompiledPlan) {
        let mut rng = StdRng::seed_from_u64(21);
        let device = DeviceModel::synthetic(
            &DeviceConfig {
                rows: 5,
                cols: 5,
                ..DeviceConfig::default()
            },
            &mut rng,
        );
        let prep = Preparation::run(&device, &mut rng);
        let config = CaliqecConfig {
            distance: 5,
            ..CaliqecConfig::default()
        };
        let plan = compile(&device, &prep, &config, &mut rng);
        (device, prep, plan)
    }

    #[test]
    fn preparation_characterizes_every_gate() {
        let (device, prep, _) = setup();
        assert_eq!(prep.characterization.len(), device.gates.len());
        assert!(prep.crosstalk.is_none());
    }

    #[test]
    fn preparation_with_probes_measures_crosstalk() {
        let mut rng = StdRng::seed_from_u64(21);
        let device = DeviceModel::synthetic(
            &DeviceConfig {
                rows: 3,
                cols: 3,
                ..DeviceConfig::default()
            },
            &mut rng,
        );
        let prep = Preparation::run_with_probes(&device, 1, &mut rng);
        let probes = prep.crosstalk.expect("probes requested");
        assert_eq!(probes.len(), device.gates.len());
        assert!(probes.iter().any(|p| !p.nbr.is_empty()));
    }

    #[test]
    fn compiled_plan_covers_every_gate() {
        let (device, _, plan) = setup();
        let scheduled: usize = plan
            .batches
            .values()
            .flat_map(|bs| bs.iter().map(|b| b.gates.len()))
            .sum();
        assert_eq!(scheduled, device.gates.len());
    }

    #[test]
    fn batches_carry_isolation_instructions() {
        let (_, _, plan) = setup();
        let with_isolation = plan
            .batches
            .values()
            .flatten()
            .filter(|b| !b.isolation.is_empty())
            .count();
        assert!(with_isolation > 0, "no batch isolates patch qubits");
    }

    #[test]
    fn qubit_window_mapping() {
        assert_eq!(device_qubit_to_patch(0, 8, 3), Some(data_coord(0, 0)));
        assert_eq!(device_qubit_to_patch(9, 8, 3), Some(data_coord(1, 1)));
        // Column 3 is outside a d=3 window.
        assert_eq!(device_qubit_to_patch(3, 8, 3), None);
    }

    #[test]
    fn interval_batches_follow_group_divisibility() {
        let (_, _, plan) = setup();
        let m1 = plan.batches_in_interval(1).len();
        let m2 = plan.batches_in_interval(2).len();
        assert!(m2 >= m1);
    }
}
