//! Framework configuration.

use caliqec_code::Lattice;
use caliqec_device::DriftDistribution;

/// Top-level configuration of a CaliQEC deployment.
#[derive(Clone, Copy, Debug)]
pub struct CaliqecConfig {
    /// Lattice family of the protected patch.
    pub lattice: Lattice,
    /// Code distance of the protected patch.
    pub distance: usize,
    /// Maximum tolerable code-distance loss during calibration (paper: 4).
    pub delta_d: usize,
    /// Freshly calibrated physical error rate.
    pub p0: f64,
    /// Targeted physical error rate gates must stay below.
    pub p_tar: f64,
    /// Drift-time distribution of the hardware.
    pub drift: DriftDistribution,
    /// Whether the patch is enlarged (`PatchQ_AD`) to compensate the
    /// distance lost to isolation (the full QECali scheme) or not (the
    /// isolation-only ablation of Fig. 10).
    pub enlarge: bool,
    /// Worker threads for Monte-Carlo sampling (0 = auto: the
    /// `CALIQEC_THREADS` environment variable if set, else all available
    /// cores — see `caliqec_stab::resolve_threads`).
    pub threads: usize,
    /// Monte-Carlo shots per runtime trace point (0 = model-only LER, no
    /// sampling). When positive, the runtime measures each trace point's
    /// LER with the parallel engine and reports it in
    /// [`crate::TracePoint::measured_ler`].
    pub mc_shots: usize,
    /// Calibration-aware decoding: when set, Monte-Carlo trace points reuse
    /// a per-layout reference matching graph and incrementally reweight it
    /// to the instant's drifted rates (`MatchingGraph::reweight`) instead of
    /// re-extracting a detector error model per point. Measured LERs are
    /// bit-identical either way (the reweight is exact); only the decode
    /// setup cost changes, reported in
    /// [`crate::RuntimeReport::reweight_seconds`].
    pub drift_aware: bool,
    /// Rare-event estimation: when set (and `mc_shots > 0`), trace points
    /// measure their LER with the importance-sampled engine
    /// (`LerEngine::estimate_rare`) at [`CaliqecConfig::boost_beta`]
    /// instead of plain Monte Carlo. With `boost_beta == 1` and
    /// `target_rse == 0` the run degenerates to plain MC bit for bit.
    pub rare_event: bool,
    /// Importance-sampling boost factor β for rare-event runs: every fault
    /// channel samples at `min(β·p, ½)`. Ignored unless `rare_event`.
    pub boost_beta: f64,
    /// Target relative 95% CI half-width for rare-event runs (`≤ 0`
    /// disables CI stopping and runs the full `mc_shots` budget). Ignored
    /// unless `rare_event`.
    pub target_rse: f64,
}

impl Default for CaliqecConfig {
    fn default() -> Self {
        CaliqecConfig {
            lattice: Lattice::Square,
            distance: 11,
            delta_d: 4,
            p0: 1e-3,
            p_tar: 5e-3,
            drift: DriftDistribution::current(),
            enlarge: true,
            threads: 0,
            mc_shots: 0,
            drift_aware: false,
            rare_event: false,
            boost_beta: 4.0,
            target_rse: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = CaliqecConfig::default();
        assert_eq!(c.delta_d, 4);
        assert_eq!(c.distance, 11);
        assert!(c.p0 < c.p_tar);
        assert!(c.enlarge);
    }
}
