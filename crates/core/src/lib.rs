//! # caliqec — in-situ qubit calibration for surface-code QEC
//!
//! A from-scratch Rust reproduction of **CaliQEC / QECali** (Fang et al.,
//! ISCA 2025): a framework that calibrates drifting physical qubits *in
//! situ* — concurrently with surface-code-protected computation — by
//! repurposing code deformation to isolate the qubits under calibration and
//! dynamically enlarging the patch to preserve the protection level.
//!
//! The framework runs in three stages (paper Fig. 5):
//!
//! 1. **Preparation** ([`Preparation`]): characterize the device — drift
//!    rates, calibration times, crosstalk neighbourhoods (`caliqec-device`).
//! 2. **Compilation** ([`compile`]): drift-based calibration grouping
//!    (Algorithm 1), intra-group batching, and lowering to the QECali
//!    deformation instruction set (`caliqec-sched`, `caliqec-code`).
//! 3. **Runtime** ([`run_runtime`]): execute the plan concurrently with
//!    computation, deforming and enlarging the patch around each batch.
//!
//! The stabilizer-simulation, decoding, and FTQC-evaluation substrates live
//! in the sibling crates `caliqec-stab`, `caliqec-match`, and `caliqec-ftqc`.
//!
//! # Example: the full pipeline on a synthetic device
//!
//! ```
//! use caliqec::{compile, run_runtime, CaliqecConfig, Preparation};
//! use caliqec_device::{DeviceConfig, DeviceModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let device = DeviceModel::synthetic(
//!     &DeviceConfig { rows: 3, cols: 3, ..DeviceConfig::default() },
//!     &mut rng,
//! );
//! let config = CaliqecConfig { distance: 3, ..CaliqecConfig::default() };
//!
//! let preparation = Preparation::run(&device, &mut rng);
//! let plan = compile(&device, &preparation, &config, &mut rng);
//! let report = run_runtime(&device, Some(&plan), &config, 24.0, 48);
//! assert!(report.calibrations > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod pipeline;
mod runtime;

pub use caliqec_obs as obs;
pub use config::CaliqecConfig;
pub use pipeline::{compile, device_qubit_to_patch, CompiledBatch, CompiledPlan, Preparation};
pub use runtime::{
    run_runtime, run_runtime_observed, run_runtime_with_faults, RuntimeReport, TracePoint,
};
