//! The CaliQEC runtime engine (paper Fig. 5, runtime stage).
//!
//! Executes a compiled calibration plan concurrently with computation on a
//! protected patch: at each calibration interval the due batches run back to
//! back; while a batch runs, its isolation instructions deform the patch
//! (and, in the full scheme, `PatchQ_AD` enlargement restores the lost
//! distance). Gate error rates follow their true drift models and reset to
//! `p0` when calibrated. The engine emits a time-resolved trace of mean
//! physical error, effective code distance, physical qubit usage, and model
//! LER — the quantities plotted in the paper's Fig. 10.

use crate::config::CaliqecConfig;
use crate::pipeline::CompiledPlan;
use caliqec_code::{
    code_distance, memory_circuit, DeformInstruction, DeformedPatch, MemoryBasis, NoiseModel,
    PatchLayout, Side,
};
use caliqec_device::DeviceModel;
use caliqec_match::{
    graph_for_circuit, EpochSchedule, FaultPlan, LerEngine, MatchingGraph, RareOptions,
    SampleOptions, UnionFindDecoder,
};
use caliqec_obs::ObsSink;
use caliqec_sched::ler;
use caliqec_stab::{chunk_seed, CompiledCircuit, RateTable};

/// One sample of the runtime trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// Absolute time in hours.
    pub hours: f64,
    /// Mean physical error rate across all gates.
    pub mean_p: f64,
    /// Effective code distance of the (possibly deformed) patch.
    pub distance: usize,
    /// Physical qubits currently in use by the patch.
    pub physical_qubits: usize,
    /// Model logical error rate `LER(distance, mean_p)`.
    pub ler: f64,
    /// Monte-Carlo-measured LER of this instant's layout under the parallel
    /// engine (`Some` when `config.mc_shots > 0`). Deterministic in the
    /// trace-point index, independent of `config.threads`.
    pub measured_ler: Option<f64>,
    /// Number of gates currently being calibrated.
    pub calibrating: usize,
}

/// Result of a runtime simulation.
#[derive(Clone, Debug, Default)]
pub struct RuntimeReport {
    /// Time-ordered trace.
    pub trace: Vec<TracePoint>,
    /// Total gate calibrations performed.
    pub calibrations: usize,
    /// Peak physical qubit usage.
    pub max_physical_qubits: usize,
    /// Number of trace points whose LER exceeded the target.
    pub ler_exceedances: usize,
    /// The LER target used for exceedance accounting.
    pub ler_target: f64,
    /// Total decoder-chunk faults observed across all Monte-Carlo
    /// measurements (zero unless faults were injected or a decoder
    /// genuinely misbehaved).
    pub faulted_chunks: usize,
    /// Total quarantined-chunk retries on the degradation ladder. Equals
    /// [`RuntimeReport::faulted_chunks`] whenever every measurement
    /// completed.
    pub retried_chunks: usize,
    /// Total shots decoded on a degraded ladder rung (predecode disabled
    /// or reference decoder).
    pub degraded_shots: usize,
    /// Total seconds spent reweighting cached matching graphs (and
    /// rebuilding their weight-derived predecoder tables) across all
    /// Monte-Carlo measurements. Zero unless `config.drift_aware` is set.
    pub reweight_seconds: f64,
    /// Total shots decoded across rare-event (importance-sampled)
    /// trace-point measurements. Zero unless `config.rare_event` is set.
    pub rare_shots: usize,
    /// Total effective sample size across rare-event measurements
    /// (`Σ ESS ≤ rare_shots`, with equality exactly when β = 1).
    pub rare_ess: f64,
    /// Largest 95% CI half-width observed over rare-event measurements
    /// (finite whenever any rare measurement ran).
    pub rare_max_ci: f64,
}

impl RuntimeReport {
    /// Whether any Monte-Carlo measurement had to fall back to a degraded
    /// decoder configuration (`--strict` in the CLI turns this into a
    /// nonzero exit).
    pub fn degraded(&self) -> bool {
        self.faulted_chunks > 0 || self.degraded_shots > 0
    }

    /// Fraction of the run spent above the LER target.
    pub fn exceedance_fraction(&self) -> f64 {
        if self.trace.is_empty() {
            return 0.0;
        }
        self.ler_exceedances as f64 / self.trace.len() as f64
    }

    /// Maximum LER observed over the run.
    pub fn peak_ler(&self) -> f64 {
        self.trace.iter().map(|p| p.ler).fold(0.0, f64::max)
    }
}

/// Runs the runtime engine for `horizon_hours` with `steps` trace samples.
///
/// Pass `plan: None` for the no-calibration ablation; set
/// `config.enlarge = false` for the isolation-without-enlargement ablation
/// (the middle curve of the paper's Fig. 10).
pub fn run_runtime(
    device: &DeviceModel,
    plan: Option<&CompiledPlan>,
    config: &CaliqecConfig,
    horizon_hours: f64,
    steps: usize,
) -> RuntimeReport {
    run_runtime_with_faults(device, plan, config, horizon_hours, steps, None)
}

/// [`run_runtime`] with an explicit decoder fault-injection plan armed on
/// every Monte-Carlo measurement (chaos testing; see
/// [`caliqec_match::FaultPlan`]). The engine recovers injected faults on
/// its degradation ladder, so the trace stays bit-identical to the
/// fault-free run; the report's `faulted_chunks` / `retried_chunks` /
/// `degraded_shots` counters record what happened.
pub fn run_runtime_with_faults(
    device: &DeviceModel,
    plan: Option<&CompiledPlan>,
    config: &CaliqecConfig,
    horizon_hours: f64,
    steps: usize,
    faults: Option<&FaultPlan>,
) -> RuntimeReport {
    run_runtime_observed(
        device,
        plan,
        config,
        horizon_hours,
        steps,
        faults,
        &ObsSink::disabled(),
    )
}

/// [`run_runtime_with_faults`] with an observability sink attached to every
/// Monte-Carlo measurement engine. The sink is passive: it never steers the
/// engine, so the trace is bit-identical whether `obs` is enabled or
/// disabled — only the sink's metrics, histograms, and journal differ.
/// Each trace-point measurement registers as one engine run in the sink.
#[allow(clippy::too_many_arguments)]
pub fn run_runtime_observed(
    device: &DeviceModel,
    plan: Option<&CompiledPlan>,
    config: &CaliqecConfig,
    horizon_hours: f64,
    steps: usize,
    faults: Option<&FaultPlan>,
    obs: &ObsSink,
) -> RuntimeReport {
    assert!(steps > 0 && horizon_hours > 0.0);
    let d = config.distance;
    let ler_target = ler(d, config.p_tar);
    let mut last_cal = vec![0.0f64; device.gates.len()];
    let mut report = RuntimeReport {
        ler_target,
        ..RuntimeReport::default()
    };

    // Precompute batch activity windows: (start, end, gates, isolation).
    struct Window<'p> {
        start: f64,
        end: f64,
        gates: &'p [usize],
        isolation: &'p [DeformInstruction],
        distance_loss: usize,
        counted: bool,
    }
    let mut windows: Vec<Window> = Vec::new();
    if let Some(plan) = plan {
        let t_cali = plan.t_cali_hours();
        let intervals = (horizon_hours / t_cali).ceil() as usize;
        for m in 1..=intervals {
            let mut cursor = (m - 1) as f64 * t_cali;
            for batch in plan.batches_in_interval(m) {
                windows.push(Window {
                    start: cursor,
                    end: cursor + batch.duration_hours,
                    gates: &batch.gates,
                    isolation: &batch.isolation,
                    distance_loss: batch.distance_loss,
                    counted: false,
                });
                cursor += batch.duration_hours;
            }
        }
    }

    // Cache the deformed layout per active window index to avoid rebuilding.
    let mut cached: Option<(usize, PatchLayout)> = None;
    // Drift-aware decoding: one reference matching graph per layout window,
    // incrementally reweighted to each trace point's rates. Keyed like the
    // layout cache (`None` = pristine patch).
    let mut ref_graph: Option<(Option<usize>, MatchingGraph)> = None;
    let pristine = DeformedPatch::new(config.lattice, d, d);
    let pristine_layout = pristine.layout().expect("pristine patch valid");
    let pristine_qubits = pristine_layout.num_physical_qubits();

    let dt = horizon_hours / steps as f64;
    for k in 0..steps {
        let t = (k as f64 + 0.5) * dt;
        // Complete calibrations whose window has ended.
        for w in windows.iter_mut() {
            if !w.counted && w.end <= t {
                for &g in w.gates {
                    last_cal[g] = w.end;
                }
                report.calibrations += w.gates.len();
                w.counted = true;
            }
        }
        // Active window, if any.
        let active = windows.iter().position(|w| w.start <= t && t < w.end);
        let (distance, qubits, calibrating) = match active {
            None => {
                cached = None;
                (d, pristine_qubits, 0)
            }
            Some(wi) => {
                let w = &windows[wi];
                if cached.as_ref().map(|(i, _)| *i) != Some(wi) {
                    cached = Some((wi, deformed_layout(config, &w.isolation.to_vec())));
                }
                let (_, layout) = cached.as_ref().expect("cache filled above");
                let _ = w.distance_loss;
                (
                    code_distance(layout).min(),
                    layout.num_physical_qubits(),
                    w.gates.len(),
                )
            }
        };
        // Mean drifted error across gates.
        let mean_p = device
            .gates
            .iter()
            .enumerate()
            .map(|(g, info)| info.drift.p_at(t - last_cal[g]).min(0.3))
            .sum::<f64>()
            / device.gates.len() as f64;
        let measured_ler = (config.mc_shots > 0).then(|| {
            let layout = cached.as_ref().map(|(_, l)| l).unwrap_or(&pristine_layout);
            let run = if config.drift_aware {
                measure_point_ler_drift_aware(
                    layout,
                    mean_p,
                    config,
                    k as u64,
                    faults,
                    obs,
                    active,
                    &mut ref_graph,
                )
            } else {
                measure_point_ler(layout, mean_p, config, k as u64, faults, obs)
            };
            report.faulted_chunks += run.faulted_chunks;
            report.retried_chunks += run.retried_chunks;
            report.degraded_shots += run.degraded_shots;
            report.reweight_seconds += run.reweight_seconds;
            if config.rare_event && !config.drift_aware {
                report.rare_shots += run.estimate.shots;
                report.rare_ess += run.ess;
                report.rare_max_ci = report.rare_max_ci.max(run.ci_halfwidth);
            }
            // Weighted LER: bit-identical to `estimate.per_shot()` on plain
            // (unweighted) runs, so non-rare traces are unchanged byte for
            // byte.
            run.ler()
        });
        let point = TracePoint {
            hours: t,
            mean_p,
            distance,
            physical_qubits: qubits,
            ler: ler(distance, mean_p),
            measured_ler,
            calibrating,
        };
        if point.ler > ler_target {
            report.ler_exceedances += 1;
        }
        report.max_physical_qubits = report.max_physical_qubits.max(qubits);
        report.trace.push(point);
    }
    report
}

/// Applies a batch's isolation to a fresh patch (plus enlargement when
/// configured) and returns the resulting layout.
fn deformed_layout(config: &CaliqecConfig, isolation: &Vec<DeformInstruction>) -> PatchLayout {
    let mut patch = DeformedPatch::new(config.lattice, config.distance, config.distance);
    for instr in isolation {
        // Individual isolations may fail (e.g. the qubit fell on a logical
        // path after earlier holes); skip those — the runtime defers that
        // gate to the next interval.
        let _ = patch.apply(*instr);
    }
    if config.enlarge {
        // Dynamic code enlargement: grow alternately until the distance is
        // restored (bounded by Δd growth steps per side).
        for i in 0..(2 * config.delta_d) {
            let layout = patch.layout().expect("journal remains valid");
            if code_distance(&layout).min() >= config.distance {
                break;
            }
            let side = if i % 2 == 0 {
                Side::Right
            } else {
                Side::Bottom
            };
            let _ = patch.apply(DeformInstruction::PatchQAd { side });
        }
    }
    patch.layout().expect("journal remains valid")
}

/// Measures the LER of one trace point's layout with the parallel engine:
/// a `distance`-round memory experiment under uniform noise at the
/// instant's mean drifted error rate. The base seed is derived from the
/// trace-point index alone, so the trace is reproducible and independent
/// of `config.threads`.
///
/// With `config.rare_event` set the measurement runs under importance
/// sampling at `config.boost_beta` instead: `mc_shots` becomes the shot
/// *ceiling* and the engine's CI stopping rule (at `config.target_rse`)
/// may end the run early at a deterministic chunk prefix. A rare run with
/// `boost_beta == 1` and `target_rse <= 0` schedules the identical chunk
/// plan over the same seeds and therefore reproduces the plain trace bit
/// for bit.
fn measure_point_ler(
    layout: &PatchLayout,
    mean_p: f64,
    config: &CaliqecConfig,
    point_index: u64,
    faults: Option<&FaultPlan>,
    obs: &ObsSink,
) -> caliqec_match::EngineRun {
    let noise = NoiseModel::uniform(mean_p.clamp(1e-9, 0.3));
    let rounds = config.distance.max(1);
    let mem = memory_circuit(layout, &noise, rounds, MemoryBasis::Z);
    let graph = graph_for_circuit(&mem.circuit);
    let mut engine = LerEngine::new(config.threads).with_obs(obs.clone());
    if let Some(plan) = faults {
        engine = engine.with_faults(plan.clone());
    }
    let factory = || UnionFindDecoder::new(graph.clone());
    if config.rare_event {
        // A quarter of the budget must decode before the CI rule may fire,
        // so a lucky early chunk can never stop a run on noise alone.
        let min_shots = (config.mc_shots / 4).max(256).min(config.mc_shots);
        return engine.estimate_rare_circuit(
            &mem.circuit,
            &factory,
            RareOptions {
                boost_beta: config.boost_beta,
                target_rse: config.target_rse.max(0.0),
                min_shots,
                max_shots: config.mc_shots,
                ..RareOptions::default()
            },
            chunk_seed(0xCA11_0EC5, point_index),
        );
    }
    engine.estimate_circuit(
        &mem.circuit,
        &factory,
        SampleOptions {
            min_shots: config.mc_shots,
            ..SampleOptions::default()
        },
        chunk_seed(0xCA11_0EC5, point_index),
    )
}

/// Calibration-aware variant of [`measure_point_ler`]: the matching graph
/// is extracted once per layout window at the freshly-calibrated rate `p0`
/// and incrementally reweighted to the instant's mean drifted rate via a
/// single-epoch schedule, instead of re-extracting a detector error model
/// at every trace point. Because the per-point noise is uniform, the
/// reweighted graph is bit-identical to a freshly extracted one, so the
/// measured trace matches [`measure_point_ler`] exactly; only the decode
/// setup cost (reported as `reweight_seconds`) differs. The sampled
/// circuit is still regenerated per point — physical noise must drift even
/// when the decoder updates incrementally.
#[allow(clippy::too_many_arguments)]
fn measure_point_ler_drift_aware(
    layout: &PatchLayout,
    mean_p: f64,
    config: &CaliqecConfig,
    point_index: u64,
    faults: Option<&FaultPlan>,
    obs: &ObsSink,
    window: Option<usize>,
    ref_graph: &mut Option<(Option<usize>, MatchingGraph)>,
) -> caliqec_match::EngineRun {
    let p = mean_p.clamp(1e-9, 0.3);
    let rounds = config.distance.max(1);
    let mem = memory_circuit(layout, &NoiseModel::uniform(p), rounds, MemoryBasis::Z);
    if ref_graph.as_ref().map(|(k, _)| *k) != Some(window) {
        let p_ref = config.p0.clamp(1e-9, 0.3);
        let ref_mem = memory_circuit(layout, &NoiseModel::uniform(p_ref), rounds, MemoryBasis::Z);
        *ref_graph = Some((window, graph_for_circuit(&ref_mem.circuit)));
    }
    let (_, graph) = ref_graph.as_ref().expect("cache filled above");
    let mut engine = LerEngine::new(config.threads).with_obs(obs.clone());
    if let Some(plan) = faults {
        engine = engine.with_faults(plan.clone());
    }
    let mut schedule = EpochSchedule::new(1.0);
    schedule.push(0.0, RateTable::uniform(p));
    engine.estimate_epochs(
        &CompiledCircuit::new(&mem.circuit),
        graph,
        &|g: &MatchingGraph| UnionFindDecoder::new(g.clone()),
        &schedule,
        SampleOptions {
            min_shots: config.mc_shots,
            ..SampleOptions::default()
        },
        chunk_seed(0xCA11_0EC5, point_index),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, Preparation};
    use caliqec_device::DeviceConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(enlarge: bool) -> (DeviceModel, CompiledPlan, CaliqecConfig) {
        let mut rng = StdRng::seed_from_u64(33);
        let device = DeviceModel::synthetic(
            &DeviceConfig {
                rows: 5,
                cols: 5,
                ..DeviceConfig::default()
            },
            &mut rng,
        );
        let config = CaliqecConfig {
            distance: 5,
            enlarge,
            ..CaliqecConfig::default()
        };
        let prep = Preparation::run(&device, &mut rng);
        let plan = compile(&device, &prep, &config, &mut rng);
        (device, plan, config)
    }

    #[test]
    fn no_calibration_ler_diverges() {
        let (device, _, config) = setup(true);
        let report = run_runtime(&device, None, &config, 48.0, 96);
        let first = report.trace.first().unwrap().ler;
        let last = report.trace.last().unwrap().ler;
        assert!(last > first * 100.0, "LER must grow: {first:e} -> {last:e}");
        assert_eq!(report.calibrations, 0);
    }

    #[test]
    fn calibration_bounds_mean_error() {
        let (device, plan, config) = setup(true);
        let horizon = 48.0;
        let with = run_runtime(&device, Some(&plan), &config, horizon, 96);
        let without = run_runtime(&device, None, &config, horizon, 96);
        assert!(with.calibrations > 0);
        let mean_with = with.trace.iter().map(|p| p.mean_p).sum::<f64>() / with.trace.len() as f64;
        let mean_without =
            without.trace.iter().map(|p| p.mean_p).sum::<f64>() / without.trace.len() as f64;
        assert!(
            mean_with < mean_without / 2.0,
            "calibrated {mean_with:e} vs uncalibrated {mean_without:e}"
        );
    }

    #[test]
    fn isolation_without_enlargement_loses_distance() {
        let (device, plan, config) = setup(false);
        let report = run_runtime(&device, Some(&plan), &config, 24.0, 200);
        let min_d = report.trace.iter().map(|p| p.distance).min().unwrap();
        assert!(
            min_d < config.distance,
            "isolation should dent the distance (min {min_d})"
        );
    }

    #[test]
    fn monte_carlo_trace_is_thread_count_independent() {
        let (device, plan, mut config) = setup(true);
        config.mc_shots = 256;
        config.threads = 1;
        let a = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        config.threads = 2;
        let b = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        let ms_a: Vec<_> = a.trace.iter().map(|p| p.measured_ler).collect();
        let ms_b: Vec<_> = b.trace.iter().map(|p| p.measured_ler).collect();
        assert!(
            ms_a.iter().all(|m| m.is_some()),
            "mc_shots > 0 must measure"
        );
        assert_eq!(ms_a, ms_b, "trace must not depend on thread count");
    }

    #[test]
    fn injected_faults_leave_trace_bit_identical() {
        let (device, plan, mut config) = setup(true);
        config.mc_shots = 256;
        config.threads = 2;
        let clean = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        assert_eq!(clean.faulted_chunks, 0);
        assert_eq!(clean.degraded_shots, 0);
        assert!(!clean.degraded());
        let faults = FaultPlan::new().panic_at(0);
        let chaos = run_runtime_with_faults(&device, Some(&plan), &config, 8.0, 4, Some(&faults));
        let ms_clean: Vec<_> = clean.trace.iter().map(|p| p.measured_ler).collect();
        let ms_chaos: Vec<_> = chaos.trace.iter().map(|p| p.measured_ler).collect();
        assert_eq!(ms_clean, ms_chaos, "ladder retry must preserve the trace");
        // Chunk 0 faults once per measured trace point.
        assert_eq!(chaos.faulted_chunks, chaos.trace.len());
        assert_eq!(chaos.faulted_chunks, chaos.retried_chunks);
        assert!(chaos.degraded_shots > 0);
        assert!(chaos.degraded());
    }

    #[test]
    fn drift_aware_trace_is_bit_identical_to_plain() {
        let (device, plan, mut config) = setup(true);
        config.mc_shots = 256;
        config.threads = 2;
        let plain = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        assert_eq!(plain.reweight_seconds, 0.0);
        config.drift_aware = true;
        let aware = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        let ms_plain: Vec<_> = plain.trace.iter().map(|p| p.measured_ler).collect();
        let ms_aware: Vec<_> = aware.trace.iter().map(|p| p.measured_ler).collect();
        assert_eq!(
            ms_plain, ms_aware,
            "incremental reweighting must not change the measured trace"
        );
        assert!(
            aware.reweight_seconds > 0.0,
            "drift-aware runs must account their reweight time"
        );
    }

    #[test]
    fn observed_runtime_is_bit_identical_and_counts_runs() {
        let (device, plan, mut config) = setup(true);
        config.mc_shots = 256;
        config.threads = 2;
        let plain = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        let sink = ObsSink::enabled();
        let observed = run_runtime_observed(&device, Some(&plan), &config, 8.0, 4, None, &sink);
        let ms_plain: Vec<_> = plain.trace.iter().map(|p| p.measured_ler).collect();
        let ms_obs: Vec<_> = observed.trace.iter().map(|p| p.measured_ler).collect();
        assert_eq!(ms_plain, ms_obs, "observation must not perturb the trace");
        let snap = sink.snapshot();
        assert_eq!(
            snap.counter("runs_started"),
            observed.trace.len() as u64,
            "one engine run per measured trace point"
        );
        assert!(snap.counter("chunks_finished") > 0);
        assert!(!snap.events.is_empty());
    }

    #[test]
    fn degenerate_rare_trace_is_bit_identical_to_plain() {
        let (device, plan, mut config) = setup(true);
        config.mc_shots = 256;
        config.threads = 2;
        let plain = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        assert_eq!(plain.rare_shots, 0, "plain runs keep rare counters zero");
        config.rare_event = true;
        config.boost_beta = 1.0;
        config.target_rse = 0.0;
        let rare = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        let ms_plain: Vec<_> = plain.trace.iter().map(|p| p.measured_ler).collect();
        let ms_rare: Vec<_> = rare.trace.iter().map(|p| p.measured_ler).collect();
        assert_eq!(
            ms_plain, ms_rare,
            "beta=1, target_rse=0 must reproduce the plain trace bit for bit"
        );
        // Unit weights: the ESS of every measurement equals its shot count.
        assert_eq!(rare.rare_ess, rare.rare_shots as f64);
        assert!(rare.rare_shots > 0);
        assert!(rare.rare_max_ci.is_finite());
    }

    #[test]
    fn boosted_rare_trace_is_thread_count_independent_and_healthy() {
        let (device, plan, mut config) = setup(true);
        config.mc_shots = 2_048;
        config.threads = 1;
        config.rare_event = true;
        config.boost_beta = 4.0;
        config.target_rse = 0.2;
        let a = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        config.threads = 2;
        let b = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        let ms_a: Vec<_> = a.trace.iter().map(|p| p.measured_ler).collect();
        let ms_b: Vec<_> = b.trace.iter().map(|p| p.measured_ler).collect();
        assert!(ms_a.iter().all(|m| m.is_some()));
        assert_eq!(ms_a, ms_b, "rare trace must not depend on thread count");
        assert_eq!((a.rare_shots, a.rare_ess), (b.rare_shots, b.rare_ess));
        assert!(a.rare_ess > 0.0 && a.rare_ess <= a.rare_shots as f64);
        assert!(a.rare_max_ci.is_finite());
    }

    #[test]
    fn model_only_trace_skips_measurement() {
        let (device, plan, config) = setup(true);
        let report = run_runtime(&device, Some(&plan), &config, 8.0, 4);
        assert!(report.trace.iter().all(|p| p.measured_ler.is_none()));
    }

    #[test]
    fn enlargement_restores_distance_at_cost_of_qubits() {
        let (device, plan, config) = setup(true);
        let report = run_runtime(&device, Some(&plan), &config, 24.0, 200);
        let pristine = DeformedPatch::new(config.lattice, config.distance, config.distance)
            .layout()
            .unwrap()
            .num_physical_qubits();
        // During calibration the patch uses extra qubits...
        assert!(report.max_physical_qubits >= pristine);
        // ...and the distance never drops below target when enlargement is on
        // (allowing the engine one step of slack at window boundaries).
        let low_points = report
            .trace
            .iter()
            .filter(|p| p.distance < config.distance)
            .count();
        assert!(
            low_points * 10 <= report.trace.len(),
            "distance below target in {low_points}/{} points",
            report.trace.len()
        );
    }
}
