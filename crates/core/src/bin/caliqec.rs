//! `caliqec` — command-line front end to the CaliQEC framework.
//!
//! ```text
//! caliqec characterize [--rows N] [--cols N] [--seed S]
//! caliqec plan         [--rows N] [--cols N] [--distance D] [--delta-d K] [--p-tar P]
//! caliqec simulate     [--rows N] [--cols N] [--distance D] [--hours H] [--no-enlarge]
//!                      [--strict] [--faults SPEC] [--drift-aware] [--quiet]
//!                      [--rare-event] [--boost-beta B] [--target-rse R]
//!                      [--trace-csv FILE] [--metrics-out FILE] [--trace-out FILE]
//!                      [--prom-out FILE]
//! caliqec draw         [--distance D] [--lattice square|heavy-hex] [--hole R,C ...]
//! caliqec serve        [--tenants N] [--distance D] [--windows W] [--rounds R]
//!                      [--workers T] [--queue-bound Q] [--deadline-us U]
//!                      [--gap-us G] [--seed S] [--p P] [--cluster]
//!                      [--cluster-gate-threshold X] [--strict] [--faults SPEC]
//!                      [--health-out FILE] [--metrics-out FILE] [--prom-out FILE]
//! caliqec stream-smoke [same flags; tiny-budget preset]
//! caliqec help
//! ```
//!
//! Every subcommand builds a synthetic device (the substitution for hardware
//! access documented in DESIGN.md), so the tool runs self-contained.
//!
//! Errors map to distinct exit codes so scripts can tell failure classes
//! apart: 1 runtime, 2 usage, 3 validation, 4 I/O, 5 degraded-under-strict.

use caliqec::{compile, run_runtime_observed, CaliqecConfig, Preparation};
use caliqec_code::{
    code_distance, data_coord, draw_layout, DeformInstruction, DeformedPatch, Lattice,
};
use caliqec_device::{DeviceConfig, DeviceModel};
use caliqec_match::{
    graph_for_circuit, loopback_serve, FaultPlan, LoopbackOptions, StreamConfig, TenantSpec,
    Tiered, UnionFindDecoder,
};
use caliqec_obs::{
    render_chrome_trace, render_json, render_prometheus, render_summary, verbosity, ObsSink,
    Verbosity,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

/// Classified CLI failures; each class owns a distinct exit code.
enum CliError {
    /// Anything that went wrong while executing an otherwise-valid request
    /// (exit 1).
    Runtime(String),
    /// Malformed command line or environment configuration (exit 2).
    Usage(String),
    /// Structurally invalid inputs rejected by the framework's validators
    /// (exit 3).
    Validation(String),
    /// Filesystem failures, e.g. an unwritable `--metrics-out` path
    /// (exit 4).
    Io(String),
    /// `--strict` was set and the run needed the decoder degradation
    /// ladder (exit 5).
    Degraded(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Runtime(_) => ExitCode::from(1),
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Validation(_) => ExitCode::from(3),
            CliError::Io(_) => ExitCode::from(4),
            CliError::Degraded(_) => ExitCode::from(5),
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Runtime(m)
            | CliError::Usage(m)
            | CliError::Validation(m)
            | CliError::Io(m)
            | CliError::Degraded(m) => m,
        }
    }
}

struct Args {
    flags: HashMap<String, String>,
    holes: Vec<(usize, usize)>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut flags = HashMap::new();
    let mut holes = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {a:?}"))?;
        if key == "no-enlarge"
            || key == "probe"
            || key == "strict"
            || key == "drift-aware"
            || key == "rare-event"
            || key == "quiet"
        {
            flags.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?
            .clone();
        if key == "hole" {
            let (r, c) = value
                .split_once(',')
                .ok_or_else(|| format!("--hole wants R,C, got {value:?}"))?;
            holes.push((
                r.trim().parse().map_err(|_| format!("bad row {r:?}"))?,
                c.trim().parse().map_err(|_| format!("bad col {c:?}"))?,
            ));
        } else {
            flags.insert(key.to_string(), value);
        }
    }
    Ok(Args { flags, holes })
}

impl Args {
    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants an integer")),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants a number")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants an integer")),
        }
    }
}

fn device_from(args: &Args) -> Result<(DeviceModel, StdRng), CliError> {
    let rows = args.usize_or("rows", 5).map_err(CliError::Usage)?;
    let cols = args.usize_or("cols", 5).map_err(CliError::Usage)?;
    let mut rng = StdRng::seed_from_u64(args.u64_or("seed", 0).map_err(CliError::Usage)?);
    let device = DeviceModel::synthetic(
        &DeviceConfig {
            rows,
            cols,
            ..DeviceConfig::default()
        },
        &mut rng,
    );
    Ok((device, rng))
}

fn cmd_characterize(args: &Args) -> Result<(), CliError> {
    let (device, mut rng) = device_from(args)?;
    let prep = if args.flags.contains_key("probe") {
        let threads = args.usize_or("threads", 0).map_err(CliError::Usage)?;
        Preparation::run_with_probes(&device, threads, &mut rng)
    } else {
        Preparation::run(&device, &mut rng)
    };
    println!("gate  kind            T_drift(h)  T_cali(min)  fit-rms");
    for (i, c) in prep.characterization.iter().enumerate() {
        println!(
            "{i:<5} {:<15} {:>9.2} {:>12.1} {:>8.4}",
            format!("{:?}", device.gates[i].kind),
            c.estimated.t_drift_hours,
            c.t_cali_hours * 60.0,
            c.fit_residual,
        );
    }
    if let Some(probes) = &prep.crosstalk {
        println!("\ngate  measured nbr(g)");
        for p in probes {
            println!("{:<5} {:?}", p.gate, p.nbr);
        }
    }
    Ok(())
}

/// Parses `--distance`, rejecting values the patch builders cannot
/// represent (they assert on dimensions < 2) with a typed validation
/// error instead of a caught panic.
fn distance_flag(args: &Args) -> Result<usize, CliError> {
    let d = args.usize_or("distance", 5).map_err(CliError::Usage)?;
    if d < 2 {
        return Err(CliError::Validation(format!(
            "--distance must be at least 2, got {d}"
        )));
    }
    Ok(d)
}

fn cmd_plan(args: &Args) -> Result<(), CliError> {
    let (device, mut rng) = device_from(args)?;
    let config = CaliqecConfig {
        distance: distance_flag(args)?,
        delta_d: args.usize_or("delta-d", 4).map_err(CliError::Usage)?,
        p_tar: args.f64_or("p-tar", 5e-3).map_err(CliError::Usage)?,
        ..CaliqecConfig::default()
    };
    let prep = Preparation::run(&device, &mut rng);
    let plan = compile(&device, &prep, &config, &mut rng);
    println!(
        "T_Cali = {:.2} h, {} groups, {} calibration ops per 24 h",
        plan.t_cali_hours(),
        plan.groups.groups.len(),
        plan.operations_over(24.0)
    );
    for (k, batches) in &plan.batches {
        let gates: usize = batches.iter().map(|b| b.gates.len()).sum();
        let time: f64 = batches.iter().map(|b| b.duration_hours).sum();
        let delta = plan.chosen_delta_d[k];
        println!(
            "group {k}: every {:.2} h — {gates} gates in {} batches, {:.1} min, Δd = {delta}",
            *k as f64 * plan.t_cali_hours(),
            batches.len(),
            time * 60.0,
        );
    }
    Ok(())
}

/// Resolves the decoder fault-injection plan for `simulate`: the
/// `--faults SPEC` flag wins over the `CALIQEC_FAULTS` environment
/// variable; both use the `kind@chunk,...` grammar of
/// [`FaultPlan::parse`].
fn fault_plan_from(args: &Args) -> Result<Option<FaultPlan>, CliError> {
    if let Some(spec) = args.flags.get("faults") {
        let plan = FaultPlan::parse(spec)
            .map_err(|e| CliError::Usage(format!("--faults {spec:?}: {e}")))?;
        return Ok(Some(plan));
    }
    FaultPlan::from_env().map_err(|e| CliError::Usage(format!("CALIQEC_FAULTS: {e}")))
}

/// Silences the default panic hook for the engine's and the streaming
/// service's named worker threads while faults are armed, so injected
/// (caught and retried) panics don't spray backtraces over the trace
/// output. Panics on any other thread still print normally.
fn quiet_worker_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("caliqec-ler-") || n.starts_with("caliqec-stream-"));
        if !worker {
            default_hook(info);
        }
    }));
}

fn cmd_simulate(args: &Args) -> Result<(), CliError> {
    let (device, mut rng) = device_from(args)?;
    let config = CaliqecConfig {
        distance: distance_flag(args)?,
        delta_d: args.usize_or("delta-d", 4).map_err(CliError::Usage)?,
        enlarge: !args.flags.contains_key("no-enlarge"),
        threads: args.usize_or("threads", 0).map_err(CliError::Usage)?,
        mc_shots: args.usize_or("mc-shots", 0).map_err(CliError::Usage)?,
        drift_aware: args.flags.contains_key("drift-aware"),
        rare_event: args.flags.contains_key("rare-event"),
        boost_beta: args.f64_or("boost-beta", 4.0).map_err(CliError::Usage)?,
        target_rse: args.f64_or("target-rse", 0.1).map_err(CliError::Usage)?,
        ..CaliqecConfig::default()
    };
    if config.rare_event {
        if config.mc_shots == 0 {
            return Err(CliError::Usage(
                "--rare-event measures trace points by importance sampling; \
                 pass --mc-shots S > 0 as the shot budget"
                    .to_string(),
            ));
        }
        if config.drift_aware {
            return Err(CliError::Usage(
                "--rare-event and --drift-aware are mutually exclusive \
                 (the epoch-reweighted decode path samples at nominal rates)"
                    .to_string(),
            ));
        }
        if !config.boost_beta.is_finite() || config.boost_beta < 1.0 {
            return Err(CliError::Usage(format!(
                "--boost-beta wants a finite factor >= 1, got {}",
                config.boost_beta
            )));
        }
        if !config.target_rse.is_finite() {
            return Err(CliError::Usage(
                "--target-rse wants a finite number (<= 0 disables CI stopping)".to_string(),
            ));
        }
    }
    let hours = args.f64_or("hours", 24.0).map_err(CliError::Usage)?;
    if hours.is_nan() || hours <= 0.0 {
        return Err(CliError::Usage(format!(
            "--hours wants a positive number, got {hours}"
        )));
    }
    let strict = args.flags.contains_key("strict");
    let faults = fault_plan_from(args)?;
    if faults.is_some() && config.mc_shots == 0 {
        return Err(CliError::Usage(
            "fault injection needs Monte-Carlo sampling; pass --mc-shots S > 0".to_string(),
        ));
    }
    if faults.is_some() {
        quiet_worker_panics();
    }
    // The observability sink stays disabled (zero-cost) unless an export
    // was requested; the trace is bit-identical either way.
    let want_obs = ["metrics-out", "trace-out", "prom-out"]
        .iter()
        .any(|k| args.flags.contains_key(*k));
    let sink = ObsSink::new(want_obs);
    if want_obs && config.mc_shots == 0 {
        return Err(CliError::Usage(
            "observability exports record the Monte-Carlo engine; pass --mc-shots S > 0"
                .to_string(),
        ));
    }
    let prep = Preparation::run(&device, &mut rng);
    let plan = compile(&device, &prep, &config, &mut rng);
    let report = run_runtime_observed(
        &device,
        Some(&plan),
        &config,
        hours,
        96,
        faults.as_ref(),
        &sink,
    );
    println!("hours  mean_p    distance  qubits  LER       measured  calibrating");
    for p in report.trace.iter().step_by(8) {
        let measured = p
            .measured_ler
            .map_or_else(|| "       -".to_string(), |m| format!("{m:.2e}"));
        println!(
            "{:>5.1}  {:.2e}  {:>8}  {:>6}  {:.2e}  {measured}  {:>3}",
            p.hours, p.mean_p, p.distance, p.physical_qubits, p.ler, p.calibrating
        );
    }
    println!(
        "\n{} calibrations; peak LER {:.2e}; {:.1}% of the run above target; peak qubits {}",
        report.calibrations,
        report.peak_ler(),
        report.exceedance_fraction() * 100.0,
        report.max_physical_qubits
    );
    let loud = verbosity::loud(Verbosity::Info);
    if loud && (report.faulted_chunks > 0 || report.degraded_shots > 0) {
        // Diagnostics go to stderr so the stdout trace stays bit-identical
        // to a fault-free run.
        eprintln!(
            "decoder degradation: {} faulted chunks, {} retries, {} shots on degraded rungs",
            report.faulted_chunks, report.retried_chunks, report.degraded_shots
        );
    }
    if loud && config.drift_aware {
        // Timing is machine-dependent; stderr keeps stdout reproducible.
        eprintln!(
            "drift-aware decoding: {:.3}s reweighting cached matching graphs",
            report.reweight_seconds
        );
    }
    if loud && config.rare_event {
        // Estimator health goes to stderr so the stdout trace of a β=1,
        // target-rse 0 run stays byte-identical to the plain-MC run.
        eprintln!(
            "rare-event estimation: beta {}, {} shots decoded, ess {:.1}, max ci halfwidth {:.3e}",
            config.boost_beta, report.rare_shots, report.rare_ess, report.rare_max_ci
        );
    }
    if let Some(path) = args.flags.get("trace-csv") {
        write_trace_csv(path, &report)
            .map_err(|e| CliError::Io(format!("cannot write trace to {path:?}: {e}")))?;
        if loud {
            eprintln!("trace CSV written to {path}");
        }
    }
    if sink.is_enabled() {
        let snap = sink.snapshot();
        if let Some(path) = args.flags.get("metrics-out") {
            write_text(path, &render_json(&snap))?;
            if loud {
                eprintln!("metrics snapshot written to {path}");
            }
        }
        if let Some(path) = args.flags.get("trace-out") {
            write_text(path, &render_chrome_trace(&snap))?;
            if loud {
                eprintln!("Chrome trace written to {path} (open in ui.perfetto.dev)");
            }
        }
        if let Some(path) = args.flags.get("prom-out") {
            write_text(path, &render_prometheus(&snap))?;
            if loud {
                eprintln!("Prometheus exposition written to {path}");
            }
        }
        if loud {
            eprint!("{}", render_summary(&snap));
        }
    }
    if strict && report.degraded() {
        return Err(CliError::Degraded(format!(
            "--strict: run needed the degradation ladder ({} faulted chunks, {} degraded shots)",
            report.faulted_chunks, report.degraded_shots
        )));
    }
    Ok(())
}

/// Writes one rendered export to `path`, classifying failures as I/O
/// errors (exit 4).
fn write_text(path: &str, body: &str) -> Result<(), CliError> {
    std::fs::write(path, body).map_err(|e| CliError::Io(format!("cannot write {path:?}: {e}")))
}

/// Writes the runtime trace as CSV, one row per trace point.
fn write_trace_csv(path: &str, report: &caliqec::RuntimeReport) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "hours,mean_p,distance,physical_qubits,ler,measured_ler,calibrating"
    )?;
    for p in &report.trace {
        let measured = p.measured_ler.map_or(String::new(), |m| format!("{m:e}"));
        writeln!(
            out,
            "{:.4},{:e},{},{},{:e},{measured},{}",
            p.hours, p.mean_p, p.distance, p.physical_qubits, p.ler, p.calibrating
        )?;
    }
    out.flush()
}

fn cmd_draw(args: &Args) -> Result<(), CliError> {
    let d = distance_flag(args)?;
    let lattice = match args.flags.get("lattice").map(String::as_str) {
        None | Some("square") => Lattice::Square,
        Some("heavy-hex") | Some("heavyhex") => Lattice::HeavyHex,
        Some(other) => return Err(CliError::Usage(format!("unknown lattice {other:?}"))),
    };
    let mut patch = DeformedPatch::new(lattice, d, d);
    for &(r, c) in &args.holes {
        patch
            .apply(DeformInstruction::DataQRm {
                qubit: data_coord(r, c),
            })
            .map_err(|e| CliError::Validation(format!("cannot isolate ({r},{c}): {e}")))?;
    }
    let layout = patch
        .layout()
        .map_err(|e| CliError::Validation(e.to_string()))?;
    println!("{}", draw_layout(&layout));
    let dist = code_distance(&layout);
    println!(
        "data qubits: {}, ancillas: {}, superstabilizers: {}, distance: z={} x={}",
        layout.data.len(),
        layout.ancillas().len(),
        layout.num_superstabilizers(),
        dist.z,
        dist.x
    );
    Ok(())
}

/// The decoder factory type the streaming service multiplexes: one
/// [`Tiered`] union-find stack per tenant, boxed so every tenant shares a
/// nameable factory type regardless of its captured graph.
type ServeFactory = Tiered<Box<dyn Fn() -> UnionFindDecoder + Send + Sync>>;

/// `caliqec serve` / `caliqec stream-smoke`: run the streaming decode
/// service against deterministic loopback tenants. `smoke` shrinks the
/// defaults to a tiny budget suitable for CI.
fn cmd_serve(args: &Args, smoke: bool) -> Result<(), CliError> {
    use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};

    let tenants = args
        .usize_or("tenants", if smoke { 2 } else { 4 })
        .map_err(CliError::Usage)?;
    if tenants == 0 {
        return Err(CliError::Validation("--tenants must be positive".into()));
    }
    let d = args
        .usize_or("distance", 3)
        .map_err(CliError::Usage)
        .and_then(|d| {
            if d < 2 {
                Err(CliError::Validation(format!(
                    "--distance must be at least 2, got {d}"
                )))
            } else {
                Ok(d)
            }
        })?;
    let windows = args
        .u64_or("windows", if smoke { 8 } else { 64 })
        .map_err(CliError::Usage)?;
    let rounds = args.usize_or("rounds", d).map_err(CliError::Usage)?;
    let workers = args
        .usize_or("workers", if smoke { 2 } else { 4 })
        .map_err(CliError::Usage)?;
    if workers == 0 {
        return Err(CliError::Validation("--workers must be positive".into()));
    }
    let queue_bound = args.usize_or("queue-bound", 4).map_err(CliError::Usage)?;
    if queue_bound == 0 {
        return Err(CliError::Validation(
            "--queue-bound must be positive".into(),
        ));
    }
    let deadline_us = args.u64_or("deadline-us", 0).map_err(CliError::Usage)?;
    let gap_us = args.u64_or("gap-us", 0).map_err(CliError::Usage)?;
    let seed = args.u64_or("seed", 0).map_err(CliError::Usage)?;
    let p = args.f64_or("p", 3e-3).map_err(CliError::Usage)?;
    if !(p.is_finite() && p > 0.0 && p < 0.5) {
        return Err(CliError::Validation(format!(
            "--p wants a probability in (0, 0.5), got {p}"
        )));
    }
    let gate_threshold = args
        .f64_or(
            "cluster-gate-threshold",
            caliqec_match::CLUSTER_GATE_MIN_MEAN_DEFECTS,
        )
        .map_err(CliError::Usage)?;
    let strict = args.flags.contains_key("strict");
    let faults = fault_plan_from(args)?;
    if faults.is_some() {
        quiet_worker_panics();
    }
    let want_obs = ["health-out", "metrics-out", "prom-out"]
        .iter()
        .any(|k| args.flags.contains_key(*k));
    let sink = ObsSink::new(want_obs);

    // One loopback tenant per logical patch: same code, per-tenant seed.
    let mem = memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(p),
        d,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    if rounds == 0 || rounds > graph.num_detectors() {
        return Err(CliError::Validation(format!(
            "--rounds must be in 1..={} for distance {d}",
            graph.num_detectors()
        )));
    }
    let specs: Vec<TenantSpec<ServeFactory>> = (0..tenants)
        .map(|_| {
            let g = graph.clone();
            let factory: Box<dyn Fn() -> UnionFindDecoder + Send + Sync> =
                Box::new(move || UnionFindDecoder::new(g.clone()));
            let mut tiered = Tiered::new(&graph, factory);
            if args.flags.contains_key("cluster") {
                tiered = tiered.with_cluster();
            }
            TenantSpec {
                factory: tiered.with_cluster_gate_threshold(gate_threshold),
                detectors: graph.num_detectors(),
            }
        })
        .collect();
    let circuits: Vec<_> = (0..tenants).map(|_| mem.circuit.clone()).collect();
    let config = StreamConfig {
        workers,
        queue_bound,
        deadline: (deadline_us > 0).then(|| std::time::Duration::from_micros(deadline_us)),
        faults,
        ..StreamConfig::default()
    };
    let opts = LoopbackOptions {
        windows_per_tenant: windows,
        rounds_per_window: rounds,
        gap: std::time::Duration::from_micros(gap_us),
        base_seed: seed,
    };
    let (report, driver) = loopback_serve(specs, &circuits, config, &opts, sink.clone())
        .map_err(|e| CliError::Validation(e.to_string()))?;
    let h = &report.health;
    println!(
        "serve: {tenants} tenants x {windows} windows (d={d}, {rounds} rounds/window), \
         {workers} workers, queue bound {queue_bound}"
    );
    println!(
        "decoded {} / shed {} / deferred {} windows; wedges {}, retries {}, queue peak {}",
        h.windows_decoded, h.windows_shed, h.windows_deferred, h.wedges, h.retries, h.queue_peak
    );
    println!(
        "round latency us: p50 {:.1}, p95 {:.1}, p99 {:.1}",
        h.round_latency_p50_us, h.round_latency_p95_us, h.round_latency_p99_us
    );
    println!("tenant  ingested  decoded  shed  deferred  rejected");
    for t in &h.tenants {
        println!(
            "{:>6}  {:>8}  {:>7}  {:>4}  {:>8}  {:>8}",
            t.tenant,
            t.rounds_ingested,
            t.rounds_decoded,
            t.rounds_shed,
            t.rounds_deferred,
            t.rounds_rejected
        );
    }
    println!(
        "scored {} shots, {} logical failures; {} windows rejected by backpressure",
        driver.shots_scored, driver.failures, driver.windows_rejected
    );
    // The accounting invariant is part of the service contract: surface a
    // violation as a runtime error, never silently.
    if h.rounds_pending() != 0 {
        return Err(CliError::Runtime(format!(
            "accounting violation: {} rounds ingested but never disposed",
            h.rounds_pending()
        )));
    }
    if let Some(path) = args.flags.get("health-out") {
        write_text(path, &h.to_json())?;
    }
    if sink.is_enabled() {
        let snap = sink.snapshot();
        if let Some(path) = args.flags.get("metrics-out") {
            write_text(path, &render_json(&snap))?;
        }
        if let Some(path) = args.flags.get("prom-out") {
            write_text(path, &render_prometheus(&snap))?;
        }
    }
    let degraded = h.windows_shed + h.windows_deferred + h.wedges > 0
        || h.tenants.iter().any(|t| t.rounds_rejected > 0);
    if strict && degraded {
        return Err(CliError::Degraded(format!(
            "--strict: service degraded ({} shed, {} deferred, {} wedges, {} windows rejected)",
            h.windows_shed, h.windows_deferred, h.wedges, driver.windows_rejected
        )));
    }
    Ok(())
}

const HELP: &str = "\
caliqec — in-situ qubit calibration for surface-code QEC

USAGE:
  caliqec characterize [--rows N] [--cols N] [--seed S] [--probe] [--threads T]
      Characterize a synthetic device (drift rates, calibration times);
      --probe additionally measures crosstalk neighbourhoods (Fig. 6).
  caliqec plan [--rows N] [--cols N] [--distance D] [--delta-d K] [--p-tar P]
      Compile the calibration plan (Algorithm 1 + adaptive batching).
  caliqec simulate [--rows N] [--cols N] [--distance D] [--hours H] [--no-enlarge]
                   [--threads T] [--mc-shots S] [--strict] [--faults SPEC]
                   [--drift-aware] [--rare-event] [--boost-beta B]
                   [--target-rse R] [--quiet] [--trace-csv FILE]
                   [--metrics-out FILE] [--trace-out FILE] [--prom-out FILE]
      Run the in-situ calibration runtime and print the LER trace.
      --drift-aware decodes each measured point by incrementally
      reweighting a cached matching graph to the drifted rates instead of
      re-extracting the error model (bit-identical trace, cheaper setup;
      reweight time is reported on stderr).
      --mc-shots S > 0 measures each trace point by Monte Carlo on the
      parallel LER engine; --threads T sets the worker count (default:
      the CALIQEC_THREADS environment variable, else all cores).
      --rare-event measures each trace point by importance sampling:
      fault channels fire at min(B*p, 1/2) (--boost-beta, default 4) and
      every shot carries its exact likelihood ratio, so --mc-shots
      becomes a shot ceiling and each measurement stops early once the
      95% CI half-width falls to --target-rse of the estimate (default
      0.1; <= 0 runs the full budget). --boost-beta 1 --target-rse 0
      reproduces the plain-MC trace byte for byte; estimator health
      (shots, ESS, max CI half-width) is reported on stderr.
      --faults SPEC (or the CALIQEC_FAULTS environment variable) injects
      decoder faults as kind@chunk[,kind@chunk...] with kinds panic,
      stall, corrupt, badweights; the engine recovers them on its
      degradation ladder and the summary reports the fallout.
      --strict exits with code 5 if any measurement was degraded.
      --trace-csv FILE writes the full LER trace as CSV.
      Observability (needs --mc-shots; recording is passive, the trace is
      bit-identical with it on or off):
      --metrics-out FILE writes a JSON snapshot of engine counters,
      latency histograms (p50/p95/p99), and the event journal.
      --trace-out FILE writes a Chrome trace-event JSON of chunk/fault/
      retry/reweight timelines; open it in ui.perfetto.dev or
      chrome://tracing.
      --prom-out FILE writes Prometheus text exposition format.
      --quiet silences stderr diagnostics and the metrics summary; the
      CALIQEC_LOG environment variable (quiet|info|debug) sets the same
      level when the flag is absent.
  caliqec draw [--distance D] [--lattice square|heavy-hex] [--hole R,C ...]
      Render a (deformed) patch as ASCII art.
  caliqec serve [--tenants N] [--distance D] [--windows W] [--rounds R]
                [--workers T] [--queue-bound Q] [--deadline-us U] [--gap-us G]
                [--seed S] [--p P] [--cluster] [--cluster-gate-threshold X]
                [--strict] [--faults SPEC] [--health-out FILE]
                [--metrics-out FILE] [--prom-out FILE] [--quiet]
      Run the streaming decode service against deterministic loopback
      tenants: each tenant replays a distance-D memory circuit round by
      round from seed chunk_seed(S, tenant) and the shared worker pool
      decodes the reassembled windows. --queue-bound Q bounds each
      tenant's ingress queue (full queues reject windows — backpressure);
      --deadline-us U arms the three-rung shed ladder (0 disables it);
      --gap-us G paces the open-loop arrival schedule. --faults SPEC (or
      CALIQEC_FAULTS) adds streaming injections slowtenant@T, delay@W,
      burst@T, wedge@W on top of the batch kinds. --health-out writes the
      ServiceHealth JSON snapshot (per-tenant round accounting + latency
      quantiles); --metrics-out / --prom-out export the observability
      sink. --strict exits 5 when any window was shed, deferred,
      rejected, or wedged. The ingested = decoded + shed + deferred
      round partition is asserted on every run.
  caliqec stream-smoke [same flags]
      `serve` with a tiny-budget preset (2 tenants, 8 windows) for CI.
  caliqec help

EXIT CODES:
  0 success   1 runtime error   2 usage error   3 invalid input
  4 I/O error 5 degraded run under --strict
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{HELP}");
        return ExitCode::from(2);
    };
    let args = match parse_args(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.flags.contains_key("quiet") {
        verbosity::set(Verbosity::Quiet);
    }
    // Unrecoverable framework panics (e.g. the LER engine exhausting its
    // degradation ladder) become classified runtime errors instead of an
    // abort, so scripts always see one of the documented exit codes.
    let dispatch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match cmd.as_str() {
        "characterize" => cmd_characterize(&args),
        "plan" => cmd_plan(&args),
        "simulate" => cmd_simulate(&args),
        "draw" => cmd_draw(&args),
        "serve" => cmd_serve(&args, false),
        "stream-smoke" => cmd_serve(&args, true),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?} (try `caliqec help`)"
        ))),
    }));
    let result = dispatch.unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "command panicked".to_string());
        Err(CliError::Runtime(msg))
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            e.exit_code()
        }
    }
}
