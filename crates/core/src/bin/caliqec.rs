//! `caliqec` — command-line front end to the CaliQEC framework.
//!
//! ```text
//! caliqec characterize [--rows N] [--cols N] [--seed S]
//! caliqec plan         [--rows N] [--cols N] [--distance D] [--delta-d K] [--p-tar P]
//! caliqec simulate     [--rows N] [--cols N] [--distance D] [--hours H] [--no-enlarge]
//! caliqec draw         [--distance D] [--lattice square|heavy-hex] [--hole R,C ...]
//! caliqec help
//! ```
//!
//! Every subcommand builds a synthetic device (the substitution for hardware
//! access documented in DESIGN.md), so the tool runs self-contained.

use caliqec::{compile, run_runtime, CaliqecConfig, Preparation};
use caliqec_code::{
    code_distance, data_coord, draw_layout, DeformInstruction, DeformedPatch, Lattice,
};
use caliqec_device::{DeviceConfig, DeviceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    flags: HashMap<String, String>,
    holes: Vec<(usize, usize)>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut flags = HashMap::new();
    let mut holes = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {a:?}"))?;
        if key == "no-enlarge" || key == "probe" {
            flags.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?
            .clone();
        if key == "hole" {
            let (r, c) = value
                .split_once(',')
                .ok_or_else(|| format!("--hole wants R,C, got {value:?}"))?;
            holes.push((
                r.trim().parse().map_err(|_| format!("bad row {r:?}"))?,
                c.trim().parse().map_err(|_| format!("bad col {c:?}"))?,
            ));
        } else {
            flags.insert(key.to_string(), value);
        }
    }
    Ok(Args { flags, holes })
}

impl Args {
    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants an integer")),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants a number")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants an integer")),
        }
    }
}

fn device_from(args: &Args) -> Result<(DeviceModel, StdRng), String> {
    let rows = args.usize_or("rows", 5)?;
    let cols = args.usize_or("cols", 5)?;
    let mut rng = StdRng::seed_from_u64(args.u64_or("seed", 0)?);
    let device = DeviceModel::synthetic(
        &DeviceConfig {
            rows,
            cols,
            ..DeviceConfig::default()
        },
        &mut rng,
    );
    Ok((device, rng))
}

fn cmd_characterize(args: &Args) -> Result<(), String> {
    let (device, mut rng) = device_from(args)?;
    let prep = if args.flags.contains_key("probe") {
        Preparation::run_with_probes(&device, args.usize_or("threads", 0)?, &mut rng)
    } else {
        Preparation::run(&device, &mut rng)
    };
    println!("gate  kind            T_drift(h)  T_cali(min)  fit-rms");
    for (i, c) in prep.characterization.iter().enumerate() {
        println!(
            "{i:<5} {:<15} {:>9.2} {:>12.1} {:>8.4}",
            format!("{:?}", device.gates[i].kind),
            c.estimated.t_drift_hours,
            c.t_cali_hours * 60.0,
            c.fit_residual,
        );
    }
    if let Some(probes) = &prep.crosstalk {
        println!("\ngate  measured nbr(g)");
        for p in probes {
            println!("{:<5} {:?}", p.gate, p.nbr);
        }
    }
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let (device, mut rng) = device_from(args)?;
    let config = CaliqecConfig {
        distance: args.usize_or("distance", 5)?,
        delta_d: args.usize_or("delta-d", 4)?,
        p_tar: args.f64_or("p-tar", 5e-3)?,
        ..CaliqecConfig::default()
    };
    let prep = Preparation::run(&device, &mut rng);
    let plan = compile(&device, &prep, &config, &mut rng);
    println!(
        "T_Cali = {:.2} h, {} groups, {} calibration ops per 24 h",
        plan.t_cali_hours(),
        plan.groups.groups.len(),
        plan.operations_over(24.0)
    );
    for (k, batches) in &plan.batches {
        let gates: usize = batches.iter().map(|b| b.gates.len()).sum();
        let time: f64 = batches.iter().map(|b| b.duration_hours).sum();
        let delta = plan.chosen_delta_d[k];
        println!(
            "group {k}: every {:.2} h — {gates} gates in {} batches, {:.1} min, Δd = {delta}",
            *k as f64 * plan.t_cali_hours(),
            batches.len(),
            time * 60.0,
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let (device, mut rng) = device_from(args)?;
    let config = CaliqecConfig {
        distance: args.usize_or("distance", 5)?,
        delta_d: args.usize_or("delta-d", 4)?,
        enlarge: !args.flags.contains_key("no-enlarge"),
        threads: args.usize_or("threads", 0)?,
        mc_shots: args.usize_or("mc-shots", 0)?,
        ..CaliqecConfig::default()
    };
    let hours = args.f64_or("hours", 24.0)?;
    let prep = Preparation::run(&device, &mut rng);
    let plan = compile(&device, &prep, &config, &mut rng);
    let report = run_runtime(&device, Some(&plan), &config, hours, 96);
    println!("hours  mean_p    distance  qubits  LER       measured  calibrating");
    for p in report.trace.iter().step_by(8) {
        let measured = p
            .measured_ler
            .map_or_else(|| "       -".to_string(), |m| format!("{m:.2e}"));
        println!(
            "{:>5.1}  {:.2e}  {:>8}  {:>6}  {:.2e}  {measured}  {:>3}",
            p.hours, p.mean_p, p.distance, p.physical_qubits, p.ler, p.calibrating
        );
    }
    println!(
        "\n{} calibrations; peak LER {:.2e}; {:.1}% of the run above target; peak qubits {}",
        report.calibrations,
        report.peak_ler(),
        report.exceedance_fraction() * 100.0,
        report.max_physical_qubits
    );
    Ok(())
}

fn cmd_draw(args: &Args) -> Result<(), String> {
    let d = args.usize_or("distance", 5)?;
    let lattice = match args.flags.get("lattice").map(String::as_str) {
        None | Some("square") => Lattice::Square,
        Some("heavy-hex") | Some("heavyhex") => Lattice::HeavyHex,
        Some(other) => return Err(format!("unknown lattice {other:?}")),
    };
    let mut patch = DeformedPatch::new(lattice, d, d);
    for &(r, c) in &args.holes {
        patch
            .apply(DeformInstruction::DataQRm {
                qubit: data_coord(r, c),
            })
            .map_err(|e| format!("cannot isolate ({r},{c}): {e}"))?;
    }
    let layout = patch.layout().map_err(|e| e.to_string())?;
    println!("{}", draw_layout(&layout));
    let dist = code_distance(&layout);
    println!(
        "data qubits: {}, ancillas: {}, superstabilizers: {}, distance: z={} x={}",
        layout.data.len(),
        layout.ancillas().len(),
        layout.num_superstabilizers(),
        dist.z,
        dist.x
    );
    Ok(())
}

const HELP: &str = "\
caliqec — in-situ qubit calibration for surface-code QEC

USAGE:
  caliqec characterize [--rows N] [--cols N] [--seed S] [--probe] [--threads T]
      Characterize a synthetic device (drift rates, calibration times);
      --probe additionally measures crosstalk neighbourhoods (Fig. 6).
  caliqec plan [--rows N] [--cols N] [--distance D] [--delta-d K] [--p-tar P]
      Compile the calibration plan (Algorithm 1 + adaptive batching).
  caliqec simulate [--rows N] [--cols N] [--distance D] [--hours H] [--no-enlarge]
                   [--threads T] [--mc-shots S]
      Run the in-situ calibration runtime and print the LER trace.
      --mc-shots S > 0 measures each trace point by Monte Carlo on the
      parallel LER engine; --threads T sets the worker count (default:
      the CALIQEC_THREADS environment variable, else all cores).
  caliqec draw [--distance D] [--lattice square|heavy-hex] [--hole R,C ...]
      Render a (deformed) patch as ASCII art.
  caliqec help
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    let args = match parse_args(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "characterize" => cmd_characterize(&args),
        "plan" => cmd_plan(&args),
        "simulate" => cmd_simulate(&args),
        "draw" => cmd_draw(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `caliqec help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
