//! Offline, in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the subset of the API the
//! workspace's `harness = false` benches use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Output is one line per benchmark: the median ns/iter over
//! `sample_size` samples, plus derived throughput when configured.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.into());
        group.bench_with_input(BenchmarkId::new("", ""), &(), |b, _| f(b));
        group.finish();
        self
    }
}

/// How many work items one benchmark iteration processes; used to
/// derive a rate from the measured time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: a function name plus a
/// display-formatted parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: param.to_string(),
        }
    }

    fn render(&self, group: &str) -> String {
        let mut s = group.to_string();
        if !self.name.is_empty() {
            s.push('/');
            s.push_str(&self.name);
        }
        if !self.param.is_empty() {
            s.push('/');
            s.push_str(&self.param);
        }
        s
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the measurement loop sizes itself.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            ns_per_iter: None,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.ns_per_iter);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id.into_benchmark_id(), &(), |b, _| f(b))
    }

    /// Ends the group. (Reporting happens per-benchmark.)
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, ns_per_iter: Option<f64>) {
        let label = id.render(&self.name);
        match ns_per_iter {
            Some(ns) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  ({:.3e} elem/s)", n as f64 / (ns * 1e-9))
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  ({:.3e} B/s)", n as f64 / (ns * 1e-9))
                    }
                    None => String::new(),
                };
                println!("{label:<48} time: {} /iter{rate}", format_ns(ns));
            }
            None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Conversion helper so `bench_function` accepts `&str` or `BenchmarkId`.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::new(self, "")
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::new(self, "")
    }
}

/// Runs and times the closure under benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count so one sample takes
    /// a few milliseconds, collects `sample_size` samples, and records
    /// the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: time single iterations until ~10ms total elapses
        // (at least one), to pick the per-sample iteration count.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_iters == 0 || calibration_start.elapsed() < Duration::from_millis(10) {
            black_box(f());
            calibration_iters += 1;
        }
        let per_iter = calibration_start.elapsed().as_secs_f64() / calibration_iters as f64;
        let iters_per_sample = ((0.005 / per_iter) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        benches();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 5).render("g"), "g/f/5");
        assert_eq!(BenchmarkId::from_parameter(7).render("g"), "g/7");
    }
}
