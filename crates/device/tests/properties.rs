//! Property-based tests of the device substrate: drift-model algebra,
//! log-normal sampling sanity, and crosstalk geometry.

use caliqec_device::{crosstalk_neighbourhood, DriftDistribution, DriftModel, GateKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `p_at` is monotone in time and `time_to_reach` inverts it.
    #[test]
    fn drift_model_inversion(
        p0 in 1e-6f64..1e-2,
        t_drift in 0.5f64..100.0,
        factor in 1.1f64..50.0,
    ) {
        let m = DriftModel::new(p0, t_drift);
        prop_assert!(m.p_at(1.0) > m.p_at(0.0));
        let target = (p0 * factor).min(0.9);
        let t = m.time_to_reach(target);
        prop_assert!((m.p_at(t) - target).abs() / target < 1e-9);
    }

    /// Log-normal samples are positive and their empirical mean stays near
    /// the configured mean.
    #[test]
    fn lognormal_samples_positive(mean in 2.0f64..50.0, seed in 0u64..100) {
        let dist = DriftDistribution { mean_hours: mean, sigma: 0.5 };
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = dist.sample_many(4000, &mut rng);
        prop_assert!(samples.iter().all(|&s| s > 0.0));
        let m = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((m - mean).abs() / mean < 0.25, "mean {m} vs {mean}");
    }

    /// Crosstalk neighbourhoods never include the gate's own qubits, stay
    /// on the grid, and grow monotonically with the radius.
    #[test]
    fn crosstalk_geometry(
        rows in 2usize..8,
        cols in 2usize..8,
        q in 0u32..64,
        radius in 0u32..4,
    ) {
        let q = q % (rows * cols) as u32;
        let gate = GateKind::OneQubit(q);
        let nbr = crosstalk_neighbourhood(&gate, rows, cols, radius);
        prop_assert!(!nbr.contains(&q));
        prop_assert!(nbr.iter().all(|&n| (n as usize) < rows * cols));
        let bigger = crosstalk_neighbourhood(&gate, rows, cols, radius + 1);
        prop_assert!(bigger.len() >= nbr.len());
        for n in &nbr {
            prop_assert!(bigger.contains(n));
        }
    }
}
