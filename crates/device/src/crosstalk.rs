//! Calibration-crosstalk neighbourhoods (paper Sec. 4, Fig. 6).
//!
//! The paper identifies `nbr(g)` experimentally: nearby qubits are prepared
//! in random states, the gate is calibrated, and qubits whose state deviated
//! beyond a threshold are declared disturbed. On our synthetic devices the
//! neighbourhood is derived from grid geometry: every qubit within a
//! configurable grid radius of the gate's qubits is disturbed. Those qubits
//! are isolated together with the calibrated gate, forming the protective
//! barrier between calibration and computation.

use crate::model::{GateKind, QubitId};

/// Grid position of qubit `q` on a `cols`-wide row-major grid.
fn pos(q: QubitId, cols: usize) -> (i64, i64) {
    ((q as usize / cols) as i64, (q as usize % cols) as i64)
}

/// Chebyshev distance between two grid positions.
fn chebyshev(a: (i64, i64), b: (i64, i64)) -> u32 {
    ((a.0 - b.0).abs().max((a.1 - b.1).abs())) as u32
}

/// Computes the crosstalk neighbourhood of a gate on a `rows × cols` grid:
/// all qubits (other than the gate's own) within `radius` grid steps.
///
/// # Examples
///
/// ```
/// use caliqec_device::{crosstalk_neighbourhood, GateKind};
///
/// // Corner qubit on a 3x3 grid: 3 neighbours at radius 1.
/// let nbr = crosstalk_neighbourhood(&GateKind::OneQubit(0), 3, 3, 1);
/// assert_eq!(nbr, vec![1, 3, 4]);
/// ```
pub fn crosstalk_neighbourhood(
    gate: &GateKind,
    rows: usize,
    cols: usize,
    radius: u32,
) -> Vec<QubitId> {
    let own = gate.qubits();
    let own_pos: Vec<(i64, i64)> = own.iter().map(|&q| pos(q, cols)).collect();
    let mut nbr = Vec::new();
    for q in 0..(rows * cols) as QubitId {
        if own.contains(&q) {
            continue;
        }
        let p = pos(q, cols);
        if own_pos.iter().any(|&o| chebyshev(o, p) <= radius) {
            nbr.push(q);
        }
    }
    nbr
}

/// Size of the isolation region (gate qubits + neighbourhood) — the quantity
/// that drives code-distance loss during in-situ calibration.
pub fn isolation_region_size(gate: &GateKind, nbr: &[QubitId]) -> usize {
    gate.qubits().len() + nbr.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_qubit_has_eight_neighbours() {
        let nbr = crosstalk_neighbourhood(&GateKind::OneQubit(4), 3, 3, 1);
        assert_eq!(nbr.len(), 8);
    }

    #[test]
    fn radius_zero_is_empty() {
        let nbr = crosstalk_neighbourhood(&GateKind::OneQubit(4), 3, 3, 0);
        assert!(nbr.is_empty());
    }

    #[test]
    fn two_qubit_gate_unions_neighbourhoods() {
        let nbr = crosstalk_neighbourhood(&GateKind::TwoQubit(0, 1), 3, 3, 1);
        // Row 0: qubits 2; row 1: 3,4,5. Gate's own qubits excluded.
        assert_eq!(nbr, vec![2, 3, 4, 5]);
    }

    #[test]
    fn larger_radius_grows_region() {
        let small = crosstalk_neighbourhood(&GateKind::OneQubit(12), 5, 5, 1);
        let large = crosstalk_neighbourhood(&GateKind::OneQubit(12), 5, 5, 2);
        assert!(large.len() > small.len());
    }

    #[test]
    fn region_size_counts_gate_qubits() {
        let gate = GateKind::TwoQubit(0, 1);
        let nbr = crosstalk_neighbourhood(&gate, 3, 3, 1);
        assert_eq!(isolation_region_size(&gate, &nbr), 2 + nbr.len());
    }
}
