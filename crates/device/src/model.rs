//! Synthetic quantum device models.
//!
//! A [`DeviceModel`] carries the per-gate quantities CaliQEC's
//! preparation-time characterization extracts (Sec. 4): the freshly
//! calibrated error rate and drift constant, the calibration duration
//! `T_cali`, and the calibration-crosstalk neighbourhood `nbr(g)`.
//!
//! Devices are generated synthetically (the paper measured IBM Eagle and
//! Rigetti Ankaa-2; see the substitution table in DESIGN.md): a qubit grid
//! with nearest-neighbour couplers, log-normal drift constants, and
//! calibration times in the few-minute range reported by the literature the
//! paper cites.

use crate::crosstalk::crosstalk_neighbourhood;
use crate::drift::{DriftDistribution, DriftModel};
use rand::Rng;

/// Identifier of a physical qubit on a device.
pub type QubitId = u32;

/// Identifier of a gate (index into [`DeviceModel::gates`]).
pub type GateId = usize;

/// The kind of a calibratable gate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// Single-qubit gate on one qubit.
    OneQubit(QubitId),
    /// Two-qubit gate on a coupler.
    TwoQubit(QubitId, QubitId),
}

impl GateKind {
    /// The qubits the gate acts on.
    pub fn qubits(&self) -> Vec<QubitId> {
        match *self {
            GateKind::OneQubit(q) => vec![q],
            GateKind::TwoQubit(a, b) => vec![a, b],
        }
    }
}

/// Ground-truth calibration-relevant parameters of one gate.
#[derive(Clone, Debug, PartialEq)]
pub struct GateInfo {
    /// What the gate is.
    pub kind: GateKind,
    /// Error drift model (freshly calibrated rate + drift constant).
    pub drift: DriftModel,
    /// Calibration duration in hours.
    pub t_cali_hours: f64,
    /// Calibration-crosstalk neighbourhood `nbr(g)`: the qubits disturbed by
    /// calibrating this gate, isolated together with it (Sec. 4).
    pub nbr: Vec<QubitId>,
}

/// A synthetic device: qubit grid, couplers, and per-gate parameters.
#[derive(Clone, Debug, Default)]
pub struct DeviceModel {
    /// Number of physical qubits.
    pub num_qubits: usize,
    /// Grid width used to lay out the qubits (row-major).
    pub grid_cols: usize,
    /// Couplers (nearest-neighbour pairs).
    pub couplers: Vec<(QubitId, QubitId)>,
    /// All calibratable gates.
    pub gates: Vec<GateInfo>,
}

/// Parameters for synthetic device generation.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Freshly calibrated error rate (the paper initializes 10× below the
    /// 1 % surface-code threshold).
    pub p0: f64,
    /// Distribution of drift-time constants.
    pub drift: DriftDistribution,
    /// Mean single-gate calibration time in hours (a few minutes per gate;
    /// full-device calibration spans hours — Sec. 4).
    pub mean_t_cali_hours: f64,
    /// Crosstalk radius in grid steps (qubits within this distance of the
    /// gate are disturbed by its calibration).
    pub crosstalk_radius: u32,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            rows: 8,
            cols: 8,
            p0: 1e-3,
            drift: DriftDistribution::current(),
            mean_t_cali_hours: 4.0 / 60.0, // ~4 minutes per gate
            crosstalk_radius: 1,
        }
    }
}

impl DeviceModel {
    /// Generates a synthetic device.
    ///
    /// One single-qubit gate per qubit and one two-qubit gate per coupler,
    /// each with an independently sampled drift constant and a calibration
    /// time jittered ±50 % around the configured mean (two-qubit gates take
    /// 2× longer, following the calibration literature the paper cites).
    ///
    /// # Examples
    ///
    /// ```
    /// use caliqec_device::{DeviceConfig, DeviceModel};
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let dev = DeviceModel::synthetic(&DeviceConfig::default(), &mut rng);
    /// assert_eq!(dev.num_qubits, 64);
    /// assert!(dev.gates.len() > 64);
    /// ```
    pub fn synthetic<R: Rng>(config: &DeviceConfig, rng: &mut R) -> DeviceModel {
        let num_qubits = config.rows * config.cols;
        let idx = |r: usize, c: usize| (r * config.cols + c) as QubitId;
        let mut couplers = Vec::new();
        for r in 0..config.rows {
            for c in 0..config.cols {
                if c + 1 < config.cols {
                    couplers.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < config.rows {
                    couplers.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let mut gates = Vec::new();
        let mut push_gate = |kind: GateKind, rng: &mut R, scale: f64| {
            let t_drift = config.drift.sample(rng);
            let jitter = 0.5 + rng.random::<f64>(); // 0.5..1.5
            let nbr =
                crosstalk_neighbourhood(&kind, config.rows, config.cols, config.crosstalk_radius);
            gates.push(GateInfo {
                kind,
                drift: DriftModel::new(config.p0, t_drift),
                t_cali_hours: config.mean_t_cali_hours * jitter * scale,
                nbr,
            });
        };
        for q in 0..num_qubits as QubitId {
            push_gate(GateKind::OneQubit(q), rng, 1.0);
        }
        for &(a, b) in &couplers {
            push_gate(GateKind::TwoQubit(a, b), rng, 2.0);
        }
        DeviceModel {
            num_qubits,
            grid_cols: config.cols,
            couplers,
            gates,
        }
    }

    /// Gates whose error rate exceeds `threshold` after `hours` without
    /// calibration.
    pub fn gates_above(&self, threshold: f64, hours: f64) -> Vec<GateId> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.drift.p_at(hours) > threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether calibrating `a` and `b` simultaneously conflicts (their
    /// disturbed neighbourhoods or acted qubits overlap).
    pub fn crosstalk_conflict(&self, a: GateId, b: GateId) -> bool {
        let ga = &self.gates[a];
        let gb = &self.gates[b];
        let za: Vec<QubitId> = ga
            .kind
            .qubits()
            .into_iter()
            .chain(ga.nbr.iter().copied())
            .collect();
        let zb: Vec<QubitId> = gb
            .kind
            .qubits()
            .into_iter()
            .chain(gb.nbr.iter().copied())
            .collect();
        za.iter().any(|q| zb.contains(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> DeviceModel {
        let mut rng = StdRng::seed_from_u64(7);
        DeviceModel::synthetic(&DeviceConfig::default(), &mut rng)
    }

    #[test]
    fn gate_counts() {
        let d = device();
        // 64 1q gates + 2*8*7 couplers.
        assert_eq!(d.couplers.len(), 112);
        assert_eq!(d.gates.len(), 64 + 112);
    }

    #[test]
    fn drift_makes_gates_exceed_threshold() {
        let d = device();
        let now = d.gates_above(0.01, 0.0);
        assert!(now.is_empty(), "freshly calibrated device is clean");
        let later = d.gates_above(0.01, 24.0);
        // After a day, a large majority exceed the 1% threshold (paper
        // Fig. 1b: >90% of 1q gates).
        assert!(
            later.len() * 10 >= d.gates.len() * 5,
            "only {}/{} gates drifted",
            later.len(),
            d.gates.len()
        );
    }

    #[test]
    fn two_qubit_gates_calibrate_longer_on_average() {
        let d = device();
        let avg = |f: &dyn Fn(&GateInfo) -> bool| {
            let v: Vec<f64> = d
                .gates
                .iter()
                .filter(|g| f(g))
                .map(|g| g.t_cali_hours)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let one = avg(&|g| matches!(g.kind, GateKind::OneQubit(_)));
        let two = avg(&|g| matches!(g.kind, GateKind::TwoQubit(..)));
        assert!(two > one * 1.5);
    }

    #[test]
    fn adjacent_gates_conflict_distant_do_not() {
        let d = device();
        // Gates 0 and 1 act on adjacent qubits (0 and 1 in the grid).
        assert!(d.crosstalk_conflict(0, 1));
        // Qubit 0 and qubit 63 are far apart.
        assert!(!d.crosstalk_conflict(0, 63));
    }

    #[test]
    fn crosstalk_neighbourhoods_nonempty() {
        let d = device();
        assert!(d.gates.iter().all(|g| !g.nbr.is_empty()));
    }
}
