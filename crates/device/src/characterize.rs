//! Preparation-time device characterization (paper Sec. 4).
//!
//! The paper fits each gate's drift constant by running interleaved
//! randomized benchmarking hourly with the repetition ladder
//! `[1, 10, 20, 50, 100, 150, 250, 400]`, then least-squares-fitting the
//! exponential drift model (Eqn. 1). We reproduce that pipeline against the
//! synthetic ground truth: RB survival probabilities are sampled with shot
//! noise, per-hour error rates are recovered from the RB decay, and
//! `log10 p(t)` is regressed on `t` to estimate `p0` and `T_drift`.

use crate::drift::DriftModel;
use crate::model::{DeviceModel, GateId, GateInfo};
use rand::Rng;

/// The paper's interleaved-RB sequence-length ladder.
pub const RB_LADDER: [u32; 8] = [1, 10, 20, 50, 100, 150, 250, 400];

/// Options for the characterization pass.
#[derive(Clone, Copy, Debug)]
pub struct CharacterizeOptions {
    /// Number of hourly sampling points.
    pub hours: usize,
    /// Shots per RB sequence length.
    pub shots_per_length: u32,
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        CharacterizeOptions {
            hours: 8,
            shots_per_length: 512,
        }
    }
}

/// Characterization result for one gate.
#[derive(Clone, Debug, PartialEq)]
pub struct GateCharacterization {
    /// The gate.
    pub gate: GateId,
    /// Estimated drift model (fit of Eqn. 1).
    pub estimated: DriftModel,
    /// Measured calibration duration (hours).
    pub t_cali_hours: f64,
    /// Root-mean-square residual of the `log10 p` fit.
    pub fit_residual: f64,
}

/// Simulates one hourly RB estimate of a gate's error rate.
///
/// The RB survival at sequence length `m` is `(1 - 2p)^m` smeared by
/// binomial shot noise; the error rate is recovered by fitting the decay.
fn rb_estimate<R: Rng>(true_p: f64, shots: u32, rng: &mut R) -> f64 {
    // Weighted log-linear fit of survival vs length.
    let mut num = 0.0;
    let mut den = 0.0;
    for &m in RB_LADDER.iter() {
        let survival = 0.5 + 0.5 * (1.0 - 2.0 * true_p).max(0.0).powi(m as i32);
        // Binomial sampling of the survival probability.
        let mut hits = 0u32;
        for _ in 0..shots {
            if rng.random::<f64>() < survival {
                hits += 1;
            }
        }
        let observed = (hits as f64 / shots as f64).clamp(0.5 + 1e-6, 1.0 - 1e-9);
        // survival = 0.5 + 0.5 * lambda^m  =>  lambda^m = 2*observed - 1
        let lambda_m = (2.0 * observed - 1.0).max(1e-12);
        // ln(lambda) = ln(lambda^m)/m; weight long sequences less once decay
        // saturates.
        let w = (m as f64) * lambda_m; // fisher-style weighting
        num += w * (lambda_m.ln() / m as f64);
        den += w;
    }
    let lambda = (num / den).exp();
    ((1.0 - lambda) / 2.0).clamp(1e-9, 0.5)
}

/// Least-squares fit of `log10 p(t) = log10 p0 + t / T_drift`.
fn fit_drift(samples: &[(f64, f64)]) -> (DriftModel, f64) {
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|(t, _)| t).sum();
    let sy: f64 = samples.iter().map(|(_, p)| p.log10()).sum();
    let sxx: f64 = samples.iter().map(|(t, _)| t * t).sum();
    let sxy: f64 = samples.iter().map(|(t, p)| t * p.log10()).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let p0 = 10f64.powf(intercept).clamp(1e-9, 1.0);
    let t_drift = if slope > 1e-9 { 1.0 / slope } else { 1e6 };
    let rms = (samples
        .iter()
        .map(|(t, p)| {
            let pred = intercept + slope * t;
            (p.log10() - pred).powi(2)
        })
        .sum::<f64>()
        / n)
        .sqrt();
    (DriftModel::new(p0, t_drift), rms)
}

/// Characterizes a single gate against its ground truth.
pub fn characterize_gate<R: Rng>(
    gate_id: GateId,
    info: &GateInfo,
    options: &CharacterizeOptions,
    rng: &mut R,
) -> GateCharacterization {
    let samples: Vec<(f64, f64)> = (0..options.hours)
        .map(|h| {
            let t = h as f64;
            let true_p = info.drift.p_at(t);
            (t, rb_estimate(true_p, options.shots_per_length, rng))
        })
        .collect();
    let (estimated, fit_residual) = fit_drift(&samples);
    GateCharacterization {
        gate: gate_id,
        estimated,
        // Calibration duration is measured directly by timing calibration
        // runs; we observe the true value with ±10% timing jitter.
        t_cali_hours: info.t_cali_hours * (0.9 + 0.2 * rng.random::<f64>()),
        fit_residual,
    }
}

/// Characterizes every gate of a device (the preparation stage of Fig. 5).
pub fn characterize_device<R: Rng>(
    device: &DeviceModel,
    options: &CharacterizeOptions,
    rng: &mut R,
) -> Vec<GateCharacterization> {
    device
        .gates
        .iter()
        .enumerate()
        .map(|(i, g)| characterize_gate(i, g, options, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeviceConfig, GateKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rb_estimate_tracks_true_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        for &p in &[1e-3, 3e-3, 1e-2] {
            let mut est = 0.0;
            let reps = 20;
            for _ in 0..reps {
                est += rb_estimate(p, 1024, &mut rng);
            }
            est /= reps as f64;
            assert!((est - p).abs() / p < 0.3, "true {p}, estimated {est}");
        }
    }

    #[test]
    fn fit_recovers_exact_model() {
        let truth = DriftModel::new(1e-3, 14.0);
        let samples: Vec<(f64, f64)> = (0..10).map(|h| (h as f64, truth.p_at(h as f64))).collect();
        let (fit, rms) = fit_drift(&samples);
        assert!((fit.p0 - truth.p0).abs() / truth.p0 < 1e-6);
        assert!((fit.t_drift_hours - truth.t_drift_hours).abs() < 1e-6);
        assert!(rms < 1e-10);
    }

    #[test]
    fn characterization_estimates_drift_constant() {
        let mut rng = StdRng::seed_from_u64(5);
        let info = GateInfo {
            kind: GateKind::OneQubit(0),
            drift: DriftModel::new(1e-3, 10.0),
            t_cali_hours: 0.07,
            nbr: vec![1],
        };
        let c = characterize_gate(
            0,
            &info,
            &CharacterizeOptions {
                hours: 12,
                shots_per_length: 2048,
            },
            &mut rng,
        );
        let rel = (c.estimated.t_drift_hours - 10.0).abs() / 10.0;
        assert!(rel < 0.35, "T_drift estimate off by {rel:.2}");
        assert!(c.t_cali_hours > 0.0);
    }

    #[test]
    fn device_characterization_covers_all_gates() {
        let mut rng = StdRng::seed_from_u64(9);
        let dev = DeviceModel::synthetic(
            &DeviceConfig {
                rows: 3,
                cols: 3,
                ..DeviceConfig::default()
            },
            &mut rng,
        );
        let chars = characterize_device(
            &dev,
            &CharacterizeOptions {
                hours: 4,
                shots_per_length: 128,
            },
            &mut rng,
        );
        assert_eq!(chars.len(), dev.gates.len());
        assert!(chars.iter().all(|c| c.estimated.p0 > 0.0));
    }
}
