//! Error-drift models (paper Sec. 4, Sec. 7.2).
//!
//! Gate error rates grow exponentially: `p(g, t) = p0[g] · 10^(t / T_drift[g])`
//! (Eqn. 1). Drift time constants vary across a device following a log-normal
//! distribution; the paper measures a mean of 14.08 h on IBM's Eagle
//! processor (Fig. 9) and posits a doubled mean of 28.016 h for future
//! hardware (Sec. 7.2).

use rand::Rng;

/// Exponential drift model of one gate's error rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftModel {
    /// Freshly calibrated error rate `p0`.
    pub p0: f64,
    /// Hours for the error rate to grow by 10×.
    pub t_drift_hours: f64,
}

impl DriftModel {
    /// Creates a drift model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p0 <= 1` and `t_drift_hours > 0`.
    pub fn new(p0: f64, t_drift_hours: f64) -> DriftModel {
        assert!(p0 > 0.0 && p0 <= 1.0, "p0 out of range: {p0}");
        assert!(t_drift_hours > 0.0, "drift time must be positive");
        DriftModel { p0, t_drift_hours }
    }

    /// Error rate `t` hours after calibration (Eqn. 1), capped at 1.
    pub fn p_at(&self, hours: f64) -> f64 {
        (self.p0 * 10f64.powf(hours / self.t_drift_hours)).min(1.0)
    }

    /// Hours after calibration at which the error rate reaches `p_tar`
    /// (the paper's `T_drift,p_tar`).
    ///
    /// Returns 0 when the gate already starts above `p_tar`.
    pub fn time_to_reach(&self, p_tar: f64) -> f64 {
        assert!(p_tar > 0.0, "target rate must be positive");
        (self.t_drift_hours * (p_tar / self.p0).log10()).max(0.0)
    }
}

/// Log-normal distribution of drift-time constants across a device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftDistribution {
    /// Mean drift time in hours.
    pub mean_hours: f64,
    /// Shape parameter (standard deviation of `ln T`).
    pub sigma: f64,
}

impl DriftDistribution {
    /// Shape parameter used for both the current and future models.
    ///
    /// The paper reports the mean (14.08 h) but not the shape; 0.5 visually
    /// matches the spread of its Fig. 9 histogram (documented in DESIGN.md).
    pub const DEFAULT_SIGMA: f64 = 0.5;

    /// The paper's current-hardware model: log-normal, mean 14.08 h.
    pub fn current() -> DriftDistribution {
        DriftDistribution {
            mean_hours: 14.08,
            sigma: Self::DEFAULT_SIGMA,
        }
    }

    /// The paper's future-hardware model: doubled mean, 28.016 h.
    pub fn future() -> DriftDistribution {
        DriftDistribution {
            mean_hours: 28.016,
            sigma: Self::DEFAULT_SIGMA,
        }
    }

    /// The `μ` parameter of `ln T` such that `E[T] = mean_hours`.
    pub fn mu(&self) -> f64 {
        self.mean_hours.ln() - self.sigma * self.sigma / 2.0
    }

    /// Samples one drift-time constant (hours).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        (self.mu() + self.sigma * z).exp()
    }

    /// Samples `n` drift-time constants.
    pub fn sample_many<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Standard normal deviate via Box–Muller.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drift_grows_tenfold_per_constant() {
        let d = DriftModel::new(1e-3, 10.0);
        assert!((d.p_at(0.0) - 1e-3).abs() < 1e-12);
        assert!((d.p_at(10.0) - 1e-2).abs() < 1e-10);
        assert!((d.p_at(20.0) - 1e-1).abs() < 1e-9);
    }

    #[test]
    fn drift_caps_at_one() {
        let d = DriftModel::new(1e-3, 1.0);
        assert_eq!(d.p_at(100.0), 1.0);
    }

    #[test]
    fn time_to_reach_inverts_p_at() {
        let d = DriftModel::new(1e-3, 14.0);
        let t = d.time_to_reach(5e-3);
        assert!((d.p_at(t) - 5e-3).abs() < 1e-10);
    }

    #[test]
    fn time_to_reach_saturates_at_zero() {
        let d = DriftModel::new(1e-2, 14.0);
        assert_eq!(d.time_to_reach(1e-3), 0.0);
    }

    #[test]
    fn lognormal_mean_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = DriftDistribution::current();
        let samples = dist.sample_many(50_000, &mut rng);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (mean - 14.08).abs() < 0.5,
            "sample mean {mean} far from 14.08"
        );
        assert!(samples.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn future_model_doubles_mean() {
        let c = DriftDistribution::current();
        let f = DriftDistribution::future();
        assert!((f.mean_hours / c.mean_hours - 1.99) < 0.02);
    }

    #[test]
    fn lognormal_is_skewed() {
        // Median < mean for a log-normal.
        let mut rng = StdRng::seed_from_u64(2);
        let dist = DriftDistribution::current();
        let mut samples = dist.sample_many(10_001, &mut rng);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(median < mean);
    }

    #[test]
    #[should_panic(expected = "drift time")]
    fn invalid_drift_time_rejected() {
        let _ = DriftModel::new(1e-3, 0.0);
    }
}
