//! # caliqec-device — device, drift, and characterization substrate
//!
//! Models the hardware-facing half of CaliQEC's preparation stage (paper
//! Sec. 4): synthetic quantum devices with per-gate error drift, calibration
//! durations, and calibration-crosstalk neighbourhoods, plus the simulated
//! interleaved-randomized-benchmarking pipeline that estimates those
//! quantities the way the paper does on real hardware.
//!
//! # Example
//!
//! ```
//! use caliqec_device::{
//!     characterize_device, CharacterizeOptions, DeviceConfig, DeviceModel,
//! };
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let device = DeviceModel::synthetic(
//!     &DeviceConfig { rows: 3, cols: 3, ..DeviceConfig::default() },
//!     &mut rng,
//! );
//! // Preparation stage: estimate T_drift / T_cali / nbr(g) for every gate.
//! let characterization = characterize_device(
//!     &device,
//!     &CharacterizeOptions { hours: 4, shots_per_length: 256 },
//!     &mut rng,
//! );
//! assert_eq!(characterization.len(), device.gates.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod characterize;
mod crosstalk;
mod drift;
mod model;
mod probe;

pub use characterize::{
    characterize_device, characterize_gate, CharacterizeOptions, GateCharacterization, RB_LADDER,
};
pub use crosstalk::{crosstalk_neighbourhood, isolation_region_size};
pub use drift::{DriftDistribution, DriftModel};
pub use model::{DeviceConfig, DeviceModel, GateId, GateInfo, GateKind, QubitId};
pub use probe::{
    measure_all_crosstalk, measure_crosstalk, CrosstalkProbe, DisturbanceModel, ProbeOptions,
};
