//! Experimental crosstalk characterization (paper Sec. 4, Fig. 6).
//!
//! The paper measures `nbr(g)` with a state-disturbance circuit: nearby
//! qubits are initialized to random (stabilizer) states, the gate is
//! calibrated, the qubits are un-prepared and measured, and any qubit whose
//! outcome deviates beyond a threshold is declared disturbed.
//!
//! We reproduce that protocol against a physical disturbance model: during
//! calibration of gate `g`, every qubit receives depolarizing noise whose
//! strength decays with grid distance from `g` (the ground truth the probe
//! is supposed to discover). The probe itself only sees measurement
//! outcomes — exactly like the hardware experiment.

use crate::model::{DeviceModel, GateId, QubitId};
use caliqec_stab::{Basis, Circuit, CompiledCircuit, Gate1, Noise1};
use rand::Rng;

/// Physical model of how strongly calibrating a gate disturbs each qubit.
#[derive(Clone, Copy, Debug)]
pub struct DisturbanceModel {
    /// Disturbance probability on qubits adjacent to the calibrated gate.
    pub base: f64,
    /// Multiplicative decay per additional grid step.
    pub decay: f64,
    /// Background disturbance on every qubit (readout noise floor).
    pub floor: f64,
}

impl Default for DisturbanceModel {
    fn default() -> Self {
        DisturbanceModel {
            base: 0.25,
            decay: 0.04,
            floor: 0.003,
        }
    }
}

impl DisturbanceModel {
    /// Disturbance probability at `steps` grid steps from the gate:
    /// adjacent qubits (one step) take the full `base` kick, each further
    /// step multiplies by `decay`, never dropping below the `floor`.
    pub fn at_distance(&self, steps: u32) -> f64 {
        let steps = steps.max(1);
        (self.base * self.decay.powi(steps as i32 - 1)).max(self.floor)
    }
}

/// Options of the crosstalk probe.
#[derive(Clone, Copy, Debug)]
pub struct ProbeOptions {
    /// Shots per probed gate (rounded up to 64-shot batches).
    pub shots: usize,
    /// Deviation threshold: a qubit whose flip rate exceeds this is added to
    /// `nbr(g)`.
    pub threshold: f64,
    /// The physical disturbance being probed.
    pub disturbance: DisturbanceModel,
    /// Sampling worker threads (0 = auto, honouring `CALIQEC_THREADS`).
    pub threads: usize,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        ProbeOptions {
            shots: 1024,
            threshold: 0.02,
            disturbance: DisturbanceModel::default(),
            threads: 0,
        }
    }
}

/// Chebyshev grid distance between two qubits.
fn grid_distance(a: QubitId, b: QubitId, cols: usize) -> u32 {
    let (ar, ac) = ((a as usize / cols) as i64, (a as usize % cols) as i64);
    let (br, bc) = ((b as usize / cols) as i64, (b as usize % cols) as i64);
    ((ar - br).abs().max((ac - bc).abs())) as u32
}

/// Builds the Fig. 6 probe circuit for `gate`: every other qubit is prepared
/// in a random stabilizer state (basis + optional flip), disturbed according
/// to the physical model, un-prepared, and measured; one detector per qubit
/// reports a deviation.
fn probe_circuit<R: Rng>(
    device: &DeviceModel,
    gate: GateId,
    disturbance: &DisturbanceModel,
    rng: &mut R,
) -> (Circuit, Vec<QubitId>) {
    let own = device.gates[gate].kind.qubits();
    let probed: Vec<QubitId> = (0..device.num_qubits as QubitId)
        .filter(|q| !own.contains(q))
        .collect();
    let mut c = Circuit::new(device.num_qubits);
    // Random state preparation: |0>, |1>, |+>, or |->.
    let preps: Vec<(bool, bool)> = probed
        .iter()
        .map(|_| (rng.random::<bool>(), rng.random::<bool>()))
        .collect();
    for (&q, &(x_basis, flipped)) in probed.iter().zip(&preps) {
        c.reset(Basis::Z, &[q]);
        if flipped {
            c.g1(Gate1::X, q);
        }
        if x_basis {
            c.g1(Gate1::H, q);
        }
    }
    // "Calibration" of the gate: the physical disturbance kick.
    let dist_of = |q: QubitId| {
        own.iter()
            .map(|&g| grid_distance(g, q, device.grid_cols))
            .min()
            .unwrap_or(u32::MAX)
    };
    for &q in &probed {
        let p = disturbance.at_distance(dist_of(q));
        c.noise1(Noise1::Depolarize1, p, &[q]);
    }
    // Un-prepare and measure; deviation = any flip.
    for (&q, &(x_basis, flipped)) in probed.iter().zip(&preps) {
        if x_basis {
            c.g1(Gate1::H, q);
        }
        if flipped {
            c.g1(Gate1::X, q);
        }
        let m = c.measure(q, Basis::Z, 0.0);
        c.detector(&[m]);
    }
    (c, probed)
}

/// Result of probing one gate.
#[derive(Clone, Debug)]
pub struct CrosstalkProbe {
    /// The probed gate.
    pub gate: GateId,
    /// Measured flip rate per probed qubit.
    pub flip_rates: Vec<(QubitId, f64)>,
    /// Qubits whose deviation exceeded the threshold — the measured
    /// `nbr(g)`.
    pub nbr: Vec<QubitId>,
}

/// Measures the crosstalk neighbourhood of `gate` with the Fig. 6 protocol.
///
/// # Examples
///
/// ```
/// use caliqec_device::{measure_crosstalk, DeviceConfig, DeviceModel, ProbeOptions};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let device = DeviceModel::synthetic(
///     &DeviceConfig { rows: 3, cols: 3, ..DeviceConfig::default() },
///     &mut rng,
/// );
/// let probe = measure_crosstalk(&device, 4, &ProbeOptions::default(), &mut rng);
/// assert!(!probe.nbr.is_empty()); // adjacent qubits are disturbed
/// ```
pub fn measure_crosstalk<R: Rng>(
    device: &DeviceModel,
    gate: GateId,
    options: &ProbeOptions,
    rng: &mut R,
) -> CrosstalkProbe {
    let (circuit, probed) = probe_circuit(device, gate, &options.disturbance, rng);
    let compiled = CompiledCircuit::new(&circuit);
    let base_seed: u64 = rng.random();
    let (shots, flips) = compiled.count_detector_flips(options.shots, base_seed, options.threads);
    let flip_rates: Vec<(QubitId, f64)> = probed
        .iter()
        .zip(&flips)
        .map(|(&q, &f)| (q, f as f64 / shots as f64))
        .collect();
    let nbr = flip_rates
        .iter()
        .filter(|&&(_, r)| r > options.threshold)
        .map(|&(q, _)| q)
        .collect();
    CrosstalkProbe {
        gate,
        flip_rates,
        nbr,
    }
}

/// Re-derives every gate's `nbr(g)` experimentally and returns, per gate,
/// the measured neighbourhood (useful to validate the geometric model the
/// synthetic devices use).
pub fn measure_all_crosstalk<R: Rng>(
    device: &DeviceModel,
    options: &ProbeOptions,
    rng: &mut R,
) -> Vec<CrosstalkProbe> {
    (0..device.gates.len())
        .map(|g| measure_crosstalk(device, g, options, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeviceConfig, GateKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> DeviceModel {
        let mut rng = StdRng::seed_from_u64(29);
        DeviceModel::synthetic(
            &DeviceConfig {
                rows: 4,
                cols: 4,
                ..DeviceConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn probe_finds_adjacent_qubits() {
        let dev = device();
        let mut rng = StdRng::seed_from_u64(1);
        // Gate 5 is the 1q gate on qubit 5 (an interior qubit of the 4x4).
        let probe = measure_crosstalk(&dev, 5, &ProbeOptions::default(), &mut rng);
        let expected = &dev.gates[5].nbr;
        for q in expected {
            assert!(
                probe.nbr.contains(q),
                "geometric neighbour {q} not measured (got {:?})",
                probe.nbr
            );
        }
    }

    #[test]
    fn probe_excludes_distant_qubits() {
        let dev = device();
        let mut rng = StdRng::seed_from_u64(2);
        let probe = measure_crosstalk(&dev, 0, &ProbeOptions::default(), &mut rng);
        // Qubit 15 (far corner) must not be flagged.
        assert!(!probe.nbr.contains(&15));
    }

    #[test]
    fn probe_matches_geometric_model_on_average() {
        let dev = device();
        let mut rng = StdRng::seed_from_u64(3);
        let options = ProbeOptions::default();
        let mut exact = 0usize;
        for g in 0..dev.num_qubits {
            let probe = measure_crosstalk(&dev, g, &options, &mut rng);
            let mut measured = probe.nbr.clone();
            measured.sort_unstable();
            let mut expected = dev.gates[g].nbr.clone();
            expected.sort_unstable();
            if measured == expected {
                exact += 1;
            }
        }
        assert!(
            exact * 10 >= dev.num_qubits * 8,
            "only {exact}/{} probes matched the geometric model",
            dev.num_qubits
        );
    }

    #[test]
    fn disturbance_decays_with_distance() {
        let d = DisturbanceModel::default();
        assert_eq!(d.at_distance(0), d.at_distance(1)); // gate's own region
        assert!(d.at_distance(2) < d.at_distance(1));
        assert!(d.at_distance(3) < d.at_distance(2));
        assert!(d.at_distance(5) >= d.floor);
    }

    #[test]
    fn flip_rates_reported_for_every_probed_qubit() {
        let dev = device();
        let mut rng = StdRng::seed_from_u64(4);
        let probe = measure_crosstalk(&dev, 3, &ProbeOptions::default(), &mut rng);
        assert_eq!(probe.flip_rates.len(), dev.num_qubits - 1);
    }

    #[test]
    fn two_qubit_gate_probe_covers_both_sides() {
        let dev = device();
        let two_q = dev
            .gates
            .iter()
            .position(|g| matches!(g.kind, GateKind::TwoQubit(..)))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let probe = measure_crosstalk(&dev, two_q, &ProbeOptions::default(), &mut rng);
        assert!(probe.nbr.len() >= dev.gates[two_q].nbr.len() / 2);
    }
}
