//! Offline, in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the subset of the API the
//! workspace's property tests use: the `proptest!`/`prop_assert*!`/
//! `prop_oneof!` macros, range/tuple/collection/string strategies,
//! `prop_map`/`prop_filter`, `any::<bool>()`, and `ProptestConfig`.
//!
//! Differences from upstream: no shrinking (a failing case prints its
//! inputs and panics as-is), no persistence of regression seeds
//! (`*.proptest-regressions` files are ignored), and string strategies
//! support only the `[class]{m,n}`-style regex subset the tests use.
//! Case generation is deterministic per test function name.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, RngExt, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: `prop_oneof!` stores arms as `Box<dyn Strategy>`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Rejects generated values for which `f` returns false,
        /// retrying generation. `whence` labels the filter in the
        /// panic message if it rejects too many candidates in a row.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter \"{}\" rejected 1000 candidates in a row",
                self.whence
            );
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Uniform choice between boxed alternative strategies — the
    /// engine behind `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.random_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Boxes one `prop_oneof!` arm (lets the macro avoid `as` casts).
    pub fn union_arm<S>(arm: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(arm)
    }

    /// `&str` patterns act as string strategies over the regex subset
    /// `[class]{m,n}` (plus literal chars and `* + ?` quantifiers).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    /// A bool strategy backed by the RNG directly.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{AnyBool, Strategy};
    use std::ops::RangeInclusive;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy returned by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// Builds that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = RangeInclusive<$t>;
                fn arbitrary() -> RangeInclusive<$t> {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies (`prop::collection::vec` etc.).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Admissible collection lengths, stored as an inclusive range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.min..=self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; bound the retries in case the
            // element domain is smaller than the requested size.
            for _ in 0..(target * 10 + 10) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// Generates `BTreeSet`s with sizes drawn from `size` (best-effort
    /// when the element domain is small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Minimal regex-subset generator backing `&str` strategies.
pub mod string {
    use crate::test_runner::TestRng;
    use rand::RngExt;

    enum Element {
        /// Candidate characters and a repetition count range.
        Class(Vec<char>, usize, usize),
    }

    fn parse_class_char(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<char> {
        match chars.next()? {
            '\\' => Some(match chars.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }),
            c => Some(c),
        }
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(&c) = chars.peek() {
            let set: Vec<char> = if c == '[' {
                chars.next();
                let mut set = Vec::new();
                loop {
                    match chars.peek() {
                        Some(']') => {
                            chars.next();
                            break;
                        }
                        Some(_) => {
                            let lo = parse_class_char(&mut chars)
                                .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                            if chars.peek() == Some(&'-') && chars.clone().nth(1) != Some(']') {
                                chars.next();
                                let hi = parse_class_char(&mut chars)
                                    .unwrap_or_else(|| panic!("bad range in {pattern:?}"));
                                set.extend(lo..=hi);
                            } else {
                                set.push(lo);
                            }
                        }
                        None => panic!("unterminated class in {pattern:?}"),
                    }
                }
                set
            } else {
                vec![parse_class_char(&mut chars).unwrap()]
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let digits: String =
                        std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_digit() || *c == ','))
                            .collect();
                    assert_eq!(chars.next(), Some('}'), "unterminated {{}} in {pattern:?}");
                    match digits.split_once(',') {
                        Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                        None => {
                            let n = digits.parse().unwrap();
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            elements.push(Element::Class(set, min, max));
        }
        elements
    }

    /// Generates a string matching `pattern` (subset: char classes with
    /// ranges/escapes, literals, and `{m,n}`/`{n}`/`*`/`+`/`?`).
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for Element::Class(set, min, max) in parse(pattern) {
            let count = rng.random_range(min..=max);
            for _ in 0..count {
                out.push(set[rng.random_range(0..set.len())]);
            }
        }
        out
    }
}

/// Config, RNG plumbing, and failure reporting for `proptest!`.
pub mod test_runner {
    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Per-test configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A deterministic RNG derived from the test's full path, so each
    /// test sees a stable stream independent of execution order.
    pub fn rng_for(test_path: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        <TestRng as rand::SeedableRng>::seed_from_u64(h)
    }

    /// Prints the failing case's inputs while the test unwinds, since
    /// this implementation has no shrinking to re-derive them.
    #[derive(Debug)]
    pub struct CaseGuard {
        desc: String,
        case: u32,
        armed: bool,
    }

    impl CaseGuard {
        /// Arms the guard with a rendered `name = value` list.
        pub fn new(case: u32, desc: String) -> Self {
            CaseGuard {
                desc,
                case,
                armed: true,
            }
        }

        /// Disarms after the case body completes successfully.
        pub fn disarm(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest: case #{} failed with inputs: {}",
                    self.case, self.desc
                );
            }
        }
    }
}

/// One-stop imports, mirroring upstream's `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a test running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = __strategies;
                    ($($crate::strategy::Strategy::generate($arg, &mut __rng),)+)
                };
                let mut __guard = $crate::test_runner::CaseGuard::new(
                    __case,
                    format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg,)+
                    ),
                );
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in -2i32..=2, x in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.5..1.5).contains(&x), "x = {x}");
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u8..4, any::<bool>()), 0..6),
            s in prop_oneof![Just(1usize), 2usize..5],
            only_even in (0u32..50).prop_map(|n| n * 2).prop_filter("even", |n| n % 2 == 0),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!((1..5).contains(&s));
            prop_assert_eq!(only_even % 2, 0);
        }

        #[test]
        fn string_pattern_subset(s in "[ -~\\n]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..6);
        let a = strat.generate(&mut crate::test_runner::rng_for("x::y"));
        let b = strat.generate(&mut crate::test_runner::rng_for("x::y"));
        assert_eq!(a, b);
    }
}
