//! Property-based tests of the decoders: totality (every syndrome decodes),
//! determinism, and exact-matching optimality versus the greedy fallback.

use caliqec_match::{graph_for_circuit, Decoder, MatchingGraph, MwpmDecoder, UnionFindDecoder};
use caliqec_stab::{Basis, Circuit, Noise1};
use proptest::prelude::*;

/// A repetition-chain matching graph with `n` detectors in a path plus
/// boundary edges at both ends.
fn chain_graph(n: usize) -> MatchingGraph {
    let data: Vec<u32> = (0..=n as u32).collect();
    let anc: Vec<u32> = ((n + 1) as u32..(2 * n + 1) as u32).collect();
    let mut c = Circuit::new(2 * n + 1);
    c.reset(Basis::Z, &(0..(2 * n + 1) as u32).collect::<Vec<_>>());
    c.noise1(Noise1::XError, 0.01, &data);
    for i in 0..n {
        c.cx(data[i], anc[i]);
        c.cx(data[i + 1], anc[i]);
    }
    let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
    for m in &ms {
        c.detector(&[*m]);
    }
    let md = c.measure(data[0], Basis::Z, 0.0);
    c.observable(0, &[md]);
    graph_for_circuit(&c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both decoders accept any defect subset without panicking, and are
    /// deterministic.
    #[test]
    fn decoders_total_and_deterministic(
        n in 3usize..10,
        raw_defects in prop::collection::btree_set(0usize..9, 0..6),
    ) {
        let graph = chain_graph(n);
        let defects: Vec<usize> = raw_defects.into_iter().filter(|&d| d < n).collect();
        let mut uf = UnionFindDecoder::new(graph.clone());
        let mut mwpm = MwpmDecoder::new(graph);
        let u1 = uf.decode(&defects);
        let u2 = uf.decode(&defects);
        prop_assert_eq!(u1, u2, "union-find must be deterministic");
        let m1 = mwpm.decode(&defects);
        let m2 = mwpm.decode(&defects);
        prop_assert_eq!(m1, m2, "MWPM must be deterministic");
    }

    /// On a chain, any single error's syndrome decodes back to a correction
    /// with the right logical effect: the decoder's prediction must match
    /// the actual observable flip of that error.
    #[test]
    fn single_error_always_corrected(n in 3usize..10, qubit in 0usize..9) {
        let qubit = qubit.min(n); // data qubits 0..=n
        let graph = chain_graph(n);
        // An X on data qubit q flips detectors q-1 and q (when in range);
        // the observable (data qubit 0) flips iff q == 0.
        let mut defects = Vec::new();
        if qubit >= 1 {
            defects.push(qubit - 1);
        }
        if qubit < n {
            defects.push(qubit);
        }
        let actual_obs = u64::from(qubit == 0);
        let mut uf = UnionFindDecoder::new(graph.clone());
        prop_assert_eq!(uf.decode(&defects), actual_obs, "UF mis-corrects X{}", qubit);
        let mut mwpm = MwpmDecoder::new(graph);
        prop_assert_eq!(mwpm.decode(&defects), actual_obs, "MWPM mis-corrects X{}", qubit);
    }

    /// Exact matching never predicts a more expensive pairing than greedy:
    /// on chains their predictions coincide for sparse syndromes.
    #[test]
    fn exact_and_greedy_agree_on_sparse_chains(
        n in 4usize..10,
        a in 0usize..9,
    ) {
        let a = a.min(n - 1);
        let graph = chain_graph(n);
        let mut exact = MwpmDecoder::new(graph.clone());
        let mut greedy = MwpmDecoder::with_max_exact(graph, 0);
        // A 2-defect adjacent pair: unambiguous interior match.
        if a + 1 < n {
            let defects = vec![a, a + 1];
            prop_assert_eq!(exact.decode(&defects), greedy.decode(&defects));
        }
    }
}
