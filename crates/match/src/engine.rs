//! Thread-parallel Monte-Carlo logical-error-rate engine.
//!
//! [`LerEngine`] dispatches 64-shot batches, grouped into fixed-size
//! chunks, to worker threads over a shared [`CompiledCircuit`]. The
//! determinism contract: **results depend only on `(options, base_seed)`
//! — never on the thread count or scheduling order.** Concretely:
//!
//! - The chunk size is a function of the shot budget alone, and every
//!   64-shot batch `b` (numbered globally across the run) samples from its
//!   own RNG seeded by [`chunk_seed`]`(base_seed, b)`. Per-*batch* seeding
//!   makes batches independent streams, which lets a chunk sample
//!   [`LANES`] of them in SIMD lockstep ([`CompiledCircuit::sample_batches_wide_into`])
//!   while each batch stays bit-identical to a narrow
//!   `sample_batch_into` replay with the same seed.
//! - `max_failures` early-stopping is resolved at chunk granularity: the
//!   run is cut at the *first* chunk at which the cumulative failure count
//!   over chunks `0..=k` reaches the budget, and only chunks up to the cut
//!   contribute to the estimate. Chunks that other workers had already
//!   started are discarded, so a racing thread can waste work but never
//!   change the answer.
//! - [`estimate_ler_seeded`] runs the identical chunk schedule on the
//!   calling thread; [`LerEngine::estimate`] at any thread count returns
//!   the same [`LerEstimate`] bit-for-bit.
//!
//! Wall-clock, per-phase timing, and throughput land in [`EngineRun`],
//! deliberately outside `LerEstimate` so estimates stay comparable.
//!
//! # Failure model
//!
//! The engine is hardened against decoder faults (see DESIGN.md §9):
//!
//! - Inputs are validated up front by the fallible entry points
//!   ([`LerEngine::try_estimate`] and friends) — a malformed circuit or
//!   matching graph returns a typed [`EngineError`] instead of panicking
//!   inside a worker.
//! - Each chunk's sample+decode runs under `catch_unwind`. A chunk that
//!   panics (or stalls, or trips graph validation) is quarantined and
//!   re-run with the **same** per-batch seed schedule on the next
//!   rung of a degradation ladder: rung 0 is the factory's decoder with
//!   its predecoder, rung 1 a freshly built decoder without the
//!   predecoder, rung 2 a [`ReferenceUnionFind`] over the factory's
//!   fallback graph. Because the sampled shots depend only on the chunk's
//!   batch seeds, a retry re-decodes the *identical* syndrome stream.
//! - A worker panic can no longer cascade: the shared mutex recovers from
//!   poisoning via `PoisonError::into_inner`, and a chunk that faults on
//!   every rung surfaces as one typed [`EngineError::ChunkFailed`].
//! - Every fault is accounted in [`EngineRun`] (`faulted_chunks`,
//!   `retried_chunks`, `degraded_shots`, per-rung and per-kind counters);
//!   when no fault fires the results are bit-identical to the unhardened
//!   engine and all fault counters are zero.
//!
//! The [`crate::faults`] module can inject faults at chosen chunk indices
//! to exercise this machinery deterministically; injection only ever fires
//! on a chunk's first (rung-0) attempt.

use crate::cluster::{cluster_hist_bucket, ClusterTier, CLUSTER_HIST_BUCKETS};
use crate::decode::{Decoder, LerEstimate, SampleOptions};
use crate::error::{EngineError, ValidationError};
use crate::faults::{FaultKind, FaultPlan};
use crate::graph::MatchingGraph;
use crate::predecode::{ClusterGate, Predecoder, CLUSTER_GATE_MIN_MEAN_DEFECTS};
use crate::reference::ReferenceUnionFind;
use caliqec_obs::{Counter, Event, EventKind, Gauge, Hist, ObsSink, WorkerObs};
use caliqec_stab::{
    chunk_seed, resolve_threads, BatchEvents, Circuit, CompiledCircuit, FrameState, RateTable,
    SparseBatch, WideFrameState, BATCH, LANES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Builds per-worker decoder instances for parallel estimation.
///
/// Blanket-implemented for any `Fn() -> D` closure that is `Sync`, so the
/// idiomatic call site is:
///
/// ```ignore
/// let graph = graph_for_circuit(&circuit);
/// engine.estimate(&compiled, &|| UnionFindDecoder::new(graph.clone()), opts, seed);
/// ```
pub trait DecoderFactory: Sync {
    /// The decoder type produced.
    type Decoder: Decoder;

    /// Builds one decoder. Called once per worker thread (and once more
    /// after any quarantined chunk, since a panicking decoder may leave
    /// its scratch torn).
    fn build(&self) -> Self::Decoder;

    /// Optional tier-1 predecoder placed in front of every decoder this
    /// factory builds (one clone per worker; clones share their tables).
    /// The default is `None` — plain factories decode every nonempty shot
    /// in full. Wrap a factory in [`crate::Tiered`] to enable it.
    fn predecoder(&self) -> Option<Predecoder> {
        None
    }

    /// Validates whatever inputs this factory bakes into its decoders.
    /// The fallible engine entry points call this before launching
    /// workers; the default factory has nothing visible to check.
    fn validate(&self) -> Result<(), ValidationError> {
        Ok(())
    }

    /// Optional dense-regime cluster tier placed in front of every rung-0
    /// decoder (one instance per worker; instances share their tables).
    /// The default is `None` — dense shots decode monolithically. Wrap a
    /// factory in [`crate::Tiered`] and call [`crate::Tiered::with_cluster`]
    /// to enable it.
    fn cluster_tier(&self) -> Option<ClusterTier> {
        None
    }

    /// How the engine should gate the cluster tier by defect density.
    /// Meaningful only when [`DecoderFactory::cluster_tier`] returns one;
    /// [`ClusterGate::Auto`] lets the engine skip the decomposition for
    /// batches whose mean defect count is below
    /// [`DecoderFactory::cluster_gate_threshold`].
    fn cluster_gate(&self) -> ClusterGate {
        ClusterGate::Off
    }

    /// Mean defects per shot at which [`ClusterGate::Auto`] fires the
    /// cluster tier for a batch. Defaults to the workspace-tuned
    /// [`CLUSTER_GATE_MIN_MEAN_DEFECTS`]; deployments with a different
    /// dense/sparse crossover (or a shed fast path that wants the cluster
    /// tier earlier) override it via
    /// [`crate::Tiered::with_cluster_gate_threshold`].
    fn cluster_gate_threshold(&self) -> f64 {
        CLUSTER_GATE_MIN_MEAN_DEFECTS
    }

    /// The matching graph backing this factory's decoders, if the factory
    /// exposes one. Rung 2 of the degradation ladder builds a
    /// [`ReferenceUnionFind`] from it; without one the ladder ends at
    /// rung 1.
    fn fallback_graph(&self) -> Option<&MatchingGraph> {
        None
    }
}

impl<D: Decoder, F: Fn() -> D + Sync> DecoderFactory for F {
    type Decoder = D;

    fn build(&self) -> D {
        self()
    }
}

/// Builds decoders over a *given* graph, for the calibration-epoch entry
/// points where the engine owns one reweighted graph per epoch.
///
/// Blanket-implemented for any `Fn(&MatchingGraph) -> D` closure that is
/// `Sync`:
///
/// ```ignore
/// engine.estimate_epochs(&compiled, &graph,
///     &|g: &MatchingGraph| UnionFindDecoder::new(g.clone()),
///     &schedule, opts, seed);
/// ```
pub trait GraphDecoderFactory: Sync {
    /// The decoder type produced.
    type Decoder: Decoder;

    /// Builds one decoder over `graph` (already reweighted for the epoch it
    /// will decode).
    fn build_for(&self, graph: &MatchingGraph) -> Self::Decoder;

    /// Whether epoch contexts should carry a dense-regime cluster tier
    /// (built per epoch from the epoch predecoder's tables, since both are
    /// weight-derived). Defaults to off, mirroring
    /// [`DecoderFactory::cluster_tier`].
    fn cluster(&self) -> bool {
        false
    }
}

impl<D: Decoder, F: Fn(&MatchingGraph) -> D + Sync> GraphDecoderFactory for F {
    type Decoder = D;

    fn build_for(&self, graph: &MatchingGraph) -> D {
        self(graph)
    }
}

/// One calibration epoch: the per-gate rates in force from `hours` onward
/// (until the next epoch starts).
#[derive(Clone, Debug)]
pub struct CalibrationEpoch {
    /// Simulated device time (hours) at which these rates take effect.
    pub hours: f64,
    /// Per-gate rates characterized at that time.
    pub rates: RateTable,
}

/// A schedule of calibration epochs over a simulated run horizon.
///
/// [`LerEngine::estimate_epochs`] spreads the shot budget uniformly over
/// `[0, horizon_hours]` and decodes each chunk with the epoch active at the
/// chunk's midpoint time — the epoch with the largest `hours` not exceeding
/// it (the first epoch covers any earlier time). An empty schedule behaves
/// as a single identity epoch: every chunk decodes with the base graph
/// unchanged.
#[derive(Clone, Debug)]
pub struct EpochSchedule {
    horizon_hours: f64,
    epochs: Vec<CalibrationEpoch>,
}

impl EpochSchedule {
    /// An empty schedule over `horizon_hours` of simulated time.
    pub fn new(horizon_hours: f64) -> EpochSchedule {
        EpochSchedule {
            horizon_hours: horizon_hours.max(0.0),
            epochs: Vec::new(),
        }
    }

    /// Appends an epoch, keeping the list sorted by start time (stable:
    /// among equal start times the later push wins the later slot).
    pub fn push(&mut self, hours: f64, rates: RateTable) {
        let at = self.epochs.partition_point(|e| e.hours <= hours);
        self.epochs.insert(at, CalibrationEpoch { hours, rates });
    }

    /// The simulated run horizon in hours.
    pub fn horizon_hours(&self) -> f64 {
        self.horizon_hours
    }

    /// The epochs, sorted by start time.
    pub fn epochs(&self) -> &[CalibrationEpoch] {
        &self.epochs
    }

    /// Index (into [`EpochSchedule::epochs`]) of the epoch active at
    /// simulated time `hours`: the last epoch starting at or before it,
    /// clamped to the first. Returns 0 for an empty schedule.
    pub fn active_at(&self, hours: f64) -> usize {
        self.epochs
            .partition_point(|e| e.hours <= hours)
            .saturating_sub(1)
    }
}

/// Options for rare-event (importance-sampled) estimation via
/// [`LerEngine::estimate_rare`].
#[derive(Clone, Debug)]
pub struct RareOptions {
    /// Rate boost factor β: every fault channel fires at
    /// `min(β · p, ½)` (never below its nominal rate). `1.0` degenerates
    /// to the plain unweighted sampler bit for bit.
    pub boost_beta: f64,
    /// Target relative CI half-width: the run stops at the first chunk
    /// boundary where the 95% CI half-width of the weighted LER estimate
    /// is at most `target_rse · estimate` (once `min_shots` have been
    /// decoded). `≤ 0` disables CI stopping — the run consumes the full
    /// shot budget, exactly like [`SampleOptions`] with no failure cap.
    pub target_rse: f64,
    /// Minimum shots before the CI stopping rule may fire (also the whole
    /// budget when `max_shots` is 0).
    pub min_shots: usize,
    /// Shot budget ceiling (0 = `min_shots` is the whole budget).
    pub max_shots: usize,
    /// Nominal per-channel rates: overrides compose with β exactly like a
    /// calibration-epoch reweight
    /// ([`CompiledCircuit::boosted_with_rates`]). Identity = the compiled
    /// circuit's own rates.
    pub rates: RateTable,
}

impl Default for RareOptions {
    fn default() -> RareOptions {
        RareOptions {
            boost_beta: 4.0,
            target_rse: 0.1,
            min_shots: 10_000,
            max_shots: 0,
            rates: RateTable::identity(),
        }
    }
}

/// The deterministic work schedule shared by the parallel engine and the
/// serial reference path.
#[derive(Clone, Copy, Debug)]
struct ChunkPlan {
    /// Batches per chunk — a function of the shot budget only.
    chunk_batches: usize,
    /// Total chunks covering `max_batches`.
    num_chunks: usize,
    /// Total batch budget.
    max_batches: usize,
    /// Failure budget (0 = run the full batch budget).
    max_failures: usize,
    /// Relative-CI stopping target for rare-event runs (≤ 0 disables; see
    /// [`RareOptions::target_rse`]). Resolved at chunk granularity like
    /// `max_failures`, so the cut is thread-count independent.
    target_rse: f64,
    /// Batches that must complete before the CI rule may fire.
    min_ci_batches: usize,
}

impl ChunkPlan {
    fn new(options: SampleOptions) -> ChunkPlan {
        let min_batches = options.min_shots.div_ceil(BATCH).max(1);
        let max_batches = if options.max_shots == 0 {
            min_batches
        } else {
            options.max_shots.div_ceil(BATCH).max(min_batches)
        };
        // Aim for ~64 chunks so early-stopping stays reasonably fine-grained
        // while per-chunk overhead amortizes; never let the chunk size depend
        // on the thread count, or determinism across thread counts breaks.
        let chunk_batches = max_batches.div_ceil(64).clamp(1, 64);
        ChunkPlan {
            chunk_batches,
            num_chunks: max_batches.div_ceil(chunk_batches),
            max_batches,
            max_failures: options.max_failures,
            target_rse: 0.0,
            min_ci_batches: 0,
        }
    }

    /// The schedule for a rare-event run: identical batch/chunk geometry
    /// to [`ChunkPlan::new`] over the same `(min_shots, max_shots)` — so a
    /// β=1 rare run replays a plain run's chunk schedule bit for bit —
    /// plus the CI stopping rule in place of the failure budget.
    fn rare(options: &RareOptions) -> ChunkPlan {
        let base = ChunkPlan::new(SampleOptions {
            min_shots: options.min_shots,
            max_failures: 0,
            max_shots: options.max_shots,
        });
        ChunkPlan {
            target_rse: options.target_rse.max(0.0),
            min_ci_batches: options.min_shots.div_ceil(BATCH).max(1),
            ..base
        }
    }

    /// Global index of the first batch of `chunk` — the unit the
    /// per-batch RNG schedule is keyed on ([`chunk_seed`]`(base_seed,
    /// first_batch + k)` seeds the chunk's `k`-th batch).
    fn first_batch(&self, chunk: usize) -> usize {
        chunk * self.chunk_batches
    }

    /// Number of batches chunk `chunk` samples (the last chunk may be short).
    fn batches_in(&self, chunk: usize) -> usize {
        self.chunk_batches
            .min(self.max_batches - self.first_batch(chunk))
    }
}

/// Per-worker sampling scratch, reused across every rung of every chunk a
/// worker touches: the narrow frame state (tail batches), the [`LANES`]-wide
/// lockstep state, one [`BatchEvents`] per lane, and the sparse extractor.
struct SampleScratch {
    state: FrameState,
    wide: WideFrameState,
    events: [BatchEvents; LANES],
    sparse: SparseBatch,
    /// Per-lane log-likelihood ratios for weighted (boosted) sampling;
    /// untouched on plain runs.
    llr: Box<[[f64; BATCH]; LANES]>,
}

impl SampleScratch {
    fn new(compiled: &CompiledCircuit) -> SampleScratch {
        SampleScratch {
            state: FrameState::new(compiled),
            wide: WideFrameState::new(compiled),
            events: std::array::from_fn(|_| BatchEvents::default()),
            sparse: SparseBatch::new(),
            llr: Box::new([[0.0; BATCH]; LANES]),
        }
    }
}

/// Buckets of the per-run defect-count histogram: exact counts `0..=31`
/// plus log-scaled tail buckets (32–63, 64–127, 128–255, ≥256). At d = 15
/// a single ≥32 overflow bucket used to swallow >99% of shots; the log tail
/// keeps the dense regime visible.
pub const DEFECT_HIST_BUCKETS: usize = 36;

/// Maps a per-shot defect count to its bucket in
/// [`EngineRun::defect_histogram`]: counts below 32 map to themselves, the
/// tail is log-scaled (32–63 → 32, 64–127 → 33, 128–255 → 34, ≥256 → 35).
pub fn defect_hist_bucket(defects: usize) -> usize {
    match defects {
        0..=31 => defects,
        32..=63 => 32,
        64..=127 => 33,
        128..=255 => 34,
        _ => 35,
    }
}

/// Rungs of the decoder degradation ladder: the factory decoder with its
/// predecoder, a fresh factory decoder without predecode, and a
/// [`ReferenceUnionFind`] over the factory's fallback graph.
pub const LADDER_RUNGS: usize = 3;

/// Outcome of sampling and decoding one chunk.
#[derive(Clone, Copy, Debug)]
struct ChunkResult {
    batches: usize,
    failures: usize,
    /// Whether the chunk sampled under boosted rates with per-shot
    /// likelihood weights. On plain chunks the weighted sums below are
    /// filled from the integer counters (weight ≡ 1) — exactly, since
    /// every count fits in f64 — so downstream ESS/CI accounting is
    /// uniform across both kinds of run.
    weighted: bool,
    /// Σ wₛ over the chunk's shots (= shot count when unweighted).
    sum_w: f64,
    /// Σ wₛ² (= shot count when unweighted).
    sum_w2: f64,
    /// Σ wₛ over failing shots (= `failures` when unweighted).
    sum_wf: f64,
    /// Σ wₛ² over failing shots (= `failures` when unweighted).
    sum_w2f: f64,
    /// Batches the cluster-density gate ran the decomposition for (0 when
    /// no cluster tier was armed).
    cluster_gate_on: usize,
    /// Batches the gate diverted to the monolithic path.
    cluster_gate_off: usize,
    tier0_shots: usize,
    predecoded_shots: usize,
    predecoded_defects: usize,
    residual_shots: usize,
    clustered_shots: usize,
    clustered_defects: usize,
    clusters_total: u64,
    cluster_size_histogram: [u64; CLUSTER_HIST_BUCKETS],
    defect_histogram: [u64; DEFECT_HIST_BUCKETS],
    sample_seconds: f64,
    extract_seconds: f64,
    predecode_seconds: f64,
    cluster_seconds: f64,
    decode_seconds: f64,
}

/// Why one chunk attempt did not produce a result.
#[derive(Clone, Debug)]
enum ChunkFault {
    /// The decode panicked (caught by `catch_unwind`).
    Panicked(String),
    /// The attempt overran its stall deadline.
    Stalled {
        /// How long the attempt took.
        elapsed: Duration,
        /// The deadline it overran.
        deadline: Duration,
    },
    /// The graph presented to the attempt failed validation.
    InvalidGraph(ValidationError),
}

impl fmt::Display for ChunkFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkFault::Panicked(msg) => write!(f, "panicked: {msg}"),
            ChunkFault::Stalled { elapsed, deadline } => write!(
                f,
                "stalled: {:.1} ms exceeded the {:.1} ms deadline",
                elapsed.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            ChunkFault::InvalidGraph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-chunk fault bookkeeping accumulated by a worker, merged into
/// [`Shared`] under one lock.
#[derive(Clone, Copy, Debug, Default)]
struct FaultTally {
    faults: usize,
    retries: usize,
    panics: usize,
    stalls: usize,
    graphs: usize,
}

impl FaultTally {
    fn record(&mut self, fault: &ChunkFault) {
        self.faults += 1;
        match fault {
            ChunkFault::Panicked(_) => self.panics += 1,
            ChunkFault::Stalled { .. } => self.stalls += 1,
            ChunkFault::InvalidGraph(_) => self.graphs += 1,
        }
    }
}

impl ChunkFault {
    /// Stable tag used in journal [`EventKind::Fault`] events.
    fn tag(&self) -> &'static str {
        match self {
            ChunkFault::Panicked(_) => "panic",
            ChunkFault::Stalled { .. } => "stall",
            ChunkFault::InvalidGraph(_) => "invalid_graph",
        }
    }

    /// The obs counter accounting this fault kind.
    fn counter(&self) -> Counter {
        match self {
            ChunkFault::Panicked(_) => Counter::FaultsPanic,
            ChunkFault::Stalled { .. } => Counter::FaultsStall,
            ChunkFault::InvalidGraph(_) => Counter::FaultsGraph,
        }
    }
}

/// The per-shot decode-latency histogram for a given ladder rung.
fn decode_hist_for(rung: usize) -> Hist {
    match rung {
        0 => Hist::DecodeShotRung0,
        1 => Hist::DecodeShotRung1,
        _ => Hist::DecodeShotRung2,
    }
}

/// Records one epoch-context build (metrics + journal) on the coordinator
/// handle. `started` is the [`WorkerObs::clock`] reading taken before the
/// build; a disabled handle makes this a no-op.
fn record_reweight(coord: &mut WorkerObs, epoch: u32, started: Option<Instant>) {
    if let Some(t0) = started {
        let nanos = t0.elapsed().as_nanos() as u64;
        coord.add(Counter::EpochReweights, 1);
        coord.record(Hist::EpochReweight, nanos);
        coord.event(EventKind::EpochReweight { epoch, nanos });
    }
}

/// Per-window decode statistics accumulated by [`decode_window_masks`].
///
/// The batch engine accumulates one of these per chunk (every batch in the
/// chunk sums into the same struct); the streaming service accumulates one
/// per decoded window. All fields are deterministic functions of the
/// window's syndrome content and the decoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct WindowStats {
    /// Shots with an empty defect list (identity correction, no decoder).
    pub tier0_shots: usize,
    /// Shots certified by the tier-1 predecoder.
    pub predecoded_shots: usize,
    /// Defects on those certified shots.
    pub predecoded_defects: usize,
    /// Shots that reached a full-decoder call.
    pub residual_shots: usize,
    /// Dense shots fully resolved by the cluster tier.
    pub clustered_shots: usize,
    /// Defects peeled by certified clusters.
    pub clustered_defects: usize,
    /// Flood clusters decomposed.
    pub clusters_total: u64,
    /// Cluster-size histogram ([`cluster_hist_bucket`] buckets).
    pub cluster_size_histogram: [u64; CLUSTER_HIST_BUCKETS],
    /// Per-shot defect-count histogram ([`defect_hist_bucket`] buckets).
    pub defect_histogram: [u64; DEFECT_HIST_BUCKETS],
    /// Time inside the tier-dispatch classification scan (the batch engine
    /// charges this to `extract_seconds`, preserving its historical phase
    /// partition).
    pub classify_seconds: f64,
    /// Predecoder certification time.
    pub predecode_seconds: f64,
    /// Flood-decomposition time.
    pub cluster_seconds: f64,
    /// Full-decoder time.
    pub decode_seconds: f64,
}

impl Default for WindowStats {
    fn default() -> WindowStats {
        WindowStats {
            tier0_shots: 0,
            predecoded_shots: 0,
            predecoded_defects: 0,
            residual_shots: 0,
            clustered_shots: 0,
            clustered_defects: 0,
            clusters_total: 0,
            cluster_size_histogram: [0; CLUSTER_HIST_BUCKETS],
            defect_histogram: [0; DEFECT_HIST_BUCKETS],
            classify_seconds: 0.0,
            predecode_seconds: 0.0,
            cluster_seconds: 0.0,
            decode_seconds: 0.0,
        }
    }
}

/// Per-call outcome of [`decode_window_masks`]: the window facts that are
/// not additive across windows.
#[derive(Clone, Copy, Debug)]
pub struct WindowOutcome {
    /// Total defects across the window's shots.
    pub defects: usize,
    /// Whether the defect-density gate ran the cluster decomposition for
    /// this window (always `false` without an armed cluster tier).
    pub cluster_ran: bool,
}

/// Reusable shot-classification scratch for [`decode_window_masks`]:
/// tier-dispatch index lists whose capacity persists across windows.
#[derive(Clone, Debug, Default)]
pub struct WindowScratch {
    /// Shots past the certification bound, straight to the full decoder.
    dense: Vec<u32>,
    /// Predecoder candidates.
    cand: Vec<u32>,
    /// Candidates the predecoder declined.
    uncertified: Vec<u32>,
}

/// Decodes one extracted 64-shot window into per-shot predicted observable
/// masks — the tier-dispatch core shared by the batch engine
/// ([`LerEngine`]) and the streaming service ([`crate::StreamingDecoder`]).
///
/// `masks[s]` receives the decoder stack's predicted observable mask for
/// shot `s`: `0` for an empty syndrome, the certified mask for a
/// predecoded shot, the peel-XOR-residual mask on the cluster path, and
/// the full decoder's mask otherwise. Callers that know the ground truth
/// (the batch engine, which sampled the observables alongside the
/// detectors) XOR against it to count failures; callers that don't (a
/// streaming service fed detector events only) forward the masks as
/// corrections. The mask of every shot is a deterministic function of
/// `(window contents, decoder configuration)` — nothing here depends on
/// wall clock or thread interleaving.
///
/// Tier accounting accumulates into `stats` (additive across windows);
/// per-window facts return in the [`WindowOutcome`]. The density `gate`
/// compares the window's mean defect count against `gate_threshold`
/// (see [`DecoderFactory::cluster_gate_threshold`]).
#[allow(clippy::too_many_arguments)]
pub fn decode_window_masks<D: Decoder>(
    decoder: &mut D,
    predecoder: Option<&mut Predecoder>,
    cluster: Option<&mut ClusterTier>,
    gate: ClusterGate,
    gate_threshold: f64,
    sparse: &SparseBatch,
    scratch: &mut WindowScratch,
    obs: &mut WorkerObs,
    decode_hist: Hist,
    stats: &mut WindowStats,
    masks: &mut [u64; BATCH],
) -> WindowOutcome {
    let WindowScratch {
        dense,
        cand,
        uncertified,
    } = scratch;
    let has_pre = predecoder.is_some();
    // Tier dispatch: tier 0 (empty defect list — identity correction) is
    // resolved here; shots past the certification bound go straight to
    // `dense` (at d ≥ 15 this is nearly every shot, and the predecoder
    // phase used to pay for all of them).
    let t1 = Instant::now();
    dense.clear();
    cand.clear();
    let mut window_defects = 0usize;
    for (s, mask) in masks.iter_mut().enumerate() {
        let defects = sparse.defect_count(s);
        stats.defect_histogram[defect_hist_bucket(defects)] += 1;
        window_defects += defects;
        if defects == 0 {
            stats.tier0_shots += 1;
            *mask = 0;
        } else if has_pre && defects <= Predecoder::MAX_CERT_DEFECTS {
            cand.push(s as u32);
        } else {
            dense.push(s as u32);
        }
    }
    let t2 = Instant::now();
    stats.classify_seconds += (t2 - t1).as_secs_f64();
    uncertified.clear();
    if let Some(pre) = predecoder {
        // Dense configs leave `cand` empty for almost every window;
        // skipping the pass entirely avoids paying the per-shot timer
        // setup just to report a tier that never fired.
        if !cand.is_empty() {
            let mut shot_t = obs.clock();
            for &s in cand.iter() {
                let s = s as usize;
                if let Some(mask) = pre.predecode(sparse.defects(s)) {
                    stats.predecoded_shots += 1;
                    stats.predecoded_defects += sparse.defect_count(s);
                    masks[s] = mask;
                } else {
                    uncertified.push(s as u32);
                }
                shot_t = obs.record_since(Hist::PredecodeShot, shot_t);
            }
        }
    }
    let t3 = Instant::now();
    stats.predecode_seconds += (t3 - t2).as_secs_f64();
    // Defect-density gate: below the threshold, the flood decomposition
    // costs more than the monolithic decodes it replaces, so `Auto`
    // diverts sparse windows to the merge path. Both paths decode every
    // shot exactly, so gating never changes a mask — only where the time
    // goes.
    let cluster_ran = cluster.is_some()
        && match gate {
            ClusterGate::On => true,
            ClusterGate::Off => false,
            ClusterGate::Auto => window_defects as f64 / BATCH as f64 >= gate_threshold,
        };
    if let Some(clu) = cluster.filter(|_| cluster_ran) {
        // Dense shots: flood-decompose, peel certified clusters, decode
        // the residual union in one full-decoder call, XOR the masks.
        // Phase time is summed per shot (decomposition vs decoding), so
        // loop-tail bookkeeping is charged to neither and the timers
        // stay below wall clock.
        for &s in dense.iter() {
            let s = s as usize;
            let c0 = Instant::now();
            let out = clu.decompose(sparse.defects(s));
            let c1 = Instant::now();
            stats.cluster_seconds += (c1 - c0).as_secs_f64();
            stats.clusters_total += out.clusters as u64;
            for &size in clu.cluster_sizes() {
                stats.cluster_size_histogram[cluster_hist_bucket(size as usize)] += 1;
            }
            stats.clustered_defects += out.peeled_defects as usize;
            let mut mask = out.mask;
            if out.fully_peeled() {
                stats.clustered_shots += 1;
                if obs.enabled() {
                    obs.record(Hist::ClusterShot, (c1 - c0).as_nanos() as u64);
                }
            } else {
                stats.residual_shots += 1;
                let d0 = Instant::now();
                mask ^= decoder.decode(clu.residual_defects());
                let d1 = Instant::now();
                stats.decode_seconds += (d1 - d0).as_secs_f64();
                if obs.enabled() {
                    obs.record(decode_hist, (d1 - d0).as_nanos() as u64);
                }
            }
            masks[s] = mask;
        }
        // The predecoder-declined candidates still decode monolithically
        // (they are at most MAX_CERT_DEFECTS defects — not dense).
        let mut shot_t = obs.clock();
        for &s in uncertified.iter() {
            let s = s as usize;
            let d0 = Instant::now();
            masks[s] = decoder.decode(sparse.defects(s));
            stats.decode_seconds += d0.elapsed().as_secs_f64();
            shot_t = obs.record_since(decode_hist, shot_t);
        }
        stats.residual_shots += uncertified.len();
    } else {
        // Decode dense ∪ uncertified in ascending shot order (both lists
        // are ascending — a two-pointer merge preserves the historic
        // decode order exactly).
        let mut shot_t = obs.clock();
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let s = match (dense.get(i), uncertified.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        i += 1;
                        a
                    } else {
                        j += 1;
                        b
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            } as usize;
            masks[s] = decoder.decode(sparse.defects(s));
            shot_t = obs.record_since(decode_hist, shot_t);
        }
        stats.decode_seconds += (t3.elapsed()).as_secs_f64();
        stats.residual_shots += dense.len() + uncertified.len();
    }
    WindowOutcome {
        defects: window_defects,
        cluster_ran,
    }
}

/// Samples and decodes one chunk from its deterministic seed.
///
/// The phases are timed separately and *partition* the chunk's wall time:
/// frame sampling (`t0..t1`), word-sparse syndrome extraction plus
/// tier-dispatch bookkeeping (`t1..t2` — defect counting, the histogram,
/// and tier-0 skips are syndrome accounting, so they are charged to
/// `extract_seconds`, not to a decode phase), predecoder certification
/// (`t2..t3`), and full decoding of the residual shots (`t3..t4`).
/// Historically the defect scan was charged to `predecode_seconds` and the
/// loop-tail bookkeeping to `decode_seconds`; the four-way split makes
/// `sample + extract + predecode + decode <= wall` hold per worker with
/// each phase measuring only its own work.
///
/// Tier dispatch preserves the failure count bit for bit: tier-0 skips
/// reproduce `decode(&[]) == 0`, and a [`Predecoder`] only certifies shots
/// whose local correction provably equals the full decoder's. The residual
/// shots reach `decoder` in ascending shot order, exactly as before (the
/// dense shots and the failed predecode candidates are merged by shot
/// index).
///
/// When `obs` is enabled, per-shot predecode/decode latencies land in the
/// histograms (`decode_hist` selects the rung-specific decode histogram);
/// a disabled handle costs one branch per shot and reads no clock.
///
/// When a [`ClusterTier`] is supplied (rung 0 of a cluster-enabled
/// [`crate::Tiered`] factory only), dense shots are flood-decomposed into
/// independent clusters first: certified clusters are peeled without a
/// decoder call (a fully-peeled shot counts as `clustered`, not
/// `residual`), and each uncertified cluster is decoded by its own
/// `decoder.decode` call on the cluster's defect slice, the masks XORed.
/// Decomposition time is charged to `cluster_seconds`; per-cluster decoder
/// calls to `decode_seconds`. The per-batch phase timestamps are replaced
/// by per-shot interval sums on this path, so the timers still never
/// exceed wall clock.
#[allow(clippy::too_many_arguments)]
fn run_chunk<D: Decoder>(
    compiled: &CompiledCircuit,
    decoder: &mut D,
    mut predecoder: Option<&mut Predecoder>,
    mut cluster: Option<&mut ClusterTier>,
    gate: ClusterGate,
    gate_threshold: f64,
    scratch: &mut SampleScratch,
    plan: &ChunkPlan,
    chunk: usize,
    base_seed: u64,
    obs: &mut WorkerObs,
    decode_hist: Hist,
) -> ChunkResult {
    let batches = plan.batches_in(chunk);
    let first_batch = plan.first_batch(chunk) as u64;
    // Boosted programs sample under importance weights: the weighted
    // sampler variants fill per-lane LLR buffers, and every shot's weight
    // is folded into the Σw/Σw² accumulators below. Retries re-run the
    // same boosted program with the same seeds, so a degraded chunk
    // reproduces identical weights.
    let weighted = compiled.is_boosted();
    let mut sum_w = 0.0f64;
    let mut sum_w2 = 0.0f64;
    let mut sum_wf = 0.0f64;
    let mut sum_w2f = 0.0f64;
    let mut cluster_gate_on = 0usize;
    let mut cluster_gate_off = 0usize;
    let mut failures = 0usize;
    let mut stats = WindowStats::default();
    let mut masks = [0u64; BATCH];
    let mut sample_seconds = 0.0;
    let mut extract_seconds = 0.0;
    let mut window_scratch = WindowScratch::default();
    let SampleScratch {
        state,
        wide,
        events: lane_events,
        sparse,
        llr,
    } = scratch;
    let mut b = 0usize;
    while b < batches {
        // Sample up to LANES batches in lockstep. Each lane is an
        // independent per-batch RNG stream, so the wide path and the
        // narrow tail produce bit-identical words for a given batch index
        // — only the sampling throughput differs.
        let lanes = LANES.min(batches - b);
        let t0 = Instant::now();
        if lanes == LANES {
            let mut rngs: [StdRng; LANES] = std::array::from_fn(|l| {
                StdRng::seed_from_u64(chunk_seed(base_seed, first_batch + (b + l) as u64))
            });
            if weighted {
                compiled.sample_batches_wide_weighted_into(wide, &mut rngs, lane_events, llr);
            } else {
                compiled.sample_batches_wide_into(wide, &mut rngs, lane_events);
            }
        } else {
            for (l, ev) in lane_events[..lanes].iter_mut().enumerate() {
                let mut rng =
                    StdRng::seed_from_u64(chunk_seed(base_seed, first_batch + (b + l) as u64));
                if weighted {
                    compiled.sample_batch_weighted_into(state, &mut rng, ev, &mut llr[l]);
                } else {
                    compiled.sample_batch_into(state, &mut rng, ev);
                }
            }
        }
        sample_seconds += t0.elapsed().as_secs_f64();
        b += lanes;
        for (l, events) in lane_events[..lanes].iter().enumerate() {
            let t1 = Instant::now();
            sparse.extract(events);
            extract_seconds += t1.elapsed().as_secs_f64();
            let outcome = decode_window_masks(
                decoder,
                predecoder.as_deref_mut(),
                cluster.as_deref_mut(),
                gate,
                gate_threshold,
                sparse,
                &mut window_scratch,
                obs,
                decode_hist,
                &mut stats,
                &mut masks,
            );
            if cluster.is_some() {
                if outcome.cluster_ran {
                    cluster_gate_on += 1;
                } else {
                    cluster_gate_off += 1;
                }
            }
            // Score the predicted masks against the sampled ground truth.
            // Every tier's mask is exactly what the pre-refactor inline
            // comparison used, so the failure count is bit-identical.
            let mut failed = 0u64;
            for (s, &mask) in masks.iter().enumerate() {
                if mask != sparse.observables(s) {
                    failures += 1;
                    failed |= 1u64 << s;
                }
            }
            if weighted {
                // Loop-tail bookkeeping: charged to no phase timer, so the
                // phase-sum ≤ wall-clock invariant survives the weighted path.
                for (s, lr) in llr[l].iter().enumerate() {
                    let w = lr.exp();
                    sum_w += w;
                    sum_w2 += w * w;
                    if failed >> s & 1 == 1 {
                        sum_wf += w;
                        sum_w2f += w * w;
                    }
                }
            }
        }
    }
    if !weighted {
        // Plain chunks carry unit weights; filling the sums from the integer
        // counters keeps the CI/ESS arithmetic uniform and exact (u64 shot
        // counts of this size round-trip through f64 losslessly).
        let n = (batches * BATCH) as f64;
        sum_w = n;
        sum_w2 = n;
        sum_wf = failures as f64;
        sum_w2f = failures as f64;
    }
    ChunkResult {
        batches,
        failures,
        weighted,
        sum_w,
        sum_w2,
        sum_wf,
        sum_w2f,
        cluster_gate_on,
        cluster_gate_off,
        tier0_shots: stats.tier0_shots,
        predecoded_shots: stats.predecoded_shots,
        predecoded_defects: stats.predecoded_defects,
        residual_shots: stats.residual_shots,
        clustered_shots: stats.clustered_shots,
        clustered_defects: stats.clustered_defects,
        clusters_total: stats.clusters_total,
        cluster_size_histogram: stats.cluster_size_histogram,
        defect_histogram: stats.defect_histogram,
        sample_seconds,
        // The tier-dispatch classification scan is syndrome accounting,
        // charged to the extract phase as it always was.
        extract_seconds: extract_seconds + stats.classify_seconds,
        predecode_seconds: stats.predecode_seconds,
        cluster_seconds: stats.cluster_seconds,
        decode_seconds: stats.decode_seconds,
    }
}

/// Runs one panic-isolated attempt at a chunk, injecting the scheduled
/// fault first (injections only reach rung-0 attempts; retries pass
/// `injected = None`).
///
/// Injections model real failure classes: `Panic` is a decoder bug,
/// `CorruptDefects` hands the decoder an out-of-range node id as corrupted
/// syndrome extraction would (the resulting index panic is caught like any
/// other), `Stall` sleeps past the stall deadline and is treated as timed
/// out **only on the injected attempt** — legitimate slow chunks are never
/// deadline-checked, so a loaded machine cannot trigger spurious retries —
/// and `BadWeights` validates a weight-poisoned copy of the fallback graph,
/// surfacing the typed [`ValidationError`] a corrupted calibration feed
/// would produce.
#[allow(clippy::too_many_arguments)]
fn attempt_chunk<D: Decoder>(
    compiled: &CompiledCircuit,
    decoder: &mut D,
    predecoder: Option<&mut Predecoder>,
    cluster: Option<&mut ClusterTier>,
    gate: ClusterGate,
    gate_threshold: f64,
    scratch: &mut SampleScratch,
    plan: &ChunkPlan,
    chunk: usize,
    base_seed: u64,
    injected: Option<FaultKind>,
    faults: Option<&FaultPlan>,
    fallback_graph: Option<&MatchingGraph>,
    obs: &mut WorkerObs,
    decode_hist: Hist,
) -> Result<ChunkResult, ChunkFault> {
    if let Some(kind) = injected {
        match kind {
            FaultKind::Stall => {
                let plan_ref = faults.expect("stall injection without an armed plan");
                let started = Instant::now();
                std::thread::sleep(plan_ref.stall_sleep());
                let elapsed = started.elapsed();
                if elapsed >= plan_ref.stall_deadline() {
                    return Err(ChunkFault::Stalled {
                        elapsed,
                        deadline: plan_ref.stall_deadline(),
                    });
                }
            }
            FaultKind::BadWeights => {
                let poisoned = crate::faults::poison_weights(fallback_graph);
                if let Err(e) = poisoned.validate() {
                    return Err(ChunkFault::InvalidGraph(e));
                }
            }
            FaultKind::Panic | FaultKind::CorruptDefects | FaultKind::ClusterPanic => {
                let caught = std::panic::catch_unwind(AssertUnwindSafe(|| match kind {
                    FaultKind::Panic => panic!("injected decoder panic at chunk {chunk}"),
                    FaultKind::ClusterPanic => {
                        // A cluster-tier bug: the flood decomposition blows
                        // up before the first decoder call. The retry rung
                        // drops the tier entirely (rungs ≥ 1 pass no
                        // cluster), so recovery decodes monolithically.
                        panic!("injected cluster-tier panic at chunk {chunk}")
                    }
                    FaultKind::CorruptDefects => {
                        // A corrupted syndrome stream: one defect id far past
                        // every node the decoder knows.
                        decoder.decode(&[usize::MAX / 2]);
                    }
                    _ => unreachable!("handled above"),
                }));
                if let Err(payload) = caught {
                    return Err(ChunkFault::Panicked(panic_message(payload)));
                }
            }
            // Streaming injections are the StreamingDecoder's business; the
            // batch engine filters them out at the injection lookup, so they
            // can never reach here.
            FaultKind::SlowTenant
            | FaultKind::DelayedArrival
            | FaultKind::BurstArrival
            | FaultKind::WorkerWedge => {
                unreachable!("streaming fault {kind} reached the batch engine")
            }
        }
    }
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_chunk(
            compiled,
            decoder,
            predecoder,
            cluster,
            gate,
            gate_threshold,
            scratch,
            plan,
            chunk,
            base_seed,
            obs,
            decode_hist,
        )
    }))
    .map_err(|payload| ChunkFault::Panicked(panic_message(payload)))
}

/// Result of one [`LerEngine::estimate`] run: the estimate plus
/// throughput/timing counters.
///
/// Timing covers *all executed* chunks, including any discarded past an
/// early-stop cut, so it reflects true cost; the estimate covers only the
/// deterministic included prefix.
#[derive(Clone, Copy, Debug)]
pub struct EngineRun {
    /// The (thread-count-independent) estimate.
    pub estimate: LerEstimate,
    /// Worker threads used.
    pub threads: usize,
    /// Chunks contributing to the estimate.
    pub chunks_included: usize,
    /// Chunks actually executed (≥ `chunks_included` under early stop).
    pub chunks_executed: usize,
    /// End-to-end wall-clock seconds.
    pub wall_seconds: f64,
    /// CPU seconds spent sampling batches, summed across workers.
    pub sample_seconds: f64,
    /// CPU seconds spent extracting sparse syndromes from frame words plus
    /// tier-dispatch bookkeeping (defect counting, the histogram, tier-0
    /// skips), summed across workers.
    pub extract_seconds: f64,
    /// CPU seconds spent in predecoder certification proper, summed across
    /// workers. Split out of `decode_seconds` so the full-decoder cost
    /// stays comparable with and without the fast path; dispatch
    /// bookkeeping is charged to `extract_seconds`.
    pub predecode_seconds: f64,
    /// CPU seconds spent flood-decomposing dense shots into independent
    /// clusters and peeling the certified ones (the dense-regime cluster
    /// tier). Zero unless the factory enables the tier
    /// ([`crate::Tiered::with_cluster`]). Per-cluster decoder calls on
    /// uncertified clusters are charged to `decode_seconds`.
    pub cluster_seconds: f64,
    /// CPU seconds spent in the full decoder on residual shots, summed
    /// across workers.
    pub decode_seconds: f64,
    /// Shots with an empty defect list (tier 0: skipped decoding).
    ///
    /// Like the timing counters, the per-tier shot counters and the
    /// histogram cover *all executed* chunks; without early stopping
    /// (`max_failures == 0`) they partition `estimate.shots` exactly:
    /// `tier0_shots + predecoded_shots + clustered_shots + residual_shots
    /// == shots`.
    pub tier0_shots: usize,
    /// Shots fully resolved by the tier-1 predecoder (tier 1).
    pub predecoded_shots: usize,
    /// Total defects across predecoded shots.
    pub predecoded_defects: usize,
    /// Shots decoded by the full decoder (tier 2). A dense shot whose
    /// decomposition left at least one uncertified cluster counts here (it
    /// made decoder calls), even though its certified clusters peeled.
    pub residual_shots: usize,
    /// Dense shots fully resolved by the cluster tier — every flood cluster
    /// certified and peeled, zero full-decoder calls. Always zero when the
    /// tier is off.
    pub clustered_shots: usize,
    /// Defects peeled by certified clusters across all dense shots
    /// (including partial peels on shots that still count as residual).
    pub clustered_defects: usize,
    /// Flood clusters produced across all dense-shot decompositions.
    pub clusters_total: u64,
    /// Histogram of flood-cluster sizes: bucket `i < 15` counts clusters of
    /// exactly `i + 1` defects; the last bucket is the ≥16 tail
    /// ([`cluster_hist_bucket`]). Sums to `clusters_total`.
    pub cluster_size_histogram: [u64; CLUSTER_HIST_BUCKETS],
    /// Histogram of per-shot defect counts: bucket `i < 32` counts shots
    /// with exactly `i` defects; the tail is log-scaled per
    /// [`defect_hist_bucket`] (32–63, 64–127, 128–255, ≥256).
    pub defect_histogram: [u64; DEFECT_HIST_BUCKETS],
    /// Seconds spent building per-epoch reweighted graphs and predecoder
    /// tables before workers launched. Zero on the single-graph entry
    /// points, where no reweighting happens.
    pub reweight_seconds: f64,
    /// Calibration epochs active during the run (1 on the single-graph
    /// entry points).
    pub epochs: usize,
    /// Fault events observed across all chunk attempts (a chunk that
    /// faults on two rungs counts twice). Zero when no fault fired.
    pub faulted_chunks: usize,
    /// Retry attempts launched in response to faults. In every `Ok` run
    /// each fault triggers exactly one retry on the next rung, so
    /// `retried_chunks == faulted_chunks` — no fault is silently dropped.
    pub retried_chunks: usize,
    /// Shots whose chunk completed on a rung above 0 (decoded by a
    /// degraded configuration).
    pub degraded_shots: usize,
    /// Chunks completed per ladder rung (`rung_chunks[0]` is the pristine
    /// fast path; entries sum to `chunks_executed`).
    pub rung_chunks: [usize; LADDER_RUNGS],
    /// Fault events that were caught panics.
    pub panic_faults: usize,
    /// Fault events that were stall-deadline overruns.
    pub stall_faults: usize,
    /// Fault events that were graph-validation failures.
    pub graph_faults: usize,
    /// Effective sample size of the included prefix, `(Σw)² / Σw²`. Equals
    /// `estimate.shots` exactly on plain (unweighted) runs.
    pub ess: f64,
    /// 95% confidence-interval half-width on [`EngineRun::ler`] (normal
    /// approximation over per-shot weighted failure indicators).
    pub ci_halfwidth: f64,
    /// Importance-sampling boost factor the run sampled under (1 for plain
    /// Monte Carlo).
    pub boost_beta: f64,
    /// Likelihood-weighted failure mass over the included prefix. Equals
    /// `estimate.failures` exactly on plain runs.
    pub weighted_failures: f64,
    /// Batches the defect-density gate sent through the cluster
    /// decomposition (counted only while a cluster tier was armed).
    pub cluster_gate_on: usize,
    /// Batches the gate diverted to the monolithic decode path.
    pub cluster_gate_off: usize,
}

impl EngineRun {
    /// The logical error rate estimate: likelihood-weighted failure mass
    /// over shots. Bit-identical to `estimate.per_shot()` on plain runs
    /// (the weighted sums are filled from the integer counters there); the
    /// unbiased importance-sampling estimator on boosted runs.
    pub fn ler(&self) -> f64 {
        if self.estimate.shots == 0 {
            return 0.0;
        }
        self.weighted_failures / self.estimate.shots as f64
    }

    /// Decoded-shot throughput (shots per wall-clock second).
    pub fn shots_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.estimate.shots as f64 / self.wall_seconds
    }

    /// True when any chunk completed on a rung above 0 (the run degraded
    /// but recovered). The `caliqec` CLI's `--strict` mode turns this into
    /// a nonzero exit.
    pub fn degraded(&self) -> bool {
        self.rung_chunks[1..].iter().any(|&c| c > 0)
    }
}

/// Aggregation state shared by workers under a mutex.
struct Shared {
    results: Vec<Option<ChunkResult>>,
    /// First chunk index at which the cumulative failure budget is met,
    /// once known (requires the full prefix to have completed).
    cut: Option<usize>,
    /// First ladder-exhaustion error, if any; set once, ends the run.
    fatal: Option<EngineError>,
    chunks_executed: usize,
    sample_seconds: f64,
    extract_seconds: f64,
    predecode_seconds: f64,
    cluster_seconds: f64,
    decode_seconds: f64,
    tier0_shots: usize,
    predecoded_shots: usize,
    predecoded_defects: usize,
    residual_shots: usize,
    clustered_shots: usize,
    clustered_defects: usize,
    clusters_total: u64,
    cluster_size_histogram: [u64; CLUSTER_HIST_BUCKETS],
    defect_histogram: [u64; DEFECT_HIST_BUCKETS],
    faulted_chunks: usize,
    retried_chunks: usize,
    degraded_shots: usize,
    rung_chunks: [usize; LADDER_RUNGS],
    panic_faults: usize,
    stall_faults: usize,
    graph_faults: usize,
    cluster_gate_on: usize,
    cluster_gate_off: usize,
}

impl Shared {
    /// Fresh shared state for a run of `num_chunks` chunks, all counters
    /// zeroed.
    fn new(num_chunks: usize) -> Shared {
        Shared {
            results: vec![None; num_chunks],
            cut: None,
            fatal: None,
            chunks_executed: 0,
            sample_seconds: 0.0,
            extract_seconds: 0.0,
            predecode_seconds: 0.0,
            cluster_seconds: 0.0,
            decode_seconds: 0.0,
            tier0_shots: 0,
            predecoded_shots: 0,
            predecoded_defects: 0,
            residual_shots: 0,
            clustered_shots: 0,
            clustered_defects: 0,
            clusters_total: 0,
            cluster_size_histogram: [0; CLUSTER_HIST_BUCKETS],
            defect_histogram: [0; DEFECT_HIST_BUCKETS],
            faulted_chunks: 0,
            retried_chunks: 0,
            degraded_shots: 0,
            rung_chunks: [0; LADDER_RUNGS],
            panic_faults: 0,
            stall_faults: 0,
            graph_faults: 0,
            cluster_gate_on: 0,
            cluster_gate_off: 0,
        }
    }

    /// Recomputes the early-stop cut over the completed prefix.
    fn recompute_cut(&mut self, max_failures: usize) {
        let mut failures = 0usize;
        for (k, res) in self.results.iter().enumerate() {
            match res {
                Some(r) => {
                    failures += r.failures;
                    if failures >= max_failures {
                        self.cut = Some(k);
                        return;
                    }
                }
                None => return,
            }
        }
    }

    /// Recomputes the target-relative-CI cut over the completed prefix.
    ///
    /// Like [`Shared::recompute_cut`], the cut is a pure function of the
    /// deterministic chunk prefix: it fires at the first chunk index where
    /// the prefix spans at least `plan.min_ci_batches` batches, the
    /// weighted estimate is nonzero, and the 95% CI half-width has fallen
    /// to `plan.target_rse` of the estimate — so any thread count stops at
    /// the same place. Plain chunks fill their weighted sums from the
    /// integer counters, which makes this the plain-MC shots-to-target-CI
    /// stopping rule when `boost_beta == 1`.
    fn recompute_ci_cut(&mut self, plan: &ChunkPlan) {
        let mut n = 0.0f64;
        let mut sum_wf = 0.0f64;
        let mut sum_w2f = 0.0f64;
        let mut batches = 0usize;
        for (k, res) in self.results.iter().enumerate() {
            match res {
                Some(r) => {
                    n += (r.batches * BATCH) as f64;
                    sum_wf += r.sum_wf;
                    sum_w2f += r.sum_w2f;
                    batches += r.batches;
                    if batches < plan.min_ci_batches {
                        continue;
                    }
                    let p_hat = sum_wf / n;
                    if p_hat <= 0.0 {
                        continue;
                    }
                    let var = (sum_w2f / n - p_hat * p_hat).max(0.0) / n;
                    if 1.96 * var.sqrt() <= plan.target_rse * p_hat {
                        self.cut = Some(k);
                        return;
                    }
                }
                None => return,
            }
        }
    }
}

/// Locks the shared state, recovering from poisoning: a worker that
/// panicked while holding the lock has already been quarantined by
/// `catch_unwind`, and the counters it was merging are monotone — the
/// worst case is one chunk's statistics lost, never a torn estimate, so
/// the remaining workers keep going instead of cascading N secondary
/// panics.
fn lock_shared<'a>(shared: &'a Mutex<Shared>) -> MutexGuard<'a, Shared> {
    shared.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Thread-parallel Monte-Carlo LER estimator. See the module docs for the
/// determinism contract and the failure model.
///
/// # Examples
///
/// ```
/// use caliqec_match::{graph_for_circuit, LerEngine, SampleOptions, UnionFindDecoder};
/// use caliqec_stab::{Basis, Circuit, CompiledCircuit, Noise1};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
///
/// let compiled = CompiledCircuit::new(&c);
/// let graph = graph_for_circuit(&c);
/// let run = LerEngine::new(2).estimate(
///     &compiled,
///     &|| UnionFindDecoder::new(graph.clone()),
///     SampleOptions { min_shots: 640, ..Default::default() },
///     7,
/// );
/// // A single perfectly-heralded error is always corrected.
/// assert_eq!(run.estimate.failures, 0);
/// assert_eq!(run.estimate.shots, 640);
/// assert_eq!(run.faulted_chunks, 0);
/// ```
#[derive(Clone, Debug)]
pub struct LerEngine {
    threads: usize,
    faults: Option<FaultPlan>,
    obs: ObsSink,
}

impl LerEngine {
    /// Creates an engine with `threads` workers (0 = auto: honours the
    /// `CALIQEC_THREADS` environment variable, else all available cores).
    /// No fault plan is armed; [`LerEngine::with_faults`] injects one.
    /// Observability is disabled; [`LerEngine::with_obs`] attaches a sink.
    pub fn new(threads: usize) -> LerEngine {
        LerEngine {
            threads: resolve_threads(threads),
            faults: None,
            obs: ObsSink::disabled(),
        }
    }

    /// Arms a fault-injection plan (empty plans disarm). Library
    /// constructors never read the environment; binaries that honour
    /// `CALIQEC_FAULTS` combine this with [`FaultPlan::from_env`].
    pub fn with_faults(mut self, plan: FaultPlan) -> LerEngine {
        self.faults = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// Attaches an observability sink: metrics, per-shot latency
    /// histograms, and the structured event journal record into it during
    /// every subsequent run. Nothing recorded is ever read back by
    /// decoding, so results stay bit-identical whether the sink is enabled
    /// or [`ObsSink::disabled`] (the default).
    pub fn with_obs(mut self, obs: ObsSink) -> LerEngine {
        self.obs = obs;
        self
    }

    /// The attached observability sink (disabled unless
    /// [`LerEngine::with_obs`] replaced it).
    pub fn obs(&self) -> &ObsSink {
        &self.obs
    }

    /// The armed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Estimates the residual LER of `compiled` using per-worker decoders
    /// from `factory`. Deterministic in `(options, base_seed)`.
    ///
    /// Infallible wrapper over [`LerEngine::try_estimate`]: panics on a
    /// typed [`EngineError`] (invalid inputs, or a chunk that exhausted
    /// the degradation ladder). Every pre-hardening call site used this
    /// signature; new code that wants to handle failure should call
    /// `try_estimate`.
    pub fn estimate<F: DecoderFactory>(
        &self,
        compiled: &CompiledCircuit,
        factory: &F,
        options: SampleOptions,
        base_seed: u64,
    ) -> EngineRun {
        self.try_estimate(compiled, factory, options, base_seed)
            .unwrap_or_else(|e| panic!("engine run failed: {e}"))
    }

    /// Fallible estimation: validates `compiled` and the factory's graph
    /// up front, then runs the hardened chunk loop. Returns a typed
    /// [`EngineError`] for invalid inputs or a chunk that faulted on every
    /// rung of the degradation ladder; all recovered faults are reported
    /// in the returned [`EngineRun`] instead.
    pub fn try_estimate<F: DecoderFactory>(
        &self,
        compiled: &CompiledCircuit,
        factory: &F,
        options: SampleOptions,
        base_seed: u64,
    ) -> Result<EngineRun, EngineError> {
        compiled.validate()?;
        factory.validate()?;
        let started = Instant::now();
        self.run_plan(
            compiled,
            factory,
            ChunkPlan::new(options),
            base_seed,
            started,
            1.0,
        )
    }

    /// Rare-event estimation: importance-sampled Monte Carlo with per-shot
    /// likelihood weights. Infallible wrapper over
    /// [`LerEngine::try_estimate_rare`].
    pub fn estimate_rare<F: DecoderFactory>(
        &self,
        compiled: &CompiledCircuit,
        factory: &F,
        options: RareOptions,
        base_seed: u64,
    ) -> EngineRun {
        self.try_estimate_rare(compiled, factory, options, base_seed)
            .unwrap_or_else(|e| panic!("engine rare-event run failed: {e}"))
    }

    /// Rare-event estimation under importance sampling.
    ///
    /// Every fault channel samples at the boosted rate `min(β·p, ½)` while
    /// the sampler accumulates each shot's exact log-likelihood ratio
    /// against the nominal rates, making `Σ wₛ·failₛ / Σ shots`
    /// ([`EngineRun::ler`]) an unbiased estimator of the nominal LER with
    /// far more failing shots to average over. The run stops early at the
    /// deterministic chunk prefix where the 95% CI half-width falls to
    /// [`RareOptions::target_rse`] of the estimate (after
    /// [`RareOptions::min_shots`]); [`EngineRun::ess`] and
    /// [`EngineRun::ci_halfwidth`] report estimator health.
    ///
    /// The determinism contract is unchanged: the same chunk-seed schedule,
    /// bit-identical results at any thread count, and `boost_beta == 1`
    /// with identity rates runs the plain sampler itself — byte-identical
    /// to [`LerEngine::try_estimate`] over the equivalent
    /// [`SampleOptions`].
    pub fn try_estimate_rare<F: DecoderFactory>(
        &self,
        compiled: &CompiledCircuit,
        factory: &F,
        options: RareOptions,
        base_seed: u64,
    ) -> Result<EngineRun, EngineError> {
        compiled.validate()?;
        factory.validate()?;
        if !options.boost_beta.is_finite() || options.boost_beta < 1.0 {
            return Err(EngineError::Options {
                detail: format!(
                    "boost_beta must be finite and >= 1 (got {})",
                    options.boost_beta
                ),
            });
        }
        if !options.target_rse.is_finite() || options.target_rse < 0.0 {
            return Err(EngineError::Options {
                detail: format!(
                    "target_rse must be finite and >= 0 (got {})",
                    options.target_rse
                ),
            });
        }
        let started = Instant::now();
        let plan = ChunkPlan::rare(&options);
        if options.boost_beta == 1.0 && options.rates.is_identity() {
            // β = 1 degenerates to plain Monte Carlo; running the original
            // compiled program keeps the fast unweighted sampler and makes
            // the degenerate case bit-identical to `try_estimate`.
            self.run_plan(compiled, factory, plan, base_seed, started, 1.0)
        } else {
            let boosted = compiled.boosted_with_rates(options.boost_beta, &options.rates);
            self.run_plan(
                &boosted,
                factory,
                plan,
                base_seed,
                started,
                options.boost_beta,
            )
        }
    }

    /// Convenience: compiles `circuit` and runs
    /// [`LerEngine::estimate_rare`] in one call.
    pub fn estimate_rare_circuit<F: DecoderFactory>(
        &self,
        circuit: &Circuit,
        factory: &F,
        options: RareOptions,
        base_seed: u64,
    ) -> EngineRun {
        self.estimate_rare(&CompiledCircuit::new(circuit), factory, options, base_seed)
    }

    /// Fallible form of [`LerEngine::estimate_rare_circuit`].
    pub fn try_estimate_rare_circuit<F: DecoderFactory>(
        &self,
        circuit: &Circuit,
        factory: &F,
        options: RareOptions,
        base_seed: u64,
    ) -> Result<EngineRun, EngineError> {
        circuit.validate()?;
        self.try_estimate_rare(&CompiledCircuit::new(circuit), factory, options, base_seed)
    }

    /// Shared engine core: runs `plan` over `compiled` with the factory's
    /// ladder and returns the assembled run. Both the plain and rare-event
    /// entry points land here, so a degenerate rare run (β = 1, identity
    /// rates, `target_rse == 0`) executes byte-identical code to
    /// [`LerEngine::try_estimate`].
    fn run_plan<F: DecoderFactory>(
        &self,
        compiled: &CompiledCircuit,
        factory: &F,
        plan: ChunkPlan,
        base_seed: u64,
        started: Instant,
        boost_beta: f64,
    ) -> Result<EngineRun, EngineError> {
        let threads = self.threads.min(plan.num_chunks).max(1);
        let faults = self.faults.as_ref();
        let fallback = factory.fallback_graph();
        let next = AtomicUsize::new(0);
        let shared = Mutex::new(Shared::new(plan.num_chunks));

        let run_id = self.obs.begin_run();
        let mut coord = self.obs.worker(run_id, Event::COORDINATOR);
        coord.add(Counter::RunsStarted, 1);
        coord.set(Gauge::Workers, threads as u64);
        coord.set(Gauge::ChunksPlanned, plan.num_chunks as u64);
        coord.set(Gauge::Epochs, 1);
        coord.event(EventKind::RunStart {
            threads: threads as u32,
            chunks: plan.num_chunks as u32,
        });
        coord.flush();

        std::thread::scope(|scope| {
            let plan = &plan;
            let next = &next;
            let shared = &shared;
            for worker in 0..threads {
                let obs = self.obs.worker(run_id, worker as u32);
                let spawned = std::thread::Builder::new()
                    .name(format!("caliqec-ler-{worker}"))
                    .spawn_scoped(scope, move || {
                        worker_loop(
                            compiled, factory, plan, base_seed, faults, fallback, next, shared, obs,
                        )
                    });
                spawned.expect("spawn LER worker thread");
            }
        });

        let sh = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
        let run = assemble_run(sh, &plan, threads, started, 0.0, 1, boost_beta)?;
        if boost_beta != 1.0 || plan.target_rse > 0.0 {
            // Rare runs publish estimator health; the plain path records
            // nothing new, keeping its metrics stream unchanged.
            coord.set(Gauge::Ess, run.ess as u64);
            coord.flush();
        }
        Ok(run)
    }

    /// Convenience: compiles `circuit` and estimates in one call.
    pub fn estimate_circuit<F: DecoderFactory>(
        &self,
        circuit: &Circuit,
        factory: &F,
        options: SampleOptions,
        base_seed: u64,
    ) -> EngineRun {
        self.estimate(&CompiledCircuit::new(circuit), factory, options, base_seed)
    }

    /// Fallible form of [`LerEngine::estimate_circuit`]: validates the
    /// circuit IR before compiling, so malformed programs (e.g. from
    /// [`Circuit::from_ops`]) surface as [`EngineError::Circuit`].
    pub fn try_estimate_circuit<F: DecoderFactory>(
        &self,
        circuit: &Circuit,
        factory: &F,
        options: SampleOptions,
        base_seed: u64,
    ) -> Result<EngineRun, EngineError> {
        circuit.validate()?;
        self.try_estimate(&CompiledCircuit::new(circuit), factory, options, base_seed)
    }

    /// Calibration-aware estimation: infallible wrapper over
    /// [`LerEngine::try_estimate_epochs`], panicking on a typed error like
    /// [`LerEngine::estimate`] does.
    pub fn estimate_epochs<F: GraphDecoderFactory>(
        &self,
        compiled: &CompiledCircuit,
        graph: &MatchingGraph,
        factory: &F,
        schedule: &EpochSchedule,
        options: SampleOptions,
        base_seed: u64,
    ) -> EngineRun {
        self.try_estimate_epochs(compiled, graph, factory, schedule, options, base_seed)
            .unwrap_or_else(|e| panic!("engine epoch run failed: {e}"))
    }

    /// Calibration-aware estimation over a schedule of `(t, RateTable)`
    /// epochs.
    ///
    /// The shot budget maps uniformly onto simulated time `[0,
    /// horizon_hours]`; chunk `i` (of `n`) decodes with the epoch active at
    /// its midpoint `horizon · (i + ½) / n`. Each epoch gets one graph —
    /// the base `graph` incrementally reweighted via
    /// [`MatchingGraph::reweight`] (identity rate tables skip the reweight,
    /// so a single-epoch identity schedule is bit-identical to
    /// [`LerEngine::try_estimate`] over a [`crate::Tiered`] factory) — plus
    /// a fresh [`Predecoder`] over it, since the predecoder's tables are
    /// weight-derived. Upfront reweight + table-build time is reported as
    /// [`EngineRun::reweight_seconds`].
    ///
    /// Chunks keep the same deterministic per-batch [`chunk_seed`]
    /// schedule as
    /// [`LerEngine::try_estimate`] — the sampled syndrome stream depends
    /// only on `(options, base_seed)`, never on the epoch schedule; only
    /// decode weights vary. The degradation ladder is preserved: rung 1
    /// rebuilds the epoch's decoder without predecoding, rung 2 falls back
    /// to [`ReferenceUnionFind`] over the epoch graph.
    #[allow(clippy::too_many_arguments)]
    pub fn try_estimate_epochs<F: GraphDecoderFactory>(
        &self,
        compiled: &CompiledCircuit,
        graph: &MatchingGraph,
        factory: &F,
        schedule: &EpochSchedule,
        options: SampleOptions,
        base_seed: u64,
    ) -> Result<EngineRun, EngineError> {
        compiled.validate()?;
        graph.validate()?;
        let started = Instant::now();
        let plan = ChunkPlan::new(options);

        let run_id = self.obs.begin_run();
        let mut coord = self.obs.worker(run_id, Event::COORDINATOR);
        coord.add(Counter::RunsStarted, 1);

        // Build one context per epoch up front (an empty schedule is one
        // implicit identity epoch). Reweighting is incremental on a clone
        // of the caller's graph — topology untouched, weights recomputed
        // from the epoch's rates — and each context re-derives the
        // weight-dependent predecoder tables.
        let reweight_started = Instant::now();
        let mut contexts: Vec<EpochContext> = Vec::new();
        if schedule.epochs().is_empty() {
            let t = coord.clock();
            contexts.push(EpochContext::identity(graph));
            record_reweight(&mut coord, 0, t);
        } else {
            for (i, epoch) in schedule.epochs().iter().enumerate() {
                let t = coord.clock();
                contexts.push(EpochContext::reweighted(graph, &epoch.rates)?);
                record_reweight(&mut coord, i as u32, t);
            }
        }
        let reweight_seconds = reweight_started.elapsed().as_secs_f64();

        let chunk_epoch: Vec<u32> = (0..plan.num_chunks)
            .map(|i| {
                let t = schedule.horizon_hours() * (i as f64 + 0.5) / plan.num_chunks as f64;
                schedule.active_at(t).min(contexts.len() - 1) as u32
            })
            .collect();

        let threads = self.threads.min(plan.num_chunks).max(1);
        let faults = self.faults.as_ref();
        let next = AtomicUsize::new(0);
        let shared = Mutex::new(Shared::new(plan.num_chunks));

        coord.set(Gauge::Workers, threads as u64);
        coord.set(Gauge::ChunksPlanned, plan.num_chunks as u64);
        coord.set(Gauge::Epochs, contexts.len() as u64);
        coord.event(EventKind::RunStart {
            threads: threads as u32,
            chunks: plan.num_chunks as u32,
        });
        coord.flush();

        std::thread::scope(|scope| {
            let plan = &plan;
            let next = &next;
            let shared = &shared;
            let contexts = &contexts;
            let chunk_epoch = &chunk_epoch;
            for worker in 0..threads {
                let obs = self.obs.worker(run_id, worker as u32);
                let spawned = std::thread::Builder::new()
                    .name(format!("caliqec-ler-{worker}"))
                    .spawn_scoped(scope, move || {
                        epoch_worker_loop(
                            compiled,
                            factory,
                            contexts,
                            chunk_epoch,
                            plan,
                            base_seed,
                            faults,
                            next,
                            shared,
                            obs,
                        )
                    });
                spawned.expect("spawn LER worker thread");
            }
        });

        let sh = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
        assemble_run(
            sh,
            &plan,
            threads,
            started,
            reweight_seconds,
            contexts.len(),
            1.0,
        )
    }
}

/// Per-epoch decode context: the reweighted graph and the predecoder
/// re-derived from it (predecoder tables are weight-dependent — see
/// [`Predecoder::is_current_for`]).
struct EpochContext {
    graph: MatchingGraph,
    predecoder: Predecoder,
}

impl EpochContext {
    /// Context for an identity epoch: the base graph verbatim.
    fn identity(graph: &MatchingGraph) -> EpochContext {
        let graph = graph.clone();
        let predecoder = Predecoder::new(&graph);
        EpochContext { graph, predecoder }
    }

    /// Context for a drifted epoch: base graph incrementally reweighted
    /// (identity tables skip the reweight so the clone stays bit-identical
    /// to the base), then validated.
    fn reweighted(base: &MatchingGraph, rates: &RateTable) -> Result<EpochContext, EngineError> {
        let mut graph = base.clone();
        if !rates.is_identity() {
            graph.reweight(rates)?;
            graph.validate()?;
        }
        let predecoder = Predecoder::new(&graph);
        Ok(EpochContext { graph, predecoder })
    }
}

/// Folds the merged shared state into the final [`EngineRun`], applying the
/// deterministic early-stop cut. Common tail of [`LerEngine::try_estimate`]
/// and [`LerEngine::try_estimate_epochs`].
fn assemble_run(
    sh: Shared,
    plan: &ChunkPlan,
    threads: usize,
    started: Instant,
    reweight_seconds: f64,
    epochs: usize,
    boost_beta: f64,
) -> Result<EngineRun, EngineError> {
    if let Some(fatal) = sh.fatal {
        return Err(fatal);
    }
    let included = sh.cut.map_or(plan.num_chunks, |k| k + 1);
    let mut estimate = LerEstimate::default();
    let mut sum_w = 0.0f64;
    let mut sum_w2 = 0.0f64;
    let mut sum_wf = 0.0f64;
    let mut sum_w2f = 0.0f64;
    for result in sh.results[..included].iter().flatten() {
        estimate.shots += result.batches * BATCH;
        estimate.failures += result.failures;
        sum_w += result.sum_w;
        sum_w2 += result.sum_w2;
        sum_wf += result.sum_wf;
        sum_w2f += result.sum_w2f;
    }
    let n = estimate.shots as f64;
    // ESS ≤ n by Cauchy–Schwarz; the clamp only absorbs f64 rounding.
    let ess = if sum_w2 > 0.0 {
        (sum_w * sum_w / sum_w2).min(n)
    } else {
        0.0
    };
    let ci_halfwidth = if n > 0.0 {
        let p_hat = sum_wf / n;
        1.96 * ((sum_w2f / n - p_hat * p_hat).max(0.0) / n).sqrt()
    } else {
        0.0
    };
    Ok(EngineRun {
        estimate,
        threads,
        chunks_included: included,
        chunks_executed: sh.chunks_executed,
        wall_seconds: started.elapsed().as_secs_f64(),
        sample_seconds: sh.sample_seconds,
        extract_seconds: sh.extract_seconds,
        predecode_seconds: sh.predecode_seconds,
        cluster_seconds: sh.cluster_seconds,
        decode_seconds: sh.decode_seconds,
        tier0_shots: sh.tier0_shots,
        predecoded_shots: sh.predecoded_shots,
        predecoded_defects: sh.predecoded_defects,
        residual_shots: sh.residual_shots,
        clustered_shots: sh.clustered_shots,
        clustered_defects: sh.clustered_defects,
        clusters_total: sh.clusters_total,
        cluster_size_histogram: sh.cluster_size_histogram,
        defect_histogram: sh.defect_histogram,
        reweight_seconds,
        epochs,
        faulted_chunks: sh.faulted_chunks,
        retried_chunks: sh.retried_chunks,
        degraded_shots: sh.degraded_shots,
        rung_chunks: sh.rung_chunks,
        panic_faults: sh.panic_faults,
        stall_faults: sh.stall_faults,
        graph_faults: sh.graph_faults,
        ess,
        ci_halfwidth,
        boost_beta,
        weighted_failures: sum_wf,
        cluster_gate_on: sh.cluster_gate_on,
        cluster_gate_off: sh.cluster_gate_off,
    })
}

/// Records the metrics and journal entry for a chunk that completed on
/// `rung`. `attempt_started` is the [`WorkerObs::clock`] reading taken when
/// the successful attempt began; on a disabled handle everything no-ops.
fn observe_chunk_finish(
    obs: &mut WorkerObs,
    result: &ChunkResult,
    rung: usize,
    attempt_started: Option<Instant>,
) {
    if !obs.enabled() {
        return;
    }
    let _ = obs.record_since(Hist::ChunkWall, attempt_started);
    obs.add(Counter::ChunksFinished, 1);
    obs.add(Counter::ShotsTier0, result.tier0_shots as u64);
    obs.add(Counter::ShotsTier1, result.predecoded_shots as u64);
    obs.add(Counter::ShotsTier2, result.residual_shots as u64);
    if result.clustered_shots > 0 {
        obs.add(Counter::ShotsCluster, result.clustered_shots as u64);
    }
    let shots = (result.batches * BATCH) as u64;
    // Per-rung chunk counters mirror `EngineRun::rung_chunks` into the
    // exporters, so degradation is visible on `--prom-out` too.
    obs.add(
        match rung {
            0 => Counter::ChunksRung0,
            1 => Counter::ChunksRung1,
            _ => Counter::ChunksRung2,
        },
        1,
    );
    if rung > 0 {
        obs.add(Counter::ShotsDegraded, shots);
    }
    if result.weighted {
        obs.add(Counter::ShotsWeighted, shots);
    }
    obs.event(EventKind::ChunkFinish {
        rung: rung as u8,
        shots: shots as u32,
        failures: result.failures as u32,
        tier0: result.tier0_shots as u32,
        tier1: result.predecoded_shots as u32,
        tier2: result.residual_shots as u32,
        sample_nanos: (result.sample_seconds * 1e9) as u64,
        extract_nanos: (result.extract_seconds * 1e9) as u64,
        predecode_nanos: (result.predecode_seconds * 1e9) as u64,
        decode_nanos: (result.decode_seconds * 1e9) as u64,
    });
    // Both payloads are deterministic functions of the chunk's own shots,
    // so the journal stays thread-count independent; plain runs emit
    // neither event and keep their historic journal byte-for-byte.
    if result.weighted {
        let ess = if result.sum_w2 > 0.0 {
            result.sum_w * result.sum_w / result.sum_w2
        } else {
            0.0
        };
        obs.event(EventKind::ChunkWeights {
            sum_w: result.sum_w,
            sum_wf: result.sum_wf,
            ess,
        });
    }
    if result.cluster_gate_on + result.cluster_gate_off > 0 {
        obs.event(EventKind::ClusterGate {
            on: result.cluster_gate_on as u32,
            off: result.cluster_gate_off as u32,
        });
    }
}

/// Records the journal entry and counter for one chunk-attempt fault.
fn observe_chunk_fault(obs: &mut WorkerObs, fault: &ChunkFault, rung: usize) {
    obs.add(fault.counter(), 1);
    obs.event(EventKind::Fault {
        kind: fault.tag(),
        rung: rung as u8,
    });
}

/// The body of one worker thread: claim chunks, run each up the
/// degradation ladder, merge results.
#[allow(clippy::too_many_arguments)]
fn worker_loop<F: DecoderFactory>(
    compiled: &CompiledCircuit,
    factory: &F,
    plan: &ChunkPlan,
    base_seed: u64,
    faults: Option<&FaultPlan>,
    fallback: Option<&MatchingGraph>,
    next: &AtomicUsize,
    shared: &Mutex<Shared>,
    mut obs: WorkerObs,
) {
    let mut decoder = factory.build();
    let mut predecoder = factory.predecoder();
    let mut cluster = factory.cluster_tier();
    let gate = factory.cluster_gate();
    let gate_threshold = factory.cluster_gate_threshold();
    let mut scratch = SampleScratch::new(compiled);
    loop {
        {
            let sh = lock_shared(shared);
            if sh.cut.is_some() || sh.fatal.is_some() {
                break;
            }
        }
        let chunk = next.fetch_add(1, Ordering::Relaxed);
        if chunk >= plan.num_chunks {
            break;
        }
        obs.begin_chunk(chunk as u32);
        obs.add(Counter::ChunksStarted, 1);

        // Degradation ladder: rung 0 = factory decoder + predecoder;
        // rung 1 = fresh factory decoder, no predecode; rung 2 =
        // ReferenceUnionFind over the fallback graph. Every rung re-runs
        // the same chunk seed, so the retried syndrome stream is
        // identical; injected faults only fire at rung 0.
        let mut tally = FaultTally::default();
        let mut rung = 0usize;
        let outcome: Result<(ChunkResult, usize), (ChunkFault, usize)> = loop {
            let injected = if rung == 0 {
                faults
                    .and_then(|p| p.injection(chunk))
                    .filter(|k| !k.is_streaming())
            } else {
                None
            };
            obs.event(EventKind::ChunkStart { rung: rung as u8 });
            let attempt_started = obs.clock();
            let decode_hist = decode_hist_for(rung);
            let attempt = match rung {
                0 => attempt_chunk(
                    compiled,
                    &mut decoder,
                    predecoder.as_mut(),
                    cluster.as_mut(),
                    gate,
                    gate_threshold,
                    &mut scratch,
                    plan,
                    chunk,
                    base_seed,
                    injected,
                    faults,
                    fallback,
                    &mut obs,
                    decode_hist,
                ),
                1 => {
                    let mut fresh = factory.build();
                    attempt_chunk(
                        compiled,
                        &mut fresh,
                        None,
                        None,
                        ClusterGate::Off,
                        CLUSTER_GATE_MIN_MEAN_DEFECTS,
                        &mut scratch,
                        plan,
                        chunk,
                        base_seed,
                        None,
                        faults,
                        fallback,
                        &mut obs,
                        decode_hist,
                    )
                }
                _ => match fallback {
                    Some(graph) => {
                        let mut reference = ReferenceUnionFind::new(graph.clone());
                        attempt_chunk(
                            compiled,
                            &mut reference,
                            None,
                            None,
                            ClusterGate::Off,
                            CLUSTER_GATE_MIN_MEAN_DEFECTS,
                            &mut scratch,
                            plan,
                            chunk,
                            base_seed,
                            None,
                            faults,
                            fallback,
                            &mut obs,
                            decode_hist,
                        )
                    }
                    None => Err(ChunkFault::InvalidGraph(ValidationError::CsrInconsistent {
                        detail: "no fallback graph available for rung 2".into(),
                    })),
                },
            };
            match attempt {
                Ok(result) => {
                    observe_chunk_finish(&mut obs, &result, rung, attempt_started);
                    break Ok((result, rung));
                }
                Err(fault) => {
                    observe_chunk_fault(&mut obs, &fault, rung);
                    tally.record(&fault);
                    if rung == 0 {
                        // Quarantine: the long-lived decoder's scratch may
                        // be torn mid-panic; rebuild before it ever touches
                        // another chunk.
                        decoder = factory.build();
                        predecoder = factory.predecoder();
                        cluster = factory.cluster_tier();
                    }
                    // Rung 2 without a fallback graph cannot be attempted;
                    // stop the ladder one rung early rather than count a
                    // phantom retry.
                    let next_rung_possible =
                        rung + 1 < LADDER_RUNGS && (rung + 1 < 2 || fallback.is_some());
                    if !next_rung_possible {
                        break Err((fault, rung));
                    }
                    tally.retries += 1;
                    rung += 1;
                    obs.add(Counter::Retries, 1);
                    obs.event(EventKind::Retry { rung: rung as u8 });
                }
            }
        };

        merge_chunk(shared, plan, chunk, &tally, outcome);
        obs.flush();
    }
}

/// Merges one chunk's outcome (success at some rung, or ladder exhaustion)
/// and its fault tally into the shared state. Common to [`worker_loop`] and
/// [`epoch_worker_loop`].
fn merge_chunk(
    shared: &Mutex<Shared>,
    plan: &ChunkPlan,
    chunk: usize,
    tally: &FaultTally,
    outcome: Result<(ChunkResult, usize), (ChunkFault, usize)>,
) {
    let mut sh = lock_shared(shared);
    sh.faulted_chunks += tally.faults;
    sh.retried_chunks += tally.retries;
    sh.panic_faults += tally.panics;
    sh.stall_faults += tally.stalls;
    sh.graph_faults += tally.graphs;
    match outcome {
        Ok((result, rung)) => {
            sh.chunks_executed += 1;
            sh.rung_chunks[rung] += 1;
            if rung > 0 {
                sh.degraded_shots += result.batches * BATCH;
            }
            sh.sample_seconds += result.sample_seconds;
            sh.extract_seconds += result.extract_seconds;
            sh.predecode_seconds += result.predecode_seconds;
            sh.cluster_seconds += result.cluster_seconds;
            sh.decode_seconds += result.decode_seconds;
            sh.tier0_shots += result.tier0_shots;
            sh.predecoded_shots += result.predecoded_shots;
            sh.predecoded_defects += result.predecoded_defects;
            sh.residual_shots += result.residual_shots;
            sh.clustered_shots += result.clustered_shots;
            sh.clustered_defects += result.clustered_defects;
            sh.clusters_total += result.clusters_total;
            for (acc, &b) in sh
                .cluster_size_histogram
                .iter_mut()
                .zip(result.cluster_size_histogram.iter())
            {
                *acc += b;
            }
            for (acc, &b) in sh
                .defect_histogram
                .iter_mut()
                .zip(result.defect_histogram.iter())
            {
                *acc += b;
            }
            sh.cluster_gate_on += result.cluster_gate_on;
            sh.cluster_gate_off += result.cluster_gate_off;
            sh.results[chunk] = Some(result);
            if plan.max_failures > 0 && sh.cut.is_none() {
                sh.recompute_cut(plan.max_failures);
            }
            if plan.target_rse > 0.0 && sh.cut.is_none() {
                sh.recompute_ci_cut(plan);
            }
        }
        Err((fault, rung)) => {
            if sh.fatal.is_none() {
                sh.fatal = Some(EngineError::ChunkFailed {
                    chunk,
                    rung,
                    reason: fault.to_string(),
                });
            }
        }
    }
}

/// The body of one epoch-aware worker thread: like [`worker_loop`], but the
/// chunk→epoch map selects which per-epoch `(decoder, predecoder)` pair
/// decodes each chunk. Pairs are built lazily per worker (workers typically
/// touch a contiguous band of chunks, hence few epochs) and quarantined on
/// a rung-0 fault exactly like the single-graph loop.
#[allow(clippy::too_many_arguments)]
fn epoch_worker_loop<F: GraphDecoderFactory>(
    compiled: &CompiledCircuit,
    factory: &F,
    contexts: &[EpochContext],
    chunk_epoch: &[u32],
    plan: &ChunkPlan,
    base_seed: u64,
    faults: Option<&FaultPlan>,
    next: &AtomicUsize,
    shared: &Mutex<Shared>,
    mut obs: WorkerObs,
) {
    type EpochCache<D> = Vec<Option<(D, Predecoder, Option<ClusterTier>)>>;
    let mut cache: EpochCache<F::Decoder> = (0..contexts.len()).map(|_| None).collect();
    let mut scratch = SampleScratch::new(compiled);
    loop {
        {
            let sh = lock_shared(shared);
            if sh.cut.is_some() || sh.fatal.is_some() {
                break;
            }
        }
        let chunk = next.fetch_add(1, Ordering::Relaxed);
        if chunk >= plan.num_chunks {
            break;
        }
        let epoch = chunk_epoch[chunk] as usize;
        let ctx = &contexts[epoch];
        obs.begin_chunk(chunk as u32);
        obs.add(Counter::ChunksStarted, 1);

        // Same three-rung ladder as `worker_loop`, anchored on the epoch's
        // graph: rung 1 rebuilds the epoch decoder without predecoding,
        // rung 2 is the reference oracle over the epoch graph (always
        // available here, unlike opaque factories).
        let mut tally = FaultTally::default();
        let mut rung = 0usize;
        let outcome: Result<(ChunkResult, usize), (ChunkFault, usize)> = loop {
            let injected = if rung == 0 {
                faults
                    .and_then(|p| p.injection(chunk))
                    .filter(|k| !k.is_streaming())
            } else {
                None
            };
            obs.event(EventKind::ChunkStart { rung: rung as u8 });
            let attempt_started = obs.clock();
            let decode_hist = decode_hist_for(rung);
            let attempt = match rung {
                0 => {
                    let (decoder, predecoder, cluster) = cache[epoch].get_or_insert_with(|| {
                        let predecoder = ctx.predecoder.clone();
                        let cluster = factory
                            .cluster()
                            .then(|| ClusterTier::from_predecoder(&predecoder));
                        (factory.build_for(&ctx.graph), predecoder, cluster)
                    });
                    attempt_chunk(
                        compiled,
                        decoder,
                        Some(predecoder),
                        cluster.as_mut(),
                        ClusterGate::On,
                        CLUSTER_GATE_MIN_MEAN_DEFECTS,
                        &mut scratch,
                        plan,
                        chunk,
                        base_seed,
                        injected,
                        faults,
                        Some(&ctx.graph),
                        &mut obs,
                        decode_hist,
                    )
                }
                1 => {
                    let mut fresh = factory.build_for(&ctx.graph);
                    attempt_chunk(
                        compiled,
                        &mut fresh,
                        None,
                        None,
                        ClusterGate::Off,
                        CLUSTER_GATE_MIN_MEAN_DEFECTS,
                        &mut scratch,
                        plan,
                        chunk,
                        base_seed,
                        None,
                        faults,
                        Some(&ctx.graph),
                        &mut obs,
                        decode_hist,
                    )
                }
                _ => {
                    let mut reference = ReferenceUnionFind::new(ctx.graph.clone());
                    attempt_chunk(
                        compiled,
                        &mut reference,
                        None,
                        None,
                        ClusterGate::Off,
                        CLUSTER_GATE_MIN_MEAN_DEFECTS,
                        &mut scratch,
                        plan,
                        chunk,
                        base_seed,
                        None,
                        faults,
                        Some(&ctx.graph),
                        &mut obs,
                        decode_hist,
                    )
                }
            };
            match attempt {
                Ok(result) => {
                    observe_chunk_finish(&mut obs, &result, rung, attempt_started);
                    break Ok((result, rung));
                }
                Err(fault) => {
                    observe_chunk_fault(&mut obs, &fault, rung);
                    tally.record(&fault);
                    if rung == 0 {
                        // Quarantine the epoch's cached pair; it is rebuilt
                        // from the context on next use.
                        cache[epoch] = None;
                    }
                    if rung + 1 >= LADDER_RUNGS {
                        break Err((fault, rung));
                    }
                    tally.retries += 1;
                    rung += 1;
                    obs.add(Counter::Retries, 1);
                    obs.event(EventKind::Retry { rung: rung as u8 });
                }
            }
        };

        merge_chunk(shared, plan, chunk, &tally, outcome);
        obs.flush();
    }
}

/// The serial reference path: runs the engine's exact chunk schedule on
/// the calling thread with a caller-owned decoder. [`LerEngine::estimate`]
/// returns the same [`LerEstimate`] bit-for-bit at any thread count; the
/// classic [`crate::estimate_ler`] wraps this with a base seed drawn from
/// its caller's RNG. This path is deliberately unhardened — it owns no
/// factory to rebuild a decoder from — and exists as the plain-Rust
/// oracle the hardened engine is tested against.
pub fn estimate_ler_seeded<D: Decoder>(
    compiled: &CompiledCircuit,
    decoder: &mut D,
    options: SampleOptions,
    base_seed: u64,
) -> LerEstimate {
    let plan = ChunkPlan::new(options);
    let mut scratch = SampleScratch::new(compiled);
    let mut estimate = LerEstimate::default();
    let mut obs = WorkerObs::disabled();
    for chunk in 0..plan.num_chunks {
        let result = run_chunk(
            compiled,
            decoder,
            None,
            None,
            ClusterGate::Off,
            CLUSTER_GATE_MIN_MEAN_DEFECTS,
            &mut scratch,
            &plan,
            chunk,
            base_seed,
            &mut obs,
            Hist::DecodeShotRung0,
        );
        estimate.shots += result.batches * BATCH;
        estimate.failures += result.failures;
        if plan.max_failures > 0 && estimate.failures >= plan.max_failures {
            break;
        }
    }
    estimate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::graph_for_circuit;
    use crate::predecode::Tiered;
    use crate::unionfind::UnionFindDecoder;
    use caliqec_stab::{Basis, Noise1};

    /// Distance-n repetition code, single round, X noise (mirrors the
    /// fixture in `decode.rs`).
    fn rep_circuit(n: usize, p: f64) -> Circuit {
        let data: Vec<u32> = (0..n as u32).collect();
        let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
        let mut c = Circuit::new(2 * n - 1);
        c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
        c.noise1(Noise1::XError, p, &data);
        for i in 0..n - 1 {
            c.cx(data[i], anc[i]);
            c.cx(data[i + 1], anc[i]);
        }
        let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
        for m in &ms {
            c.detector(&[*m]);
        }
        let md = c.measure(data[0], Basis::Z, 0.0);
        c.observable(0, &[md]);
        c
    }

    #[test]
    fn engine_matches_serial_reference() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let mut decoder = UnionFindDecoder::new(graph.clone());
        let serial = estimate_ler_seeded(&compiled, &mut decoder, opts, 42);
        for threads in [1, 2, 4] {
            let run = LerEngine::new(threads).estimate(
                &compiled,
                &|| UnionFindDecoder::new(graph.clone()),
                opts,
                42,
            );
            assert_eq!(run.estimate, serial, "threads={threads}");
            assert_eq!(run.faulted_chunks, 0);
            assert_eq!(run.retried_chunks, 0);
            assert_eq!(run.degraded_shots, 0);
            assert!(!run.degraded());
        }
    }

    #[test]
    fn early_stop_is_deterministic_across_thread_counts() {
        let c = rep_circuit(3, 0.3);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 64,
            max_failures: 20,
            max_shots: 64 * 4096,
        };
        let mut decoder = UnionFindDecoder::new(graph.clone());
        let serial = estimate_ler_seeded(&compiled, &mut decoder, opts, 7);
        assert!(serial.failures >= 20);
        assert!(serial.shots < 64 * 4096);
        for threads in [1, 2, 8] {
            let run = LerEngine::new(threads).estimate(
                &compiled,
                &|| UnionFindDecoder::new(graph.clone()),
                opts,
                7,
            );
            assert_eq!(run.estimate, serial, "threads={threads}");
            assert!(run.chunks_executed >= run.chunks_included);
        }
    }

    #[test]
    fn run_reports_throughput() {
        let c = rep_circuit(3, 0.05);
        let graph = graph_for_circuit(&c);
        let run = LerEngine::new(2).estimate_circuit(
            &c,
            &|| UnionFindDecoder::new(graph.clone()),
            SampleOptions {
                min_shots: 1_000,
                ..Default::default()
            },
            3,
        );
        assert_eq!(run.estimate.shots, 1_024);
        assert!(run.shots_per_sec() > 0.0);
        assert!(run.wall_seconds > 0.0);
        assert!(run.sample_seconds > 0.0);
        assert!(run.extract_seconds > 0.0);
        assert!(run.decode_seconds > 0.0);
    }

    /// The per-phase counters must partition the work, never double-count:
    /// on a single worker every timed phase is a disjoint slice of the
    /// wall-clock, so their sum is bounded by it — per chunk, hence also
    /// for any sum of chunks.
    #[test]
    fn phase_timers_never_exceed_wall_clock() {
        let c = rep_circuit(5, 0.05);
        let graph = graph_for_circuit(&c);
        // One batch = one chunk: the run-level check *is* the per-chunk
        // check. Then a multi-chunk run checks the aggregate.
        for min_shots in [64usize, 2_000] {
            let run = LerEngine::new(1).estimate_circuit(
                &c,
                &|| UnionFindDecoder::new(graph.clone()),
                SampleOptions {
                    min_shots,
                    ..Default::default()
                },
                11,
            );
            let phases = run.sample_seconds
                + run.extract_seconds
                + run.predecode_seconds
                + run.cluster_seconds
                + run.decode_seconds;
            assert!(
                phases <= run.wall_seconds + 1e-9,
                "phase sum {phases} exceeds wall {} (min_shots={min_shots})",
                run.wall_seconds
            );
        }
    }

    /// Without early stopping the tier counters partition the shot count
    /// and the defect histogram covers every shot — with and without a
    /// predecoder attached.
    #[test]
    fn tier_counters_partition_shots() {
        // A real surface-code patch: the rep-chain toy graphs are so small
        // that every node sits next to the frustrated seam and the
        // predecoder (correctly) never certifies anything there.
        let mem = caliqec_code::memory_circuit(
            &caliqec_code::rotated_patch(3, 3),
            &caliqec_code::NoiseModel::uniform(5e-3),
            3,
            caliqec_code::MemoryBasis::Z,
        );
        let c = mem.circuit;
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 2_000,
            ..Default::default()
        };
        let plain = LerEngine::new(2).estimate_circuit(
            &c,
            &|| UnionFindDecoder::new(graph.clone()),
            opts,
            5,
        );
        let tiered_factory = crate::predecode::Tiered::new(&graph, {
            let graph = graph.clone();
            move || UnionFindDecoder::new(graph.clone())
        });
        let tiered =
            LerEngine::new(2).estimate(&CompiledCircuit::new(&c), &tiered_factory, opts, 5);
        assert_eq!(tiered.estimate, plain.estimate, "fast path changed results");
        for run in [&plain, &tiered] {
            assert_eq!(
                run.tier0_shots + run.predecoded_shots + run.clustered_shots + run.residual_shots,
                run.estimate.shots,
                "tier counters must partition the shots"
            );
            assert_eq!(
                run.defect_histogram.iter().sum::<u64>(),
                run.estimate.shots as u64
            );
            assert_eq!(run.defect_histogram[0], run.tier0_shots as u64);
        }
        assert_eq!(plain.predecoded_shots, 0);
        assert_eq!(plain.clustered_shots, 0, "cluster tier is opt-in");
        assert_eq!(tiered.clustered_shots, 0, "cluster tier is opt-in");
        assert!(tiered.predecoded_shots > 0, "predecoder never fired");
        assert!(tiered.predecoded_defects >= tiered.predecoded_shots);
    }

    /// With the cluster tier armed, the partition invariant extends to the
    /// clustered column, the cluster-size histogram sums to the cluster
    /// count, and the estimate matches the documented cluster-on reference
    /// (the tier is a decoder variant: certified clusters peel exactly,
    /// uncertified ones decode per cluster).
    #[test]
    fn cluster_tier_partitions_and_fires_on_dense_shots() {
        // Dense-but-separated regime: at d=11, p=1e-3 most shots carry more
        // than MAX_CERT_DEFECTS defects split across many small clusters, a
        // deterministic handful of which fully peel.
        let mem = caliqec_code::memory_circuit(
            &caliqec_code::rotated_patch(11, 11),
            &caliqec_code::NoiseModel::uniform(1e-3),
            11,
            caliqec_code::MemoryBasis::Z,
        );
        let c = mem.circuit;
        let graph = graph_for_circuit(&c);
        let compiled = CompiledCircuit::new(&c);
        let opts = SampleOptions {
            min_shots: 2_000,
            ..Default::default()
        };
        let factory = crate::predecode::Tiered::new(&graph, {
            let graph = graph.clone();
            move || UnionFindDecoder::new(graph.clone())
        })
        .with_cluster();
        let run = LerEngine::new(2).estimate(&compiled, &factory, opts, 5);
        assert_eq!(
            run.tier0_shots + run.predecoded_shots + run.clustered_shots + run.residual_shots,
            run.estimate.shots,
            "cluster partition invariant"
        );
        assert!(run.clusters_total > 0, "no dense shot was decomposed");
        assert_eq!(
            run.cluster_size_histogram.iter().sum::<u64>(),
            run.clusters_total,
            "cluster-size histogram must cover every cluster"
        );
        assert!(
            run.clustered_shots > 0,
            "some dense shot must fully peel at d=11, p=1e-3"
        );
        assert!(run.cluster_seconds > 0.0);
        // Determinism: the cluster-on run is reproducible bit for bit.
        let again = LerEngine::new(1).estimate(&compiled, &factory, opts, 5);
        assert_eq!(again.estimate, run.estimate);
        assert_eq!(again.clustered_shots, run.clustered_shots);
        assert_eq!(again.clusters_total, run.clusters_total);
    }

    /// β = 1 with identity rates is plain Monte Carlo, bit for bit: same
    /// estimate, unit weights, ESS equal to the shot count, and the same
    /// LER from both accessors.
    #[test]
    fn rare_beta_one_is_bit_identical_to_plain() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let factory = || UnionFindDecoder::new(graph.clone());
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let plain = LerEngine::new(2).estimate(&compiled, &factory, opts, 42);
        let rare = LerEngine::new(2).estimate_rare(
            &compiled,
            &factory,
            RareOptions {
                boost_beta: 1.0,
                target_rse: 0.0,
                min_shots: 5_000,
                ..Default::default()
            },
            42,
        );
        assert_eq!(rare.estimate, plain.estimate);
        assert_eq!(rare.chunks_included, plain.chunks_included);
        assert_eq!(rare.boost_beta, 1.0);
        assert_eq!(rare.ess, rare.estimate.shots as f64);
        assert_eq!(rare.weighted_failures, rare.estimate.failures as f64);
        assert_eq!(rare.ler(), plain.estimate.per_shot());
        assert_eq!(rare.ler(), plain.ler());
    }

    /// A boosted run is bit-identical at any thread count: the weighted
    /// sums are per-chunk and folded in deterministic chunk order, and the
    /// CI cut is a pure function of the chunk prefix.
    #[test]
    fn rare_runs_are_deterministic_across_thread_counts() {
        let c = rep_circuit(5, 0.02);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let factory = || UnionFindDecoder::new(graph.clone());
        let options = RareOptions {
            boost_beta: 4.0,
            target_rse: 0.1,
            min_shots: 2_000,
            max_shots: 50_000,
            ..Default::default()
        };
        let reference = LerEngine::new(1).estimate_rare(&compiled, &factory, options.clone(), 7);
        assert!(reference.ess > 0.0);
        for threads in [2, 8] {
            let run =
                LerEngine::new(threads).estimate_rare(&compiled, &factory, options.clone(), 7);
            assert_eq!(run.estimate, reference.estimate, "threads={threads}");
            assert_eq!(run.chunks_included, reference.chunks_included);
            assert_eq!(run.weighted_failures, reference.weighted_failures);
            assert_eq!(run.ess, reference.ess);
            assert_eq!(run.ci_halfwidth, reference.ci_halfwidth);
        }
    }

    /// The importance-sampled estimator is unbiased: a boosted run's
    /// weighted LER agrees with a plain run of the same budget to within
    /// their combined confidence intervals, while observing far more raw
    /// failures, and its ESS sits strictly inside (0, shots).
    #[test]
    fn rare_estimate_agrees_with_plain_within_ci() {
        let c = rep_circuit(3, 0.05);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let factory = || UnionFindDecoder::new(graph.clone());
        let plain = LerEngine::new(2).estimate(
            &compiled,
            &factory,
            SampleOptions {
                min_shots: 50_000,
                ..Default::default()
            },
            99,
        );
        let rare = LerEngine::new(2).estimate_rare(
            &compiled,
            &factory,
            RareOptions {
                boost_beta: 6.0,
                target_rse: 0.0,
                min_shots: 50_000,
                ..Default::default()
            },
            99,
        );
        let p_plain = plain.ler();
        assert!(p_plain > 0.0, "fixture must fail sometimes");
        assert!(
            rare.estimate.failures > plain.estimate.failures,
            "boosting must surface more raw failures ({} vs {})",
            rare.estimate.failures,
            plain.estimate.failures
        );
        assert!(rare.ess > 0.0 && rare.ess < rare.estimate.shots as f64);
        assert!(rare.ci_halfwidth.is_finite() && rare.ci_halfwidth > 0.0);
        let tolerance = 5.0 * (rare.ci_halfwidth + plain.ci_halfwidth);
        assert!(
            (rare.ler() - p_plain).abs() <= tolerance,
            "IS estimate {} vs plain {} outside 5x combined CI {}",
            rare.ler(),
            p_plain,
            tolerance
        );
    }

    /// With a generous shot ceiling and an easy CI target, the run stops at
    /// a deterministic chunk prefix well short of the budget — the
    /// rare-event analogue of the failure-budget early stop. β = 1 here, so
    /// this is also the plain-MC shots-to-target-CI stopping rule.
    #[test]
    fn ci_stop_fires_before_the_full_budget() {
        let c = rep_circuit(3, 0.2);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let factory = || UnionFindDecoder::new(graph.clone());
        let options = RareOptions {
            boost_beta: 1.0,
            target_rse: 0.2,
            min_shots: 1_000,
            max_shots: 1_000_000,
            ..Default::default()
        };
        let run = LerEngine::new(4).estimate_rare(&compiled, &factory, options.clone(), 3);
        assert!(run.estimate.shots >= 1_000);
        assert!(
            run.estimate.shots < 1_000_000,
            "CI stop never fired ({} shots)",
            run.estimate.shots
        );
        let p = run.ler();
        assert!(run.ci_halfwidth <= 0.2 * p + f64::EPSILON);
        let serial = LerEngine::new(1).estimate_rare(&compiled, &factory, options, 3);
        assert_eq!(serial.estimate, run.estimate);
        assert_eq!(serial.chunks_included, run.chunks_included);
    }

    /// At d=11, p=1e-3 the mean defect count sits below the gate threshold,
    /// so `Auto` diverts every batch to the monolithic path — zero
    /// decompositions — while producing the exact same estimate as the
    /// forced-on tier (the tier is exact, so gating only moves time).
    #[test]
    fn auto_gate_diverts_sparse_batches() {
        let mem = caliqec_code::memory_circuit(
            &caliqec_code::rotated_patch(11, 11),
            &caliqec_code::NoiseModel::uniform(1e-3),
            11,
            caliqec_code::MemoryBasis::Z,
        );
        let c = mem.circuit;
        let graph = graph_for_circuit(&c);
        let compiled = CompiledCircuit::new(&c);
        let opts = SampleOptions {
            min_shots: 1_000,
            ..Default::default()
        };
        let build = {
            let graph = graph.clone();
            move || UnionFindDecoder::new(graph.clone())
        };
        let auto = crate::predecode::Tiered::new(&graph, build.clone())
            .with_cluster_gate(ClusterGate::Auto);
        let on = crate::predecode::Tiered::new(&graph, build).with_cluster();
        let gated = LerEngine::new(2).estimate(&compiled, &auto, opts, 5);
        let forced = LerEngine::new(2).estimate(&compiled, &on, opts, 5);
        assert!(gated.cluster_gate_off > 0, "gate never evaluated");
        assert_eq!(
            gated.cluster_gate_on, 0,
            "d=11 density must stay below the gate"
        );
        assert_eq!(gated.clustered_shots, 0);
        assert_eq!(gated.clusters_total, 0);
        assert_eq!(forced.cluster_gate_on, gated.cluster_gate_off);
        assert!(forced.clusters_total > 0);
        assert_eq!(
            gated.estimate, forced.estimate,
            "gating must not change failures"
        );
        assert_eq!(
            gated.tier0_shots + gated.predecoded_shots + gated.residual_shots,
            gated.estimate.shots,
            "gated-off batches keep the partition invariant"
        );
    }

    #[test]
    fn thread_resolution() {
        assert_eq!(LerEngine::new(3).threads(), 3);
        assert!(LerEngine::new(0).threads() >= 1);
    }

    #[test]
    fn try_estimate_rejects_malformed_circuits() {
        use caliqec_stab::{MeasIdx, Op};
        let bad = Circuit::from_ops(1, vec![Op::Detector(vec![MeasIdx(7)])]);
        let graph = graph_for_circuit(&rep_circuit(3, 0.05));
        let result = LerEngine::new(1).try_estimate_circuit(
            &bad,
            &|| UnionFindDecoder::new(graph.clone()),
            SampleOptions::default(),
            1,
        );
        assert!(matches!(result, Err(EngineError::Circuit(_))));
    }

    #[test]
    fn injected_faults_recover_bit_identically() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let factory = Tiered::new(&graph, {
            let graph = graph.clone();
            move || UnionFindDecoder::new(graph.clone())
        });
        let clean = LerEngine::new(2).estimate(&compiled, &factory, opts, 42);
        assert_eq!(clean.faulted_chunks, 0);

        let plan = FaultPlan::new().panic_at(0).corrupt_defects_at(2);
        let faulty = LerEngine::new(2)
            .with_faults(plan)
            .try_estimate(&compiled, &factory, opts, 42)
            .expect("ladder must recover from injected faults");
        assert_eq!(faulty.estimate, clean.estimate, "retry changed the LER");
        assert_eq!(faulty.faulted_chunks, 2);
        assert_eq!(faulty.retried_chunks, 2);
        assert_eq!(faulty.panic_faults, 2);
        assert!(faulty.degraded());
        assert_eq!(faulty.rung_chunks[1], 2);
        assert!(faulty.degraded_shots > 0);
    }

    /// Observability must be passive: an enabled sink changes no result
    /// bit, and its merged view reconciles with the run's own counters.
    #[test]
    fn observed_run_is_bit_identical_and_reconciles() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let factory = Tiered::new(&graph, {
            let graph = graph.clone();
            move || UnionFindDecoder::new(graph.clone())
        });
        let plain = LerEngine::new(2).estimate(&compiled, &factory, opts, 42);

        let sink = ObsSink::enabled();
        let observed = LerEngine::new(2)
            .with_obs(sink.clone())
            .estimate(&compiled, &factory, opts, 42);
        assert_eq!(observed.estimate, plain.estimate, "obs changed the LER");
        assert_eq!(observed.defect_histogram, plain.defect_histogram);
        assert_eq!(observed.tier0_shots, plain.tier0_shots);

        let snap = sink.snapshot();
        assert_eq!(snap.counter("runs_started"), 1);
        assert_eq!(
            snap.counter("chunks_finished"),
            observed.chunks_executed as u64
        );
        assert_eq!(snap.counter("shots_tier0"), observed.tier0_shots as u64);
        assert_eq!(
            snap.counter("shots_tier1"),
            observed.predecoded_shots as u64
        );
        assert_eq!(snap.counter("shots_tier2"), observed.residual_shots as u64);
        assert_eq!(snap.counter("faults_panic"), 0);
        let decode_hist = snap.decode_shot_hist();
        assert_eq!(decode_hist.count, observed.residual_shots as u64);
        assert!(snap.hist(Hist::PredecodeShot).unwrap().count > 0);

        // Journal: a RunStart, then one ChunkStart+ChunkFinish pair per
        // chunk, in chunk order.
        let starts = snap
            .events
            .iter()
            .filter(|e| e.kind.tag() == "chunk_start")
            .count();
        let finishes: Vec<&Event> = snap
            .events
            .iter()
            .filter(|e| e.kind.tag() == "chunk_finish")
            .collect();
        assert_eq!(starts, observed.chunks_executed);
        assert_eq!(finishes.len(), observed.chunks_executed);
        assert!(finishes.windows(2).all(|w| w[0].chunk < w[1].chunk));
        assert_eq!(snap.events[0].kind.tag(), "run_start");
        let shots: u64 = finishes
            .iter()
            .map(|e| match e.kind {
                EventKind::ChunkFinish { shots, .. } => shots as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(shots, observed.estimate.shots as u64);
    }

    /// The journal (timestamps aside) must be identical at any thread
    /// count: its order depends only on the deterministic chunk schedule.
    #[test]
    fn journal_is_thread_count_independent() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let journal_of = |threads: usize| {
            let sink = ObsSink::enabled();
            LerEngine::new(threads).with_obs(sink.clone()).estimate(
                &compiled,
                &|| UnionFindDecoder::new(graph.clone()),
                opts,
                42,
            );
            sink.snapshot()
                .events
                .iter()
                .map(|e| (e.run, e.chunk, e.seq, e.kind.tag()))
                .collect::<Vec<_>>()
        };
        let single = journal_of(1);
        assert!(!single.is_empty());
        for threads in [2, 4] {
            assert_eq!(journal_of(threads), single, "threads={threads}");
        }
    }

    /// Epoch runs record one reweight event per context and reconcile the
    /// epoch gauge.
    #[test]
    fn epoch_run_records_reweight_events() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 2_000,
            ..Default::default()
        };
        let mut schedule = EpochSchedule::new(10.0);
        schedule.push(0.0, RateTable::identity());
        schedule.push(5.0, RateTable::uniform(0.12));
        let sink = ObsSink::enabled();
        let run = LerEngine::new(2).with_obs(sink.clone()).estimate_epochs(
            &compiled,
            &graph,
            &|g: &MatchingGraph| UnionFindDecoder::new(g.clone()),
            &schedule,
            opts,
            7,
        );
        assert_eq!(run.epochs, 2);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("epoch_reweights"), 2);
        assert_eq!(snap.hist(Hist::EpochReweight).unwrap().count, 2);
        let reweights = snap
            .events
            .iter()
            .filter(|e| e.kind.tag() == "epoch_reweight")
            .count();
        assert_eq!(reweights, 2);
        assert!(snap
            .gauges
            .iter()
            .any(|&(name, value)| name == "epochs" && value == 2));
    }

    #[test]
    fn defect_hist_buckets_are_exact_then_logarithmic() {
        for d in 0..32 {
            assert_eq!(defect_hist_bucket(d), d);
        }
        assert_eq!(defect_hist_bucket(32), 32);
        assert_eq!(defect_hist_bucket(63), 32);
        assert_eq!(defect_hist_bucket(64), 33);
        assert_eq!(defect_hist_bucket(127), 33);
        assert_eq!(defect_hist_bucket(128), 34);
        assert_eq!(defect_hist_bucket(255), 34);
        assert_eq!(defect_hist_bucket(256), 35);
        assert_eq!(defect_hist_bucket(usize::MAX), 35);
        assert_eq!(DEFECT_HIST_BUCKETS, 36);
    }

    #[test]
    fn epoch_schedule_resolves_active_epoch() {
        let empty = EpochSchedule::new(10.0);
        assert_eq!(empty.active_at(5.0), 0);

        let mut sched = EpochSchedule::new(12.0);
        sched.push(8.0, RateTable::uniform(0.02));
        sched.push(0.0, RateTable::identity());
        sched.push(4.0, RateTable::uniform(0.01));
        assert_eq!(sched.epochs().len(), 3);
        assert!(sched.epochs()[0].hours <= sched.epochs()[1].hours);
        assert!(sched.epochs()[1].hours <= sched.epochs()[2].hours);
        assert_eq!(sched.active_at(-1.0), 0); // clamped to first epoch
        assert_eq!(sched.active_at(0.0), 0);
        assert_eq!(sched.active_at(3.9), 0);
        assert_eq!(sched.active_at(4.0), 1);
        assert_eq!(sched.active_at(7.9), 1);
        assert_eq!(sched.active_at(8.0), 2);
        assert_eq!(sched.active_at(100.0), 2);
    }

    #[test]
    fn identity_epoch_schedule_matches_tiered_run() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let factory = Tiered::new(&graph, {
            let graph = graph.clone();
            move || UnionFindDecoder::new(graph.clone())
        });
        let baseline = LerEngine::new(2).estimate(&compiled, &factory, opts, 42);

        for schedule in [EpochSchedule::new(10.0), {
            let mut s = EpochSchedule::new(10.0);
            s.push(0.0, RateTable::identity());
            s
        }] {
            let run = LerEngine::new(2).estimate_epochs(
                &compiled,
                &graph,
                &|g: &MatchingGraph| UnionFindDecoder::new(g.clone()),
                &schedule,
                opts,
                42,
            );
            assert_eq!(run.estimate, baseline.estimate);
            assert_eq!(run.tier0_shots, baseline.tier0_shots);
            assert_eq!(run.predecoded_shots, baseline.predecoded_shots);
            assert_eq!(run.residual_shots, baseline.residual_shots);
            assert_eq!(run.defect_histogram, baseline.defect_histogram);
            assert_eq!(run.epochs, 1);
            assert!(run.reweight_seconds >= 0.0);
        }
    }

    #[test]
    fn epoch_runs_are_deterministic_across_thread_counts() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let mut schedule = EpochSchedule::new(10.0);
        schedule.push(0.0, RateTable::identity());
        schedule.push(5.0, RateTable::uniform(0.12));
        let factory = |g: &MatchingGraph| UnionFindDecoder::new(g.clone());
        let first =
            LerEngine::new(1).estimate_epochs(&compiled, &graph, &factory, &schedule, opts, 7);
        assert_eq!(first.epochs, 2);
        for threads in [2, 4] {
            let run = LerEngine::new(threads)
                .estimate_epochs(&compiled, &graph, &factory, &schedule, opts, 7);
            assert_eq!(run.estimate, first.estimate, "threads={threads}");
            assert_eq!(run.defect_histogram, first.defect_histogram);
        }
    }

    #[test]
    fn epoch_run_recovers_from_injected_faults() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let mut schedule = EpochSchedule::new(10.0);
        schedule.push(0.0, RateTable::identity());
        schedule.push(5.0, RateTable::uniform(0.12));
        let factory = |g: &MatchingGraph| UnionFindDecoder::new(g.clone());
        let clean =
            LerEngine::new(2).estimate_epochs(&compiled, &graph, &factory, &schedule, opts, 7);
        assert_eq!(clean.faulted_chunks, 0);

        let plan = FaultPlan::new().panic_at(0).corrupt_defects_at(2);
        let faulty = LerEngine::new(2)
            .with_faults(plan)
            .try_estimate_epochs(&compiled, &graph, &factory, &schedule, opts, 7)
            .expect("epoch ladder must recover from injected faults");
        assert_eq!(faulty.estimate, clean.estimate, "retry changed the LER");
        assert_eq!(faulty.faulted_chunks, 2);
        assert_eq!(faulty.retried_chunks, 2);
        assert!(faulty.degraded());
    }
}
