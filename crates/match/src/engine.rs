//! Thread-parallel Monte-Carlo logical-error-rate engine.
//!
//! [`LerEngine`] dispatches 64-shot batches, grouped into fixed-size
//! chunks, to worker threads over a shared [`CompiledCircuit`]. The
//! determinism contract: **results depend only on `(options, base_seed)`
//! — never on the thread count or scheduling order.** Concretely:
//!
//! - The chunk size is a function of the shot budget alone, and chunk `i`
//!   samples from an RNG seeded by [`chunk_seed`]`(base_seed, i)`.
//! - `max_failures` early-stopping is resolved at chunk granularity: the
//!   run is cut at the *first* chunk at which the cumulative failure count
//!   over chunks `0..=k` reaches the budget, and only chunks up to the cut
//!   contribute to the estimate. Chunks that other workers had already
//!   started are discarded, so a racing thread can waste work but never
//!   change the answer.
//! - [`estimate_ler_seeded`] runs the identical chunk schedule on the
//!   calling thread; [`LerEngine::estimate`] at any thread count returns
//!   the same [`LerEstimate`] bit-for-bit.
//!
//! Wall-clock, per-phase timing, and throughput land in [`EngineRun`],
//! deliberately outside `LerEstimate` so estimates stay comparable.

use crate::decode::{Decoder, LerEstimate, SampleOptions};
use caliqec_stab::{
    chunk_seed, resolve_threads, BatchEvents, Circuit, CompiledCircuit, FrameState, SparseBatch,
    BATCH,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Builds per-worker decoder instances for parallel estimation.
///
/// Blanket-implemented for any `Fn() -> D` closure that is `Sync`, so the
/// idiomatic call site is:
///
/// ```ignore
/// let graph = graph_for_circuit(&circuit);
/// engine.estimate(&compiled, &|| UnionFindDecoder::new(graph.clone()), opts, seed);
/// ```
pub trait DecoderFactory: Sync {
    /// The decoder type produced.
    type Decoder: Decoder;

    /// Builds one decoder. Called once per worker thread.
    fn build(&self) -> Self::Decoder;
}

impl<D: Decoder, F: Fn() -> D + Sync> DecoderFactory for F {
    type Decoder = D;

    fn build(&self) -> D {
        self()
    }
}

/// The deterministic work schedule shared by the parallel engine and the
/// serial reference path.
#[derive(Clone, Copy, Debug)]
struct ChunkPlan {
    /// Batches per chunk — a function of the shot budget only.
    chunk_batches: usize,
    /// Total chunks covering `max_batches`.
    num_chunks: usize,
    /// Total batch budget.
    max_batches: usize,
    /// Failure budget (0 = run the full batch budget).
    max_failures: usize,
}

impl ChunkPlan {
    fn new(options: SampleOptions) -> ChunkPlan {
        let min_batches = options.min_shots.div_ceil(BATCH).max(1);
        let max_batches = if options.max_shots == 0 {
            min_batches
        } else {
            options.max_shots.div_ceil(BATCH).max(min_batches)
        };
        // Aim for ~64 chunks so early-stopping stays reasonably fine-grained
        // while per-chunk overhead amortizes; never let the chunk size depend
        // on the thread count, or determinism across thread counts breaks.
        let chunk_batches = max_batches.div_ceil(64).clamp(1, 64);
        ChunkPlan {
            chunk_batches,
            num_chunks: max_batches.div_ceil(chunk_batches),
            max_batches,
            max_failures: options.max_failures,
        }
    }

    /// Number of batches chunk `chunk` samples (the last chunk may be short).
    fn batches_in(&self, chunk: usize) -> usize {
        let start = chunk * self.chunk_batches;
        self.chunk_batches.min(self.max_batches - start)
    }
}

/// Outcome of sampling and decoding one chunk.
#[derive(Clone, Copy, Debug)]
struct ChunkResult {
    batches: usize,
    failures: usize,
    sample_seconds: f64,
    extract_seconds: f64,
    decode_seconds: f64,
}

/// Samples and decodes one chunk from its deterministic seed.
///
/// The three phases are timed separately: frame sampling, word-sparse
/// syndrome extraction into `sparse`, and decoding proper. Extraction used
/// to be (mis)attributed to the decode counter; keeping it apart makes the
/// decode numbers comparable across extraction strategies.
#[allow(clippy::too_many_arguments)]
fn run_chunk<D: Decoder>(
    compiled: &CompiledCircuit,
    decoder: &mut D,
    state: &mut FrameState,
    events: &mut BatchEvents,
    sparse: &mut SparseBatch,
    plan: &ChunkPlan,
    chunk: usize,
    base_seed: u64,
) -> ChunkResult {
    let mut rng = StdRng::seed_from_u64(chunk_seed(base_seed, chunk as u64));
    let batches = plan.batches_in(chunk);
    let mut failures = 0usize;
    let mut sample_seconds = 0.0;
    let mut extract_seconds = 0.0;
    let mut decode_seconds = 0.0;
    for _ in 0..batches {
        let t0 = Instant::now();
        compiled.sample_batch_into(state, &mut rng, events);
        let t1 = Instant::now();
        sparse.extract(events);
        let t2 = Instant::now();
        for s in 0..BATCH {
            if decoder.decode(sparse.defects(s)) != sparse.observables(s) {
                failures += 1;
            }
        }
        sample_seconds += (t1 - t0).as_secs_f64();
        extract_seconds += (t2 - t1).as_secs_f64();
        decode_seconds += t2.elapsed().as_secs_f64();
    }
    ChunkResult {
        batches,
        failures,
        sample_seconds,
        extract_seconds,
        decode_seconds,
    }
}

/// Result of one [`LerEngine::estimate`] run: the estimate plus
/// throughput/timing counters.
///
/// Timing covers *all executed* chunks, including any discarded past an
/// early-stop cut, so it reflects true cost; the estimate covers only the
/// deterministic included prefix.
#[derive(Clone, Copy, Debug)]
pub struct EngineRun {
    /// The (thread-count-independent) estimate.
    pub estimate: LerEstimate,
    /// Worker threads used.
    pub threads: usize,
    /// Chunks contributing to the estimate.
    pub chunks_included: usize,
    /// Chunks actually executed (≥ `chunks_included` under early stop).
    pub chunks_executed: usize,
    /// End-to-end wall-clock seconds.
    pub wall_seconds: f64,
    /// CPU seconds spent sampling batches, summed across workers.
    pub sample_seconds: f64,
    /// CPU seconds spent extracting sparse syndromes from frame words,
    /// summed across workers.
    pub extract_seconds: f64,
    /// CPU seconds spent decoding shots, summed across workers.
    pub decode_seconds: f64,
}

impl EngineRun {
    /// Decoded-shot throughput (shots per wall-clock second).
    pub fn shots_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.estimate.shots as f64 / self.wall_seconds
    }
}

/// Aggregation state shared by workers under a mutex.
struct Shared {
    results: Vec<Option<ChunkResult>>,
    /// First chunk index at which the cumulative failure budget is met,
    /// once known (requires the full prefix to have completed).
    cut: Option<usize>,
    chunks_executed: usize,
    sample_seconds: f64,
    extract_seconds: f64,
    decode_seconds: f64,
}

impl Shared {
    /// Recomputes the early-stop cut over the completed prefix.
    fn recompute_cut(&mut self, max_failures: usize) {
        let mut failures = 0usize;
        for (k, res) in self.results.iter().enumerate() {
            match res {
                Some(r) => {
                    failures += r.failures;
                    if failures >= max_failures {
                        self.cut = Some(k);
                        return;
                    }
                }
                None => return,
            }
        }
    }
}

/// Thread-parallel Monte-Carlo LER estimator. See the module docs for the
/// determinism contract.
///
/// # Examples
///
/// ```
/// use caliqec_match::{graph_for_circuit, LerEngine, SampleOptions, UnionFindDecoder};
/// use caliqec_stab::{Basis, Circuit, CompiledCircuit, Noise1};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
///
/// let compiled = CompiledCircuit::new(&c);
/// let graph = graph_for_circuit(&c);
/// let run = LerEngine::new(2).estimate(
///     &compiled,
///     &|| UnionFindDecoder::new(graph.clone()),
///     SampleOptions { min_shots: 640, ..Default::default() },
///     7,
/// );
/// // A single perfectly-heralded error is always corrected.
/// assert_eq!(run.estimate.failures, 0);
/// assert_eq!(run.estimate.shots, 640);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LerEngine {
    threads: usize,
}

impl LerEngine {
    /// Creates an engine with `threads` workers (0 = auto: honours the
    /// `CALIQEC_THREADS` environment variable, else all available cores).
    pub fn new(threads: usize) -> LerEngine {
        LerEngine {
            threads: resolve_threads(threads),
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Estimates the residual LER of `compiled` using per-worker decoders
    /// from `factory`. Deterministic in `(options, base_seed)`.
    pub fn estimate<F: DecoderFactory>(
        &self,
        compiled: &CompiledCircuit,
        factory: &F,
        options: SampleOptions,
        base_seed: u64,
    ) -> EngineRun {
        let started = Instant::now();
        let plan = ChunkPlan::new(options);
        let threads = self.threads.min(plan.num_chunks).max(1);
        let next = AtomicUsize::new(0);
        let shared = Mutex::new(Shared {
            results: vec![None; plan.num_chunks],
            cut: None,
            chunks_executed: 0,
            sample_seconds: 0.0,
            extract_seconds: 0.0,
            decode_seconds: 0.0,
        });

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut decoder = factory.build();
                    let mut state = FrameState::new(compiled);
                    let mut events = BatchEvents::default();
                    let mut sparse = SparseBatch::new();
                    loop {
                        if shared.lock().unwrap().cut.is_some() {
                            break;
                        }
                        let chunk = next.fetch_add(1, Ordering::Relaxed);
                        if chunk >= plan.num_chunks {
                            break;
                        }
                        let result = run_chunk(
                            compiled,
                            &mut decoder,
                            &mut state,
                            &mut events,
                            &mut sparse,
                            &plan,
                            chunk,
                            base_seed,
                        );
                        let mut sh = shared.lock().unwrap();
                        sh.chunks_executed += 1;
                        sh.sample_seconds += result.sample_seconds;
                        sh.extract_seconds += result.extract_seconds;
                        sh.decode_seconds += result.decode_seconds;
                        sh.results[chunk] = Some(result);
                        if plan.max_failures > 0 && sh.cut.is_none() {
                            sh.recompute_cut(plan.max_failures);
                        }
                    }
                });
            }
        });

        let sh = shared.into_inner().unwrap();
        let included = sh.cut.map_or(plan.num_chunks, |k| k + 1);
        let mut estimate = LerEstimate::default();
        for result in sh.results[..included].iter().flatten() {
            estimate.shots += result.batches * BATCH;
            estimate.failures += result.failures;
        }
        EngineRun {
            estimate,
            threads,
            chunks_included: included,
            chunks_executed: sh.chunks_executed,
            wall_seconds: started.elapsed().as_secs_f64(),
            sample_seconds: sh.sample_seconds,
            extract_seconds: sh.extract_seconds,
            decode_seconds: sh.decode_seconds,
        }
    }

    /// Convenience: compiles `circuit` and estimates in one call.
    pub fn estimate_circuit<F: DecoderFactory>(
        &self,
        circuit: &Circuit,
        factory: &F,
        options: SampleOptions,
        base_seed: u64,
    ) -> EngineRun {
        self.estimate(&CompiledCircuit::new(circuit), factory, options, base_seed)
    }
}

/// The serial reference path: runs the engine's exact chunk schedule on
/// the calling thread with a caller-owned decoder. [`LerEngine::estimate`]
/// returns the same [`LerEstimate`] bit-for-bit at any thread count; the
/// classic [`crate::estimate_ler`] wraps this with a base seed drawn from
/// its caller's RNG.
pub fn estimate_ler_seeded<D: Decoder>(
    compiled: &CompiledCircuit,
    decoder: &mut D,
    options: SampleOptions,
    base_seed: u64,
) -> LerEstimate {
    let plan = ChunkPlan::new(options);
    let mut state = FrameState::new(compiled);
    let mut events = BatchEvents::default();
    let mut sparse = SparseBatch::new();
    let mut estimate = LerEstimate::default();
    for chunk in 0..plan.num_chunks {
        let result = run_chunk(
            compiled,
            decoder,
            &mut state,
            &mut events,
            &mut sparse,
            &plan,
            chunk,
            base_seed,
        );
        estimate.shots += result.batches * BATCH;
        estimate.failures += result.failures;
        if plan.max_failures > 0 && estimate.failures >= plan.max_failures {
            break;
        }
    }
    estimate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::graph_for_circuit;
    use crate::unionfind::UnionFindDecoder;
    use caliqec_stab::{Basis, Noise1};

    /// Distance-n repetition code, single round, X noise (mirrors the
    /// fixture in `decode.rs`).
    fn rep_circuit(n: usize, p: f64) -> Circuit {
        let data: Vec<u32> = (0..n as u32).collect();
        let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
        let mut c = Circuit::new(2 * n - 1);
        c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
        c.noise1(Noise1::XError, p, &data);
        for i in 0..n - 1 {
            c.cx(data[i], anc[i]);
            c.cx(data[i + 1], anc[i]);
        }
        let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
        for m in &ms {
            c.detector(&[*m]);
        }
        let md = c.measure(data[0], Basis::Z, 0.0);
        c.observable(0, &[md]);
        c
    }

    #[test]
    fn engine_matches_serial_reference() {
        let c = rep_circuit(5, 0.08);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 5_000,
            ..Default::default()
        };
        let mut decoder = UnionFindDecoder::new(graph.clone());
        let serial = estimate_ler_seeded(&compiled, &mut decoder, opts, 42);
        for threads in [1, 2, 4] {
            let run = LerEngine::new(threads).estimate(
                &compiled,
                &|| UnionFindDecoder::new(graph.clone()),
                opts,
                42,
            );
            assert_eq!(run.estimate, serial, "threads={threads}");
        }
    }

    #[test]
    fn early_stop_is_deterministic_across_thread_counts() {
        let c = rep_circuit(3, 0.3);
        let compiled = CompiledCircuit::new(&c);
        let graph = graph_for_circuit(&c);
        let opts = SampleOptions {
            min_shots: 64,
            max_failures: 20,
            max_shots: 64 * 4096,
        };
        let mut decoder = UnionFindDecoder::new(graph.clone());
        let serial = estimate_ler_seeded(&compiled, &mut decoder, opts, 7);
        assert!(serial.failures >= 20);
        assert!(serial.shots < 64 * 4096);
        for threads in [1, 2, 8] {
            let run = LerEngine::new(threads).estimate(
                &compiled,
                &|| UnionFindDecoder::new(graph.clone()),
                opts,
                7,
            );
            assert_eq!(run.estimate, serial, "threads={threads}");
            assert!(run.chunks_executed >= run.chunks_included);
        }
    }

    #[test]
    fn run_reports_throughput() {
        let c = rep_circuit(3, 0.05);
        let graph = graph_for_circuit(&c);
        let run = LerEngine::new(2).estimate_circuit(
            &c,
            &|| UnionFindDecoder::new(graph.clone()),
            SampleOptions {
                min_shots: 1_000,
                ..Default::default()
            },
            3,
        );
        assert_eq!(run.estimate.shots, 1_024);
        assert!(run.shots_per_sec() > 0.0);
        assert!(run.wall_seconds > 0.0);
        assert!(run.sample_seconds > 0.0);
        assert!(run.extract_seconds > 0.0);
        assert!(run.decode_seconds > 0.0);
    }

    #[test]
    fn thread_resolution() {
        assert_eq!(LerEngine::new(3).threads(), 3);
        assert!(LerEngine::new(0).threads() >= 1);
    }
}
