//! Tier-1 predecoder: provably-exact local matching for sparse syndromes.
//!
//! At the physical error rates that matter for calibration sweeps, the
//! typical shot carries a handful of defects, most of which are an isolated
//! adjacent pair produced by a single error mechanism, or a lone defect
//! near the boundary. [`Predecoder::predecode`] recognises exactly those
//! configurations and *certifies* the whole shot: it proves that both full
//! decoders ([`crate::UnionFindDecoder`] and [`crate::MwpmDecoder`]) would
//! return a correction with precisely the observable mask it computes
//! locally, and returns it without ever touching the union-find / matching
//! machinery. Anything it cannot prove falls through (`None`) to the full
//! decoder untouched.
//!
//! Certification is all-or-nothing by design. Peeling *part* of a syndrome
//! is unsound for both backends: removing a matched pair changes the
//! union-find growth trajectory of the surviving clusters, and opens a
//! corridor the exact matcher could have routed through. The fast path
//! therefore never hands a modified defect list to the slow path — a shot
//! is either fully certified or fully decoded.
//!
//! # Firing condition
//!
//! The defect list is partitioned into *units* via the CSR adjacency
//! (O(degree) per defect): a defect with exactly one defect neighbour is
//! **paired** with it (adjacency is symmetric, so pairing is mutual); a
//! defect with no defect neighbours is a boundary **single**; two or more
//! defect neighbours decline the shot. With `EPS = 1e-9` absorbing the
//! decoders' float tolerances (accumulated rounding on these short paths
//! is ≤ 1e-12), the shot certifies iff every unit satisfies:
//!
//! - **Single** `u`: unit weight `W = bnd(u)`, its exact shortest boundary
//!   distance, with `W > EPS` and the flatness margin below. Mask
//!   contribution `π(u) ^ π(boundary)`.
//! - **Adjacent pair** `(u, v)`: let `w = d(u, v)` (exact boundary-avoiding
//!   distance from the truncated near table) and compare with draining
//!   both to the boundary. If `w + EPS < bnd(u) + bnd(v)`, the unit is an
//!   internal pair with `W = w` for both members. If
//!   `bnd(u) + bnd(v) + EPS < w`, both members demote to singles (their
//!   mutual cross margin is exactly that inequality). An exact tie
//!   declines. Either way the mask contribution is `π(u) ^ π(v)` — the
//!   boundary potential cancels — which is why the tie is the only case
//!   that needs declining at all: it is rejected out of caution for the
//!   union-find growth trajectory, not because the masks differ.
//! - **Flatness**: `frus(x) > W_x + EPS` for every defect `x`, where
//!   `frus` is the distance to the nearest endpoint of a *frustrated*
//!   edge — an edge whose observable mask differs from the gradient
//!   `π(u) ^ π(v)` of the precomputed node potential. Inside a
//!   frustration-free ball, the observable flip of *any* walk depends only
//!   on its endpoints (two walks differ by cycles of zero observable XOR),
//!   so every tying shortest path, every union-find peeling tree, and
//!   every Dijkstra tie-break yields the same mask: the potential
//!   gradient. Degenerate weight ties — ubiquitous in uniform-noise
//!   surface codes — therefore need no uniqueness side conditions.
//! - **Cross margin**: for defects `x`, `y` in *different* units,
//!   `d(x, y) > W_x + W_y + EPS` (near-table lookup, or absence from the
//!   truncated ball when the threshold fits under the ball radius), so
//!   neither cluster growth nor any alternative matching can couple the
//!   units.
//!
//! The certified mask is the XOR of per-unit potential gradients.
//!
//! # Why this equals both decoders
//!
//! **MWPM**: assign each internal-pair member a share `φ` with
//! `φ(u) + φ(v) = W`, `φ(x) < bnd(x)` (possible because
//! `W < bnd(u) + bnd(v)`), and each single `φ = W = bnd`; the certified
//! matching costs `Σ φ`. Any other perfect matching must use a cross-unit
//! connection (cost `> W_x + W_y ≥ φ(x) + φ(y)`), a pair-member-to-boundary
//! mating (cost `bnd(x) > φ(x)`), or a walk through the boundary node
//! (which decomposes into two boundary matings, bounded the same way) —
//! each strictly costlier than the `φ` mass it replaces, so every
//! minimum-cost matching keeps the certified unit structure. Its realised
//! paths may differ from ours by weight ties, but all lie inside the flat
//! balls, so the mask is the same gradient XOR. The margins exceed the
//! decoder's float error by orders of magnitude, so its comparisons
//! resolve the same way.
//!
//! **Union-find**: clusters grow balls at a common rate; a unit's region
//! stays inside its radius-`W` balls until it neutralises. An internal
//! pair merges once combined growth covers `d(u, v)`; if one member sits
//! nearer the boundary than `W/2` it may drain there first and the other
//! joins its frozen, boundary-connected cluster — either trajectory stays
//! inside the radius-`W` balls, and the peel mask telescopes to
//! `π(u) ^ π(v)` in every case (boundary terms cancel pairwise). A single
//! joins the boundary at `bnd(u)`. The cross margin keeps two active
//! units (combined reach `≤ W_x + W_y`) from ever completing a connecting
//! edge. The grown region is confined to the units' flat balls, so
//! whatever spanning forest peeling picks, each component's peel paths
//! telescope to the certified gradient sum.
//!
//! # Scratch discipline
//!
//! Like `UnionFindDecoder`, the per-shot scratch (`is_defect` flags) is
//! restored via the defect list itself after every call, so a `Predecoder`
//! is reusable with zero steady-state allocation. The precomputed tables
//! are immutable and shared across clones via `Arc` — cloning a predecoder
//! for another worker thread costs one atomic increment plus a small flag
//! buffer.

use crate::engine::DecoderFactory;
use crate::graph::{MatchingGraph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Margin absorbing decoder float tolerances; all certification
/// inequalities must clear this gap.
pub(crate) const EPS: f64 = 1e-9;

/// Shots with more defects than this skip certification outright: the
/// O(k²) cross-margin check would cost more than it saves, dense shots
/// essentially never certify, and staying at or below
/// [`crate::MwpmDecoder::DEFAULT_MAX_EXACT`] keeps every certified shot on
/// the exact-DP matching path (the greedy fallback is never in play).
pub(crate) const MAX_CERT_DEFECTS: usize = 12;

/// Min-heap item for the table-building Dijkstra runs. Node-id tie-break
/// keeps pop order (and therefore table construction) reproducible.
#[derive(PartialEq)]
struct HeapItem(f64, u32);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

/// Immutable certification tables, built once per graph and shared across
/// predecoder clones (and, via [`crate::ClusterTier`], the dense-regime
/// cluster tier, which reuses the same radius/potential/margin machinery).
#[derive(Debug)]
pub(crate) struct Tables {
    pub(crate) graph: MatchingGraph,
    /// Truncation radius of the near tables: they cover all walks of
    /// length ≤ `radius`, so absence of a node certifies distance > radius.
    pub(crate) radius: f64,
    /// Node potential: `π(root) = 0`, `π(child) = π(parent) ^ obs(edge)`
    /// over a spanning forest. Certified masks are gradients of π.
    pub(crate) pot: Vec<u64>,
    /// Exact shortest boundary distance per node (`INFINITY` if detached).
    pub(crate) bnd: Vec<f64>,
    /// Distance to the nearest endpoint of a frustrated edge (`INFINITY`
    /// when the potential explains every edge). A ball of smaller radius
    /// contains no frustrated edge, so observable flips inside it are
    /// path-independent.
    pub(crate) frus: Vec<f64>,
    /// Second gauge (wide tables only, else empty): a potential whose
    /// frustration wall sits along the observable-crossing columns instead
    /// of the drainage watershed, so units straddling the π-watershed —
    /// which fail the `frus` flatness margin — can still certify. See
    /// [`Tables::single_mask`] / [`Tables::pair_mask`].
    pub(crate) pot2: Vec<u64>,
    /// Distance to the nearest frustrated-edge endpoint under `pot2`
    /// (empty unless the tables are widened).
    pub(crate) frus2: Vec<f64>,
    /// Truncated near tables, CSR over nodes: for node `n`, targets
    /// `near_node[near_off[n]..near_off[n+1]]` (ascending) with exact
    /// boundary-avoiding shortest distances `near_dist`.
    near_off: Vec<u32>,
    near_node: Vec<u32>,
    near_dist: Vec<f64>,
}

impl Tables {
    /// Predecoder tables: truncation radius `2 × median edge weight` (with
    /// headroom), the cheapest balls that still certify single-mechanism
    /// units of median weight.
    pub(crate) fn build(graph: &MatchingGraph) -> Tables {
        Self::build_inner(graph, false)
    }

    /// Cluster-tier tables: the radius is widened to
    /// `2 × max(median, min(max_ball_edge, 4 × median))` so the tier's
    /// unit-weight cap `(radius − EPS) / 2` exceeds every internal edge
    /// weight (any single-edge defect pair fits under it) while the
    /// `min(·, 4 × median)` guard keeps pathological weight tails from
    /// blowing the balls up. On a uniform-weight graph this degenerates to
    /// the predecoder radius.
    pub(crate) fn build_wide(graph: &MatchingGraph) -> Tables {
        Self::build_inner(graph, true)
    }

    fn build_inner(graph: &MatchingGraph, widen: bool) -> Tables {
        let n = graph.num_nodes();
        let boundary = graph.boundary();

        // --- Exact boundary distances (plain Dijkstra from the boundary),
        // recording the shortest-path tree (parent node + edge) and the
        // finalization order for the gauge construction below.
        let mut bnd = vec![f64::INFINITY; n];
        let mut par_node = vec![u32::MAX; n];
        let mut par_edge = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        bnd[boundary] = 0.0;
        heap.push(HeapItem(0.0, boundary as u32));
        while let Some(HeapItem(d, u)) = heap.pop() {
            let u = u as usize;
            if d > bnd[u] {
                continue;
            }
            order.push(u as u32);
            for &ei in graph.incident(u) {
                let e = &graph.edges()[ei as usize];
                let v = graph.other_endpoint(ei as usize, u);
                let nd = d + e.weight;
                if nd < bnd[v] {
                    bnd[v] = nd;
                    par_node[v] = u as u32;
                    par_edge[v] = ei;
                    heap.push(HeapItem(nd, v as u32));
                }
            }
        }

        // --- Node potential π. Any gauge makes the exactness argument go
        // through (an edge is frustrated iff its mask differs from the
        // gradient of π, and cycles avoiding frustrated edges have zero
        // observable XOR), but the gauge decides *where* the frustrated
        // edges sit, and the certification rate lives or dies by keeping
        // them in a thin seam instead of scattered across the lattice.
        // Rooting π on the boundary's shortest-path tree does exactly
        // that: each node inherits the crossing parity of its shortest
        // drain path, so frustration concentrates where drainage regions
        // of opposite logical parity meet — far from most of the bulk.
        // (A DFS-forest gauge, by contrast, frustrates non-tree edges all
        // over, because its fundamental cycles cross the logical membrane
        // haphazardly; that gauge cut measured certification rates by ~4×.)
        let mut pot = vec![0u64; n];
        let mut seen = vec![false; n];
        for &u in &order {
            let u = u as usize;
            seen[u] = true;
            if par_edge[u] != u32::MAX {
                let e = &graph.edges()[par_edge[u] as usize];
                pot[u] = pot[par_node[u] as usize] ^ e.observables;
            }
        }
        // Components unreachable from the boundary (rare) get a DFS gauge;
        // their defects can never certify as singles anyway.
        let mut stack: Vec<NodeId> = Vec::new();
        for root in 0..n {
            if seen[root] {
                continue;
            }
            seen[root] = true;
            stack.push(root);
            while let Some(u) = stack.pop() {
                for &ei in graph.incident(u) {
                    let e = &graph.edges()[ei as usize];
                    let v = graph.other_endpoint(ei as usize, u);
                    if !seen[v] {
                        seen[v] = true;
                        pot[v] = pot[u] ^ e.observables;
                        stack.push(v);
                    }
                }
            }
        }

        // --- Multi-source Dijkstra from frustrated-edge endpoints (not
        // relaxing through the boundary: cluster growth stops there).
        let mut frus = vec![f64::INFINITY; n];
        heap.clear();
        for e in graph.edges() {
            if pot[e.u] ^ pot[e.v] != e.observables {
                for node in [e.u, e.v] {
                    if frus[node] > 0.0 {
                        frus[node] = 0.0;
                        heap.push(HeapItem(0.0, node as u32));
                    }
                }
            }
        }
        while let Some(HeapItem(d, u)) = heap.pop() {
            let u = u as usize;
            if d > frus[u] || u == boundary {
                continue;
            }
            for &ei in graph.incident(u) {
                let e = &graph.edges()[ei as usize];
                let v = graph.other_endpoint(ei as usize, u);
                let nd = d + e.weight;
                if nd < frus[v] {
                    frus[v] = nd;
                    heap.push(HeapItem(nd, v as u32));
                }
            }
        }

        // --- Second gauge (wide tables only). The watershed where
        // drainage basins of opposite crossing parity meet is exactly
        // where π's frustrated edges concentrate — and at dense-regime
        // error rates a steady stream of defect pairs straddles it and
        // fails the flatness margin. A second potential rooted on a
        // shortest-path tree whose metric penalises observable-crossing
        // edges moves the wall: drain paths cross only when forced, so
        // frustration under π₂ hugs the crossing columns at the lattice
        // edge instead of the mid-bulk watershed. Certification then
        // accepts a unit flat under *either* gauge (each gauge's gradient
        // is the physical flip wherever that gauge is flat).
        let (pot2, frus2) = if widen {
            let penalty: f64 = graph
                .edges()
                .iter()
                .map(|e| e.weight)
                .filter(|w| w.is_finite())
                .sum::<f64>()
                + 1.0;
            let mut bnd2 = vec![f64::INFINITY; n];
            let mut par_node2 = vec![u32::MAX; n];
            let mut par_edge2 = vec![u32::MAX; n];
            let mut order2: Vec<u32> = Vec::with_capacity(n);
            heap.clear();
            bnd2[boundary] = 0.0;
            heap.push(HeapItem(0.0, boundary as u32));
            while let Some(HeapItem(d, u)) = heap.pop() {
                let u = u as usize;
                if d > bnd2[u] {
                    continue;
                }
                order2.push(u as u32);
                for &ei in graph.incident(u) {
                    let e = &graph.edges()[ei as usize];
                    let v = graph.other_endpoint(ei as usize, u);
                    let crossing = if e.observables != 0 { penalty } else { 0.0 };
                    let nd = d + e.weight + crossing;
                    if nd < bnd2[v] {
                        bnd2[v] = nd;
                        par_node2[v] = u as u32;
                        par_edge2[v] = ei;
                        heap.push(HeapItem(nd, v as u32));
                    }
                }
            }
            let mut pot2 = vec![0u64; n];
            let mut seen2 = vec![false; n];
            for &u in &order2 {
                let u = u as usize;
                seen2[u] = true;
                if par_edge2[u] != u32::MAX {
                    let e = &graph.edges()[par_edge2[u] as usize];
                    pot2[u] = pot2[par_node2[u] as usize] ^ e.observables;
                }
            }
            let mut stack: Vec<NodeId> = Vec::new();
            for root in 0..n {
                if seen2[root] {
                    continue;
                }
                seen2[root] = true;
                stack.push(root);
                while let Some(u) = stack.pop() {
                    for &ei in graph.incident(u) {
                        let e = &graph.edges()[ei as usize];
                        let v = graph.other_endpoint(ei as usize, u);
                        if !seen2[v] {
                            seen2[v] = true;
                            pot2[v] = pot2[u] ^ e.observables;
                            stack.push(v);
                        }
                    }
                }
            }
            // frus₂: real-weight distances to π₂-frustrated endpoints,
            // again not relaxing through the boundary.
            let mut frus2 = vec![f64::INFINITY; n];
            heap.clear();
            for e in graph.edges() {
                if pot2[e.u] ^ pot2[e.v] != e.observables {
                    for node in [e.u, e.v] {
                        if frus2[node] > 0.0 {
                            frus2[node] = 0.0;
                            heap.push(HeapItem(0.0, node as u32));
                        }
                    }
                }
            }
            while let Some(HeapItem(d, u)) = heap.pop() {
                let u = u as usize;
                if d > frus2[u] || u == boundary {
                    continue;
                }
                for &ei in graph.incident(u) {
                    let e = &graph.edges()[ei as usize];
                    let v = graph.other_endpoint(ei as usize, u);
                    let nd = d + e.weight;
                    if nd < frus2[v] {
                        frus2[v] = nd;
                        heap.push(HeapItem(nd, v as u32));
                    }
                }
            }
            (pot2, frus2)
        } else {
            (Vec::new(), Vec::new())
        };

        // --- Truncation radius: certification thresholds reach at most
        // W_x + W_y for two unit weights, so 2× the median edge weight
        // (with headroom) covers the typical single-mechanism units while
        // keeping the per-node balls to a couple of hops. Heavier units
        // simply fail the `threshold ≤ radius` guard and fall through.
        let mut weights: Vec<f64> = graph
            .edges()
            .iter()
            .map(|e| e.weight)
            .filter(|w| w.is_finite())
            .collect();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
        let median = weights.get(weights.len() / 2).copied().unwrap_or(0.0);

        // Heaviest edge a boundary-avoiding shortest path can use (the ball
        // Dijkstra below never expands the boundary node, so only edges
        // with two internal endpoints matter).
        let max_ball_edge = graph
            .edges()
            .iter()
            .filter(|e| e.u != boundary && e.v != boundary && e.weight.is_finite())
            .map(|e| e.weight)
            .fold(0.0f64, f64::max);
        let base = if widen {
            median.max(max_ball_edge.min(4.0 * median))
        } else {
            median
        };
        let radius = 2.0 * base * 1.01 + 1e-6;

        // --- Truncated Dijkstra from every node: exact boundary-avoiding
        // shortest distances to every node within `radius`. Absence of a
        // target from a ball proves its distance exceeds `radius`.
        let mut near_off = vec![0u32; n + 1];
        let mut near_node: Vec<u32> = Vec::new();
        let mut near_dist: Vec<f64> = Vec::new();
        let mut dist = vec![f64::INFINITY; n];
        let mut touched: Vec<u32> = Vec::new();
        for src in 0..n {
            if src != boundary {
                heap.clear();
                dist[src] = 0.0;
                touched.push(src as u32);
                heap.push(HeapItem(0.0, src as u32));
                while let Some(HeapItem(d, u)) = heap.pop() {
                    let u = u as usize;
                    if d > dist[u] || u == boundary {
                        continue; // stale label, or boundary (absorbing)
                    }
                    for &ei in graph.incident(u) {
                        let e = &graph.edges()[ei as usize];
                        let v = graph.other_endpoint(ei as usize, u);
                        let nd = d + e.weight;
                        if nd <= radius && nd < dist[v] {
                            if dist[v].is_infinite() {
                                touched.push(v as u32);
                            }
                            dist[v] = nd;
                            heap.push(HeapItem(nd, v as u32));
                        }
                    }
                }
                touched.sort_unstable();
                for &t in &touched {
                    let tu = t as usize;
                    if tu != src && tu != boundary {
                        near_node.push(t);
                        near_dist.push(dist[tu]);
                    }
                }
                for &t in &touched {
                    dist[t as usize] = f64::INFINITY;
                }
                touched.clear();
            }
            near_off[src + 1] = near_node.len() as u32;
        }

        Tables {
            graph: graph.clone(),
            radius,
            pot,
            bnd,
            frus,
            pot2,
            frus2,
            near_off,
            near_node,
            near_dist,
        }
    }

    /// Exact boundary-avoiding distance from `u` to `v`, or `None` when
    /// `v` lies outside `u`'s truncated ball (distance > [`Self::radius`]).
    #[inline]
    pub(crate) fn near(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let lo = self.near_off[u] as usize;
        let hi = self.near_off[u + 1] as usize;
        let slice = &self.near_node[lo..hi];
        slice
            .binary_search(&(v as u32))
            .ok()
            .map(|i| self.near_dist[lo + i])
    }

    /// All nodes within `u`'s truncated ball (ascending node id). Used by
    /// the cluster tier's flood decomposition: two defects belong to the
    /// same cluster iff one lies in the other's ball.
    #[inline]
    pub(crate) fn ball(&self, u: NodeId) -> &[u32] {
        let lo = self.near_off[u] as usize;
        let hi = self.near_off[u + 1] as usize;
        &self.near_node[lo..hi]
    }

    /// Gauge-aware boundary-drain mask for a single of unit weight `w`:
    /// the observable flip of draining `u` to the boundary, under whichever
    /// potential is frustration-free within radius `w` of `u` (the single's
    /// entire growth region). `None` when neither gauge is flat there.
    /// Wide tables only — with `frus2` absent, this is exactly the
    /// predecoder's single-gauge flatness check.
    #[inline]
    pub(crate) fn single_mask(&self, u: NodeId, w: f64) -> Option<u64> {
        let b = self.graph.boundary();
        if self.frus[u] > w + EPS {
            Some(self.pot[u] ^ self.pot[b])
        } else if !self.frus2.is_empty() && self.frus2[u] > w + EPS {
            Some(self.pot2[u] ^ self.pot2[b])
        } else {
            None
        }
    }

    /// Gauge-aware peel mask for an internal pair of unit weight `w`: both
    /// members' radius-`w` balls (the pair's growth region) must be
    /// frustration-free under a *common* gauge, whose gradient is then the
    /// flip of every walk the decoders can realise between them.
    #[inline]
    pub(crate) fn pair_mask(&self, u: NodeId, v: NodeId, w: f64) -> Option<u64> {
        if self.frus[u] > w + EPS && self.frus[v] > w + EPS {
            Some(self.pot[u] ^ self.pot[v])
        } else if !self.frus2.is_empty() && self.frus2[u] > w + EPS && self.frus2[v] > w + EPS {
            Some(self.pot2[u] ^ self.pot2[v])
        } else {
            None
        }
    }
}

/// Tier-1 predecoder over a [`MatchingGraph`]. See the module docs for the
/// firing condition and the exactness argument.
///
/// Cloning shares the precomputed tables (via `Arc`) and allocates only
/// fresh per-shot scratch, so per-worker instances are cheap.
#[derive(Clone, Debug)]
pub struct Predecoder {
    tables: Arc<Tables>,
    /// Per-shot defect flags; restored via the defect list after each call.
    is_defect: Vec<bool>,
}

impl Predecoder {
    /// Shots with more defects than this can never certify (see the module
    /// constant); callers may early-out on `SparseBatch::defect_count`
    /// before paying any predecode bookkeeping.
    pub const MAX_CERT_DEFECTS: usize = MAX_CERT_DEFECTS;

    /// Builds the certification tables for `graph`. This is the expensive
    /// part (a truncated Dijkstra per node); share the result across
    /// workers by cloning.
    pub fn new(graph: &MatchingGraph) -> Predecoder {
        let tables = Arc::new(Tables::build(graph));
        let n = tables.graph.num_nodes();
        Predecoder {
            tables,
            is_defect: vec![false; n],
        }
    }

    /// True when the certification tables were built against the current
    /// weight epoch of `graph`. Every table (potential π, boundary and
    /// frustration distances, near tables, truncation radius) is derived
    /// from edge weights, so a [`MatchingGraph::reweight`] makes this
    /// predecoder stale; rebuild with [`Predecoder::new`] on the reweighted
    /// graph.
    pub fn is_current_for(&self, graph: &MatchingGraph) -> bool {
        self.tables.graph.weight_epoch() == graph.weight_epoch()
    }

    /// The shared certification tables, for the cluster tier to reuse
    /// (one table build serves both tiers).
    pub(crate) fn tables(&self) -> &Arc<Tables> {
        &self.tables
    }

    /// Attempts to certify and locally decode a whole shot.
    ///
    /// Returns `Some(mask)` when every defect is provably part of an
    /// isolated direct-edge pair or an isolated boundary single, in which
    /// case `mask` is exactly the observable mask [`crate::UnionFindDecoder`]
    /// and [`crate::MwpmDecoder`] would return for `defects`. Returns
    /// `None` (certification declined) otherwise — never a wrong mask.
    ///
    /// `defects` must be sorted ascending and duplicate-free, as produced
    /// by [`caliqec_stab::SparseBatch::defects`].
    pub fn predecode(&mut self, defects: &[NodeId]) -> Option<u64> {
        debug_assert!(defects.windows(2).all(|w| w[0] < w[1]));
        if defects.is_empty() {
            return Some(0);
        }
        if defects.len() > MAX_CERT_DEFECTS {
            return None;
        }
        for &d in defects {
            self.is_defect[d] = true;
        }
        let result = self.certify(defects);
        for &d in defects {
            self.is_defect[d] = false;
        }
        result
    }

    /// The certification pass proper (scratch marked by the caller).
    fn certify(&self, defects: &[NodeId]) -> Option<u64> {
        let t = &*self.tables;
        let g = &t.graph;
        let boundary = g.boundary();
        let k = defects.len();
        let mut mask = 0u64;
        // Per-defect unit weight and partner index (usize::MAX = single).
        let mut unit_w = [0.0f64; MAX_CERT_DEFECTS];
        let mut partner = [usize::MAX; MAX_CERT_DEFECTS];

        // Pass 1: O(degree) CSR neighbourhood scan per defect — find the
        // unique defect neighbour, if any. Adjacency is symmetric, so the
        // induced pairing is automatically mutual: if `u`'s only defect
        // neighbour is `v`, then `v` sees `u` too, and any *additional*
        // neighbour of `v` declines the whole shot right here.
        for (i, &u) in defects.iter().enumerate() {
            let mut nbr = usize::MAX;
            for &ei in g.incident(u) {
                let v = g.other_endpoint(ei as usize, u);
                if v == u || v == boundary || !self.is_defect[v] {
                    continue;
                }
                if nbr != usize::MAX && nbr != v {
                    return None; // two distinct defect neighbours
                }
                nbr = v;
            }
            if nbr != usize::MAX {
                let j = defects.binary_search(&nbr).expect("neighbour is a defect");
                partner[i] = j;
            }
        }

        // Pass 2: per-unit weights, margins, and masks.
        for (i, &u) in defects.iter().enumerate() {
            let j = partner[i];
            if j == usize::MAX {
                // Single unit: neutralises against the boundary at its
                // exact boundary distance; the ball up to there must be
                // frustration-free.
                let w = t.bnd[u];
                if !w.is_finite() || w <= EPS {
                    return None;
                }
                if t.frus[u] <= w + EPS {
                    return None;
                }
                unit_w[i] = w;
                mask ^= t.pot[u] ^ t.pot[boundary];
            } else {
                debug_assert_eq!(partner[j], i, "adjacency pairing is mutual");
                if i < j {
                    // Adjacent pair, processed once from the smaller index.
                    // The matcher weighs the internal connection `w` against
                    // draining both defects to the boundary; whichever side
                    // wins strictly, the mask is the same gradient
                    // `π(u) ^ π(v)` (the boundary potential cancels), so we
                    // certify either structure and decline only exact ties.
                    let v = defects[j];
                    let w = match t.near(u, v) {
                        Some(w) => w,
                        None => {
                            return None;
                        }
                    };
                    if !w.is_finite() || w <= EPS {
                        return None;
                    }
                    let bsum = t.bnd[u] + t.bnd[v];
                    if w + EPS < bsum {
                        // Internal pair: clusters merge (or one drains to a
                        // nearer boundary and the other joins it — either
                        // way the grown region stays in the radius-`w`
                        // balls, and the matcher strictly prefers the pair).
                        for x in [u, v] {
                            if t.frus[x] <= w + EPS {
                                return None;
                            }
                        }
                        unit_w[i] = w;
                        unit_w[j] = w;
                    } else if bsum + EPS < w {
                        // Both drain to the boundary: two singles whose
                        // mutual cross margin is exactly this inequality
                        // (pass 3 skips same-partner pairs, so it is
                        // discharged here).
                        for (x, xi) in [(u, i), (v, j)] {
                            let wx = t.bnd[x];
                            if !wx.is_finite() || wx <= EPS {
                                return None;
                            }
                            if t.frus[x] <= wx + EPS {
                                return None;
                            }
                            unit_w[xi] = wx;
                        }
                    } else {
                        return None; // exact tie: structures ambiguous
                    }
                    mask ^= t.pot[u] ^ t.pot[v];
                }
            }
        }

        // Pass 3: cross margins — every pair of defects in different units
        // must be farther apart than the sum of their unit weights, so
        // neither the matcher nor cluster growth can couple them.
        for i in 0..k {
            for j in (i + 1)..k {
                if partner[i] == j {
                    continue; // same unit
                }
                let threshold = unit_w[i] + unit_w[j] + EPS;
                if threshold > t.radius {
                    return None; // truncated ball cannot certify the gap
                }
                match t.near(defects[i], defects[j]) {
                    Some(d) if d <= threshold => {
                        return None;
                    }
                    // In-ball with margin, or outside the ball entirely
                    // (distance > radius ≥ threshold): certified.
                    _ => {}
                }
            }
        }
        Some(mask)
    }
}

/// Gating policy for the dense-regime cluster tier.
///
/// The tier's flood decomposition has a fixed per-shot cost that only pays
/// off when shots are dense enough for certified clusters to peel real
/// decoder work away (at d=11, p=1e-3 the decomposition costs more wall
/// time than the full-decoder calls it saves; at d≥15 it wins). `Auto`
/// makes the call per 64-shot batch from the batch's mean defect count —
/// a deterministic function of the sampled syndrome stream, so gating
/// never perturbs the engine's thread-count-independence, and since the
/// tier is exact (certified clusters peel provably-identical corrections)
/// the gate never changes a failure count either.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClusterGate {
    /// No cluster tier: dense shots decode monolithically.
    #[default]
    Off,
    /// Always decompose dense shots, regardless of density.
    On,
    /// Decompose only batches whose mean defect count clears
    /// [`CLUSTER_GATE_MIN_MEAN_DEFECTS`].
    Auto,
}

/// Minimum mean defects per shot (over one 64-shot batch) for the `Auto`
/// cluster gate to run the decomposition. Calibrated from BENCH_decode.json:
/// d=11, p=1e-3 averages ≈20 defects/shot and loses wall time to the tier,
/// while d=15 (≈40) and d=21 (≈95) win.
pub const CLUSTER_GATE_MIN_MEAN_DEFECTS: f64 = 28.0;

/// [`DecoderFactory`] adapter enabling the two-tier fast path: workers get
/// a shared-table [`Predecoder`] in front of the wrapped factory's decoder.
///
/// ```ignore
/// let tiered = Tiered::new(&graph, || UnionFindDecoder::new(graph.clone()));
/// engine.estimate(&compiled, &tiered, opts, seed); // fast path on
/// ```
///
/// [`Tiered::without_predecode`] is the escape hatch (mirroring
/// [`crate::MwpmDecoder::without_cache`]): the same adapter shape with
/// certification disabled, for A/B comparison and cross-validation.
#[derive(Clone, Debug)]
pub struct Tiered<F> {
    factory: F,
    predecoder: Option<Predecoder>,
    /// The decoders' matching graph, kept for engine-side validation and
    /// as the rung-2 degradation fallback.
    fallback: Option<MatchingGraph>,
    /// Opt-in dense-regime cluster tier (see [`crate::ClusterTier`]):
    /// shots too dense for the predecoder are flood-decomposed and decoded
    /// per cluster instead of monolithically, subject to the gate.
    cluster: ClusterGate,
    /// Mean defects per shot at which [`ClusterGate::Auto`] fires,
    /// defaulting to [`CLUSTER_GATE_MIN_MEAN_DEFECTS`].
    gate_threshold: f64,
}

impl<F: DecoderFactory> Tiered<F> {
    /// Wraps `factory` with a predecoder built for `graph` (which must be
    /// the graph the factory's decoders use). The graph is retained as the
    /// engine's rung-2 degradation fallback.
    pub fn new(graph: &MatchingGraph, factory: F) -> Tiered<F> {
        Tiered {
            factory,
            predecoder: Some(Predecoder::new(graph)),
            fallback: Some(graph.clone()),
            cluster: ClusterGate::Off,
            gate_threshold: CLUSTER_GATE_MIN_MEAN_DEFECTS,
        }
    }

    /// Validating form of [`Tiered::new`]: rejects a malformed `graph`
    /// with a typed error *before* the predecoder's Dijkstra table build
    /// ever walks it (NaN weights would poison the distance tables).
    pub fn try_new(
        graph: &MatchingGraph,
        factory: F,
    ) -> Result<Tiered<F>, crate::error::ValidationError> {
        graph.validate()?;
        Ok(Tiered::new(graph, factory))
    }

    /// Wraps `factory` with the fast path disabled: every nonempty shot
    /// goes to the full decoder. No graph is retained; chain
    /// [`Tiered::with_fallback_graph`] to keep rung 2 of the engine's
    /// degradation ladder available.
    pub fn without_predecode(factory: F) -> Tiered<F> {
        Tiered {
            factory,
            predecoder: None,
            fallback: None,
            cluster: ClusterGate::Off,
            gate_threshold: CLUSTER_GATE_MIN_MEAN_DEFECTS,
        }
    }

    /// Retains `graph` for engine-side validation and the rung-2
    /// degradation fallback without enabling the predecoder.
    pub fn with_fallback_graph(mut self, graph: &MatchingGraph) -> Tiered<F> {
        self.fallback = Some(graph.clone());
        self
    }

    /// Enables the dense-regime cluster tier unconditionally (rung 0
    /// only): shots with more defects than [`Predecoder::MAX_CERT_DEFECTS`]
    /// are flood-decomposed into independent clusters, certified clusters
    /// are peeled locally, and only the uncertified remainder reaches the
    /// full decoder. The tier shares the predecoder's certification
    /// tables, so this is a no-op on a [`Tiered::without_predecode`]
    /// adapter. Equivalent to `with_cluster_gate(ClusterGate::On)`.
    pub fn with_cluster(self) -> Tiered<F> {
        self.with_cluster_gate(ClusterGate::On)
    }

    /// Sets the cluster tier's gating policy (see [`ClusterGate`]).
    /// `Auto` arms the tier but lets the engine skip the decomposition for
    /// batches below the density threshold, journaling the decision.
    pub fn with_cluster_gate(mut self, gate: ClusterGate) -> Tiered<F> {
        self.cluster = gate;
        self
    }

    /// Overrides the mean-defects-per-shot threshold at which the `Auto`
    /// gate fires (default [`CLUSTER_GATE_MIN_MEAN_DEFECTS`]). Non-finite
    /// or negative thresholds are clamped to 0 (gate always fires).
    pub fn with_cluster_gate_threshold(mut self, threshold: f64) -> Tiered<F> {
        self.gate_threshold = if threshold.is_finite() && threshold > 0.0 {
            threshold
        } else {
            0.0
        };
        self
    }
}

impl<F: DecoderFactory> DecoderFactory for Tiered<F> {
    type Decoder = F::Decoder;

    fn build(&self) -> F::Decoder {
        self.factory.build()
    }

    fn predecoder(&self) -> Option<Predecoder> {
        self.predecoder.clone()
    }

    fn cluster_tier(&self) -> Option<crate::cluster::ClusterTier> {
        if self.cluster != ClusterGate::Off {
            self.predecoder
                .as_ref()
                .map(crate::cluster::ClusterTier::from_predecoder)
        } else {
            None
        }
    }

    fn cluster_gate(&self) -> ClusterGate {
        if self.predecoder.is_some() {
            self.cluster
        } else {
            ClusterGate::Off
        }
    }

    fn cluster_gate_threshold(&self) -> f64 {
        self.gate_threshold
    }

    fn validate(&self) -> Result<(), crate::error::ValidationError> {
        if let Some(graph) = &self.fallback {
            graph.validate()?;
        }
        self.factory.validate()
    }

    fn fallback_graph(&self) -> Option<&MatchingGraph> {
        self.fallback
            .as_ref()
            .or_else(|| self.factory.fallback_graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{graph_for_circuit, Decoder};
    use crate::mwpm::MwpmDecoder;
    use crate::unionfind::UnionFindDecoder;
    use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
    use caliqec_stab::{FrameSampler, SparseBatch, BATCH};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn memory_graph(d: usize, p: f64) -> MatchingGraph {
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p),
            d,
            MemoryBasis::Z,
        );
        graph_for_circuit(&mem.circuit)
    }

    #[test]
    fn empty_shot_certifies_to_identity() {
        let mut pre = Predecoder::new(&memory_graph(3, 1e-3));
        assert_eq!(pre.predecode(&[]), Some(0));
    }

    #[test]
    fn dense_shots_decline_fast() {
        let g = memory_graph(3, 1e-3);
        let mut pre = Predecoder::new(&g);
        let defects: Vec<usize> = (0..MAX_CERT_DEFECTS + 1).collect();
        assert_eq!(pre.predecode(&defects), None);
    }

    #[test]
    fn certified_shots_match_both_decoders() {
        // Realistic sparse syndromes: every certified shot must agree with
        // union-find and exact matching; a healthy fraction must certify.
        for d in [3usize, 5] {
            let mem = memory_circuit(
                &rotated_patch(d, d),
                &NoiseModel::uniform(2e-3),
                d,
                MemoryBasis::Z,
            );
            let graph = graph_for_circuit(&mem.circuit);
            let mut pre = Predecoder::new(&graph);
            let mut uf = UnionFindDecoder::new(graph.clone());
            let mut mwpm = MwpmDecoder::new(graph.clone());
            let mut sampler = FrameSampler::new(&mem.circuit);
            let mut rng = StdRng::seed_from_u64(17);
            let mut sparse = SparseBatch::new();
            let mut certified = 0usize;
            let mut nonempty = 0usize;
            for _ in 0..40 {
                let ev = sampler.sample_batch(&mut rng);
                sparse.extract(&ev);
                for s in 0..BATCH {
                    let defects = sparse.defects(s);
                    if defects.is_empty() {
                        continue;
                    }
                    nonempty += 1;
                    if let Some(mask) = pre.predecode(defects) {
                        certified += 1;
                        assert_eq!(mask, uf.decode(defects), "UF d={d} {defects:?}");
                        assert_eq!(mask, mwpm.decode(defects), "MWPM d={d} {defects:?}");
                    }
                }
            }
            assert!(
                certified * 4 >= nonempty,
                "d={d}: only {certified}/{nonempty} shots certified"
            );
        }
    }

    #[test]
    fn scratch_is_restored_between_calls() {
        let g = memory_graph(3, 2e-3);
        let mut pre = Predecoder::new(&g);
        let a = pre.predecode(&[0, 1]);
        // Whatever happened, the defect flags must be clean again.
        assert!(pre.is_defect.iter().all(|&b| !b));
        assert_eq!(pre.predecode(&[0, 1]), a);
    }

    #[test]
    fn tables_are_shared_across_clones() {
        let g = memory_graph(3, 1e-3);
        let pre = Predecoder::new(&g);
        let clone = pre.clone();
        assert!(Arc::ptr_eq(&pre.tables, &clone.tables));
    }

    #[test]
    fn without_predecode_provides_no_predecoder() {
        let g = memory_graph(3, 1e-3);
        let tiered = Tiered::new(&g, {
            let g = g.clone();
            move || UnionFindDecoder::new(g.clone())
        });
        assert!(tiered.predecoder().is_some());
        let plain = Tiered::without_predecode({
            let g = g.clone();
            move || UnionFindDecoder::new(g.clone())
        });
        assert!(plain.predecoder().is_none());
    }
}
