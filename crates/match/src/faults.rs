//! Deterministic fault injection for the hardened LER engine.
//!
//! A [`FaultPlan`] names chunk indices at which the engine's worker loop
//! injects a fault — a decoder panic, a timeout-like stall, a corrupted
//! defect list, or a graph with poisoned edge weights — before the chunk's
//! real work runs. Injection only fires on the *first* attempt of a chunk
//! (rung 0 of the degradation ladder), so every injected fault exercises
//! exactly one quarantine + deterministic retry.
//!
//! The plan is plain data carried by [`LerEngine`](crate::LerEngine): when
//! no plan is armed the hot path pays a single `Option` check per chunk and
//! nothing else. Plans come from the builder methods here or from the
//! `CALIQEC_FAULTS` environment variable (see [`FaultPlan::from_env`]),
//! which the `caliqec` CLI and the `chaos_smoke` bench binary honour —
//! library constructors never read the environment, so tests cannot race
//! on it.

use crate::graph::{Edge, MatchingGraph};
use std::fmt;
use std::time::Duration;

/// The kinds of fault the harness can inject into a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the chunk's decode loop (simulates a decoder bug).
    Panic,
    /// Sleep past the stall deadline (simulates a hung decoder); the
    /// attempt is then treated as timed out.
    Stall,
    /// Feed the decoder a defect list with an out-of-range node id
    /// (simulates corrupted syndrome extraction).
    CorruptDefects,
    /// Present the worker with a graph whose edge weights are NaN/negative
    /// (simulates corrupted calibration data reaching the decoder).
    BadWeights,
    /// Panic inside the dense-regime cluster tier before the first decoder
    /// call (simulates a flood-decomposition bug). The retry rung carries
    /// no cluster tier, so recovery decodes the same chunk monolithically.
    ClusterPanic,
    /// Streaming only: a tenant stalls between rounds (simulates a slow
    /// control-system feed). The chunk index names the tenant; the stall
    /// delays that tenant's next round by the plan's stall sleep.
    SlowTenant,
    /// Streaming only: a window's admission timestamp is backdated past the
    /// decode deadline (simulates delayed round arrival), forcing the shed
    /// ladder to fire deterministically. The chunk index names the window.
    DelayedArrival,
    /// Streaming only: a burst of windows arrives at once for one tenant
    /// (simulates a bursty feed catching up after a gap). The chunk index
    /// names the tenant.
    BurstArrival,
    /// Streaming only: a worker wedges (sleeps past the wedge deadline)
    /// while holding a window, so the watchdog must detect it and the
    /// window must be retried with the same seed. The chunk index names
    /// the window.
    WorkerWedge,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::CorruptDefects => "corrupt",
            FaultKind::BadWeights => "badweights",
            FaultKind::ClusterPanic => "cluster",
            FaultKind::SlowTenant => "slowtenant",
            FaultKind::DelayedArrival => "delay",
            FaultKind::BurstArrival => "burst",
            FaultKind::WorkerWedge => "wedge",
        };
        f.write_str(name)
    }
}

impl FaultKind {
    /// True for the streaming-service injections, which the batch engine's
    /// worker loops must ignore (they only make sense inside
    /// [`StreamingDecoder`](crate::StreamingDecoder)).
    pub fn is_streaming(self) -> bool {
        matches!(
            self,
            FaultKind::SlowTenant
                | FaultKind::DelayedArrival
                | FaultKind::BurstArrival
                | FaultKind::WorkerWedge
        )
    }
}

/// One scheduled injection: fire `kind` when chunk `chunk` first runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Chunk index the fault fires at.
    pub chunk: usize,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault injections, plus the stall timing knobs.
///
/// # Examples
///
/// ```
/// use caliqec_match::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new().panic_at(2).corrupt_defects_at(0);
/// assert_eq!(plan.injection(2), Some(FaultKind::Panic));
/// assert_eq!(plan.injection(1), None);
///
/// // The same schedule, parsed from the CALIQEC_FAULTS syntax:
/// let parsed = FaultPlan::parse("panic@2,corrupt@0").unwrap();
/// assert_eq!(parsed.injection(0), Some(FaultKind::CorruptDefects));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    injections: Vec<Injection>,
    /// How long an injected stall sleeps.
    stall_sleep: Option<Duration>,
    /// Deadline above which a *stall-injected* attempt counts as timed out.
    stall_deadline: Option<Duration>,
}

/// Default sleep for an injected stall.
const DEFAULT_STALL_SLEEP: Duration = Duration::from_millis(20);
/// Default deadline an injected stall must overrun.
const DEFAULT_STALL_DEADLINE: Duration = Duration::from_millis(5);

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a decoder panic at `chunk`.
    pub fn panic_at(mut self, chunk: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk,
            kind: FaultKind::Panic,
        });
        self
    }

    /// Schedules a timeout-like stall at `chunk`.
    pub fn stall_at(mut self, chunk: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk,
            kind: FaultKind::Stall,
        });
        self
    }

    /// Schedules a corrupted defect list at `chunk`.
    pub fn corrupt_defects_at(mut self, chunk: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk,
            kind: FaultKind::CorruptDefects,
        });
        self
    }

    /// Schedules NaN/negative edge weights at `chunk`.
    pub fn bad_weights_at(mut self, chunk: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk,
            kind: FaultKind::BadWeights,
        });
        self
    }

    /// Schedules a cluster-tier panic at `chunk`.
    pub fn cluster_panic_at(mut self, chunk: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk,
            kind: FaultKind::ClusterPanic,
        });
        self
    }

    /// Schedules a slow-tenant stall for streaming tenant `tenant`.
    pub fn slow_tenant_at(mut self, tenant: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk: tenant,
            kind: FaultKind::SlowTenant,
        });
        self
    }

    /// Schedules a delayed-arrival injection for streaming window `window`.
    pub fn delayed_arrival_at(mut self, window: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk: window,
            kind: FaultKind::DelayedArrival,
        });
        self
    }

    /// Schedules a burst-arrival injection for streaming tenant `tenant`.
    pub fn burst_arrival_at(mut self, tenant: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk: tenant,
            kind: FaultKind::BurstArrival,
        });
        self
    }

    /// Schedules a worker wedge while decoding streaming window `window`.
    pub fn worker_wedge_at(mut self, window: usize) -> FaultPlan {
        self.injections.push(Injection {
            chunk: window,
            kind: FaultKind::WorkerWedge,
        });
        self
    }

    /// Overrides the stall sleep / deadline pair (sleep must exceed the
    /// deadline for the injection to register as a timeout).
    pub fn with_stall_timing(mut self, sleep: Duration, deadline: Duration) -> FaultPlan {
        self.stall_sleep = Some(sleep);
        self.stall_deadline = Some(deadline);
        self
    }

    /// The fault (if any) scheduled for `chunk`. First match wins.
    pub fn injection(&self, chunk: usize) -> Option<FaultKind> {
        self.injections
            .iter()
            .find(|inj| inj.chunk == chunk)
            .map(|inj| inj.kind)
    }

    /// True when the plan schedules no injections at all.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The scheduled injections.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// How long an injected stall sleeps.
    pub fn stall_sleep(&self) -> Duration {
        self.stall_sleep.unwrap_or(DEFAULT_STALL_SLEEP)
    }

    /// The deadline an injected stall must overrun to count as timed out.
    pub fn stall_deadline(&self) -> Duration {
        self.stall_deadline.unwrap_or(DEFAULT_STALL_DEADLINE)
    }

    /// Parses the `CALIQEC_FAULTS` syntax: a comma-separated list of
    /// `kind@chunk` entries, where `kind` is one of `panic`, `stall`,
    /// `corrupt`, `badweights`, `cluster`, or a streaming kind
    /// `slowtenant`, `delay`, `burst`, `wedge` — e.g. `"panic@2,corrupt@0"`.
    /// For streaming kinds the index names a tenant (`slowtenant`, `burst`)
    /// or a window (`delay`, `wedge`) rather than a chunk. Empty entries
    /// are skipped, so a trailing comma is harmless.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, chunk) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry '{entry}' is not kind@chunk"))?;
            let chunk: usize = chunk
                .trim()
                .parse()
                .map_err(|_| format!("fault entry '{entry}' has a non-numeric chunk index"))?;
            let kind = match kind.trim() {
                "panic" => FaultKind::Panic,
                "stall" => FaultKind::Stall,
                "corrupt" => FaultKind::CorruptDefects,
                "badweights" => FaultKind::BadWeights,
                "cluster" => FaultKind::ClusterPanic,
                "slowtenant" => FaultKind::SlowTenant,
                "delay" => FaultKind::DelayedArrival,
                "burst" => FaultKind::BurstArrival,
                "wedge" => FaultKind::WorkerWedge,
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' (expected \
                         panic|stall|corrupt|badweights|cluster|\
                         slowtenant|delay|burst|wedge)"
                    ))
                }
            };
            plan.injections.push(Injection { chunk, kind });
        }
        Ok(plan)
    }

    /// Reads the plan from the `CALIQEC_FAULTS` environment variable.
    /// Returns `None` when the variable is unset or empty; a malformed
    /// value is an error so typos do not silently disable chaos runs.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("CALIQEC_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => {
                let plan = FaultPlan::parse(&spec)?;
                Ok(if plan.is_empty() { None } else { Some(plan) })
            }
            _ => Ok(None),
        }
    }
}

/// Builds the weight-poisoned graph a [`FaultKind::BadWeights`] injection
/// presents to validation: a copy of `base` whose first edge weight is NaN
/// and whose second (if any) is negative. With no base graph (or an
/// edgeless one) a minimal one-detector graph with a NaN boundary edge is
/// used instead, so the injection always produces a graph that
/// [`MatchingGraph::validate`] rejects.
pub fn poison_weights(base: Option<&MatchingGraph>) -> MatchingGraph {
    match base {
        Some(g) if !g.edges().is_empty() => {
            let mut edges = g.edges().to_vec();
            edges[0].weight = f64::NAN;
            if edges.len() > 1 {
                edges[1].weight = -1.0;
            }
            MatchingGraph::from_edges(g.num_detectors(), g.num_observables(), edges)
        }
        _ => MatchingGraph::from_edges(
            1,
            1,
            vec![Edge {
                u: 0,
                v: 1,
                probability: 0.01,
                weight: f64::NAN,
                observables: 0,
            }],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_graphs_fail_validation() {
        assert!(poison_weights(None).validate().is_err());
        let base = MatchingGraph::from_edges(
            2,
            1,
            vec![
                Edge {
                    u: 0,
                    v: 2,
                    probability: 0.01,
                    weight: 2.0,
                    observables: 1,
                },
                Edge {
                    u: 1,
                    v: 2,
                    probability: 0.01,
                    weight: 2.0,
                    observables: 0,
                },
            ],
        );
        assert!(base.validate().is_ok());
        assert!(poison_weights(Some(&base)).validate().is_err());
    }

    #[test]
    fn builder_schedules_injections() {
        let plan = FaultPlan::new()
            .panic_at(1)
            .stall_at(2)
            .corrupt_defects_at(3)
            .bad_weights_at(4);
        assert_eq!(plan.injection(1), Some(FaultKind::Panic));
        assert_eq!(plan.injection(2), Some(FaultKind::Stall));
        assert_eq!(plan.injection(3), Some(FaultKind::CorruptDefects));
        assert_eq!(plan.injection(4), Some(FaultKind::BadWeights));
        assert_eq!(plan.injection(0), None);
        assert!(!plan.is_empty());
        assert_eq!(plan.injections().len(), 4);
    }

    #[test]
    fn parse_round_trips_builder() {
        let parsed =
            FaultPlan::parse("panic@1, stall@2 ,corrupt@3,badweights@4,cluster@5,").unwrap();
        let built = FaultPlan::new()
            .panic_at(1)
            .stall_at(2)
            .corrupt_defects_at(3)
            .bad_weights_at(4)
            .cluster_panic_at(5);
        assert_eq!(parsed, built);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic@x").is_err());
        assert!(FaultPlan::parse("meltdown@0").is_err());
    }

    #[test]
    fn stall_timing_defaults_and_overrides() {
        let plan = FaultPlan::new();
        assert!(plan.stall_sleep() > plan.stall_deadline());
        let plan = plan.with_stall_timing(Duration::from_millis(50), Duration::from_millis(10));
        assert_eq!(plan.stall_sleep(), Duration::from_millis(50));
        assert_eq!(plan.stall_deadline(), Duration::from_millis(10));
    }

    #[test]
    fn kinds_display_as_spec_names() {
        assert_eq!(FaultKind::Panic.to_string(), "panic");
        assert_eq!(FaultKind::BadWeights.to_string(), "badweights");
        assert_eq!(FaultKind::ClusterPanic.to_string(), "cluster");
        assert_eq!(FaultKind::SlowTenant.to_string(), "slowtenant");
        assert_eq!(FaultKind::DelayedArrival.to_string(), "delay");
        assert_eq!(FaultKind::BurstArrival.to_string(), "burst");
        assert_eq!(FaultKind::WorkerWedge.to_string(), "wedge");
    }

    #[test]
    fn streaming_kinds_parse_and_classify() {
        let parsed = FaultPlan::parse("slowtenant@0,delay@1,burst@2,wedge@3").unwrap();
        let built = FaultPlan::new()
            .slow_tenant_at(0)
            .delayed_arrival_at(1)
            .burst_arrival_at(2)
            .worker_wedge_at(3);
        assert_eq!(parsed, built);
        for inj in parsed.injections() {
            assert!(inj.kind.is_streaming());
        }
        for kind in [
            FaultKind::Panic,
            FaultKind::Stall,
            FaultKind::CorruptDefects,
            FaultKind::BadWeights,
            FaultKind::ClusterPanic,
        ] {
            assert!(!kind.is_streaming());
        }
    }
}
