//! Weighted union-find decoder (Delfosse–Nickerson style).
//!
//! Clusters grow outward from syndrome defects along the weighted matching
//! graph; odd clusters grow until they merge with another cluster or reach the
//! boundary, after which a peeling pass extracts a correction. This is the
//! primary decoder for all Monte-Carlo experiments (the paper uses MWPM via
//! PyMatching; union-find achieves a threshold within ~10 % of it and runs in
//! near-linear time, matching reference [15] of the paper).

use crate::decode::Decoder;
use crate::graph::{MatchingGraph, NodeId};

/// Union-find decoder over a matching graph.
///
/// The decode hot path is allocation-free in the steady state: *all*
/// working storage — cluster state, per-iteration growth rates, and the
/// peeling forest (adjacency restricted to grown edges, visit marks, BFS
/// order) — lives in scratch fields sized once at construction and
/// restored after every call via dirty lists, so the per-call cost scales
/// with the syndrome (defects touched, edges grown), never with the graph.
/// See `DESIGN.md` § "Decode hot path" for the exact invariants each dirty
/// list must restore.
///
/// # Examples
///
/// ```
/// use caliqec_match::{Decoder, MatchingGraph, UnionFindDecoder};
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
/// let graph = MatchingGraph::from_dem(&extract_dem(&c));
/// let mut dec = UnionFindDecoder::new(graph);
/// assert_eq!(dec.decode(&[0]), 1); // the only explanation flips observable 0
/// assert_eq!(dec.decode(&[]), 0);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    graph: MatchingGraph,
    // Cluster scratch. Kept clean between decode calls by undoing only the
    // entries each call touched (`dirty_nodes` / `dirty_edges`), so the
    // per-call cost scales with the syndrome, not with the graph.
    parent: Vec<NodeId>,
    parity: Vec<bool>,
    has_boundary: Vec<bool>,
    members: Vec<Vec<NodeId>>,
    growth: Vec<f64>,
    defect: Vec<bool>,
    dirty_nodes: Vec<NodeId>,
    dirty_edges: Vec<usize>,
    // Growth-phase scratch, cleared within each decode (capacity kept):
    // active cluster roots, per-edge growth rates for one growth step, and
    // the fully-grown edge set handed to peeling.
    roots: Vec<NodeId>,
    rate: Vec<f64>,
    rate_edges: Vec<usize>,
    grown: Vec<usize>,
    // Peel scratch, restricted to grown-edge endpoints and restored after
    // each call: `peel_adj[n]` holds the grown edges incident to `n`
    // (cleared via the grown list), `peel_visited` marks BFS-reached nodes
    // (cleared via `peel_order`), `peel_order` is the BFS forest in
    // discovery order with each node's parent edge.
    peel_adj: Vec<Vec<usize>>,
    peel_visited: Vec<bool>,
    peel_order: Vec<(NodeId, Option<usize>)>,
}

impl UnionFindDecoder {
    /// Creates a decoder owning its matching graph.
    pub fn new(graph: MatchingGraph) -> UnionFindDecoder {
        let n = graph.num_nodes();
        let e = graph.edges().len();
        let boundary = graph.boundary();
        let mut has_boundary = vec![false; n];
        has_boundary[boundary] = true;
        UnionFindDecoder {
            graph,
            parent: (0..n).collect(),
            parity: vec![false; n],
            has_boundary,
            members: (0..n).map(|i| vec![i]).collect(),
            growth: vec![0.0; e],
            defect: vec![false; n],
            dirty_nodes: Vec::new(),
            dirty_edges: Vec::new(),
            roots: Vec::new(),
            rate: vec![0.0; e],
            rate_edges: Vec::new(),
            grown: Vec::new(),
            peel_adj: vec![Vec::new(); n],
            peel_visited: vec![false; n],
            peel_order: Vec::new(),
        }
    }

    /// The underlying matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    fn find(&mut self, mut a: NodeId) -> NodeId {
        while self.parent[a] != a {
            self.parent[a] = self.parent[self.parent[a]];
            a = self.parent[a];
        }
        a
    }

    fn union(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        self.dirty_nodes.push(ra);
        self.dirty_nodes.push(rb);
        // Small-to-large member merging.
        let (big, small) = if self.members[ra].len() >= self.members[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        // Drain by pop/push so both member buffers keep their capacity
        // (a take + extend would drop the small side's allocation).
        while let Some(m) = self.members[small].pop() {
            self.members[big].push(m);
        }
        let p = self.parity[small];
        self.parity[big] ^= p;
        let hb = self.has_boundary[small];
        self.has_boundary[big] |= hb;
        big
    }

    /// Undoes everything the last decode touched, restoring the pristine
    /// scratch state in time proportional to the work done.
    fn cleanup(&mut self) {
        let boundary = self.graph.boundary();
        for i in 0..self.dirty_nodes.len() {
            let n = self.dirty_nodes[i];
            self.parent[n] = n;
            self.parity[n] = false;
            self.has_boundary[n] = n == boundary;
            self.members[n].clear();
            self.members[n].push(n);
            self.defect[n] = false;
        }
        self.dirty_nodes.clear();
        for i in 0..self.dirty_edges.len() {
            self.growth[self.dirty_edges[i]] = 0.0;
        }
        self.dirty_edges.clear();
    }

    /// Grows clusters until every one is neutral, leaving the set of fully
    /// grown edges in `self.grown` (sorted ascending).
    fn grow_clusters(&mut self, defects: &[NodeId]) {
        for &d in defects {
            self.defect[d] = true;
            self.parity[d] = true;
            self.dirty_nodes.push(d);
        }
        loop {
            // Collect the roots of active (odd, boundary-free) clusters,
            // deduplicated (defects in one cluster share a root).
            self.roots.clear();
            for &d in defects {
                let r = self.find(d);
                if self.parity[r] && !self.has_boundary[r] && !self.roots.contains(&r) {
                    self.roots.push(r);
                }
            }
            if self.roots.is_empty() {
                break;
            }
            // Frontier edges of each active cluster, with growth rate 1 or
            // 2 accumulated in the per-edge `rate` scratch (`rate_edges`
            // lists the touched entries for O(frontier) reset). An edge
            // interior to one cluster appears twice (once per endpoint);
            // that is fine — it just completes sooner and the union below
            // is a no-op.
            {
                let UnionFindDecoder {
                    graph,
                    members,
                    growth,
                    roots,
                    rate,
                    rate_edges,
                    ..
                } = self;
                for &r in roots.iter() {
                    for &node in &members[r] {
                        for &ei in graph.incident(node) {
                            let ei = ei as usize;
                            if growth[ei] >= graph.edges()[ei].weight {
                                continue;
                            }
                            if rate[ei] == 0.0 {
                                rate_edges.push(ei);
                            }
                            rate[ei] += 1.0;
                        }
                    }
                }
            }
            let mut delta = f64::INFINITY;
            for &ei in &self.rate_edges {
                let slack = self.graph.edges()[ei].weight - self.growth[ei];
                delta = delta.min(slack / self.rate[ei]);
            }
            if !delta.is_finite() {
                // No growable edges left: disconnected defect; give up on it
                // by declaring its cluster boundary-connected.
                for i in 0..self.roots.len() {
                    let r = self.roots[i];
                    let rr = self.find(r);
                    self.has_boundary[rr] = true;
                    self.dirty_nodes.push(rr);
                }
                break;
            }
            for i in 0..self.rate_edges.len() {
                let ei = self.rate_edges[i];
                let rt = self.rate[ei];
                self.rate[ei] = 0.0;
                if self.growth[ei] == 0.0 {
                    self.dirty_edges.push(ei);
                }
                self.growth[ei] += delta * rt;
                let (u, v, w) = {
                    let e = &self.graph.edges()[ei];
                    (e.u, e.v, e.weight)
                };
                if self.growth[ei] >= w - 1e-12 {
                    self.growth[ei] = w;
                    self.dirty_nodes.push(u);
                    self.dirty_nodes.push(v);
                    self.union(u, v);
                }
            }
            self.rate_edges.clear();
        }
        // Sorted for determinism: the peeling forest depends on adjacency
        // order, and an unordered grown set would let cluster cycles (e.g.
        // boundary-to-boundary paths) resolve either way.
        let UnionFindDecoder {
            graph,
            growth,
            dirty_edges,
            grown,
            ..
        } = self;
        grown.clear();
        grown.extend(
            dirty_edges
                .iter()
                .copied()
                .filter(|&ei| growth[ei] >= graph.edges()[ei].weight),
        );
        grown.sort_unstable();
    }

    /// Peels the grown forest (left in `self.grown` by
    /// [`Self::grow_clusters`]), pairing defects and accumulating the
    /// observable mask of the used edges. Works entirely in scratch
    /// restricted to grown-edge endpoints and restores it before
    /// returning.
    fn peel(&mut self) -> u64 {
        let boundary = self.graph.boundary();
        let UnionFindDecoder {
            graph,
            defect,
            grown,
            peel_adj,
            peel_visited,
            peel_order,
            ..
        } = self;
        // Adjacency restricted to grown edges; only their endpoints are
        // touched, and the same list clears them again below.
        for &ei in grown.iter() {
            let e = &graph.edges()[ei];
            peel_adj[e.u].push(ei);
            peel_adj[e.v].push(ei);
        }
        peel_order.clear();

        /// BFS from `start`, appending `(node, edge to parent)` entries.
        fn component(
            graph: &MatchingGraph,
            adj: &[Vec<usize>],
            visited: &mut [bool],
            order: &mut Vec<(NodeId, Option<usize>)>,
            start: NodeId,
        ) {
            let base = order.len();
            visited[start] = true;
            order.push((start, None));
            let mut head = base;
            while head < order.len() {
                let (node, _) = order[head];
                head += 1;
                for &ei in &adj[node] {
                    let other = graph.other_endpoint(ei, node);
                    if !visited[other] {
                        visited[other] = true;
                        order.push((other, Some(ei)));
                    }
                }
            }
        }

        // Root each component at the boundary when present so leftover
        // parity drains there. The remaining components are discovered by
        // scanning the (sorted) grown edges: the first edge touching a
        // component has the component's minimum node as its `u` endpoint,
        // so BFS roots match the historical full-node scan exactly.
        component(graph, peel_adj, peel_visited, peel_order, boundary);
        for &ei in grown.iter() {
            let e = &graph.edges()[ei];
            for node in [e.u, e.v] {
                if !peel_visited[node] {
                    component(graph, peel_adj, peel_visited, peel_order, node);
                }
            }
        }
        // Peel leaves: reverse BFS order guarantees children before parents.
        let mut correction = 0u64;
        for i in (0..peel_order.len()).rev() {
            let (node, parent_edge) = peel_order[i];
            if !defect[node] {
                continue;
            }
            let Some(ei) = parent_edge else {
                // Root with leftover parity: only legal at the boundary.
                debug_assert!(node == boundary, "non-boundary root retained defect parity");
                continue;
            };
            let e = &graph.edges()[ei];
            correction ^= e.observables;
            let parent = graph.other_endpoint(ei, node);
            defect[node] = false;
            defect[parent] ^= true;
        }
        // Restore the peel scratch: visit marks via the BFS order, the
        // restricted adjacency via the grown edges that populated it.
        for &(node, _) in peel_order.iter() {
            peel_visited[node] = false;
        }
        for &ei in grown.iter() {
            let e = &graph.edges()[ei];
            peel_adj[e.u].clear();
            peel_adj[e.v].clear();
        }
        peel_order.clear();
        correction
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&mut self, defects: &[NodeId]) -> u64 {
        if defects.is_empty() {
            return 0;
        }
        self.grow_clusters(defects);
        let correction = self.peel();
        self.cleanup();
        correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Decoder;
    use caliqec_stab::{extract_dem, Basis, Circuit, Noise1};

    /// A length-`n` repetition code chain with X noise: detectors form a path
    /// with boundary edges at both ends.
    fn rep_chain(n: usize, p: f64) -> MatchingGraph {
        let data: Vec<u32> = (0..n as u32).collect();
        let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
        let mut c = Circuit::new(2 * n - 1);
        c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
        c.noise1(Noise1::XError, p, &data);
        for i in 0..n - 1 {
            c.cx(data[i], anc[i]);
            c.cx(data[i + 1], anc[i]);
        }
        let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
        for m in &ms {
            c.detector(&[*m]);
        }
        let md = c.measure(data[0], Basis::Z, 0.0);
        c.observable(0, &[md]);
        MatchingGraph::from_dem(&extract_dem(&c))
    }

    #[test]
    fn empty_syndrome_is_trivial() {
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[]), 0);
    }

    #[test]
    fn single_interior_defect_pair_matches_through_middle() {
        // Defects at detectors 1 and 2 (an X on data qubit 2 of 5): the
        // correction is interior and must NOT flip the observable (which sits
        // on data qubit 0's boundary edge).
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[1, 2]), 0);
    }

    #[test]
    fn defect_next_to_left_boundary_flips_observable() {
        // A single defect at detector 0 is closest to the left boundary; the
        // left boundary edge carries the observable (data qubit 0 flip).
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[0]), 1);
    }

    #[test]
    fn defect_next_to_right_boundary_does_not_flip() {
        let g = rep_chain(5, 0.01);
        let last = g.num_detectors() - 1;
        let mut dec = UnionFindDecoder::new(g);
        assert_eq!(dec.decode(&[last]), 0);
    }

    #[test]
    fn two_far_defects_each_go_to_their_boundary() {
        // Defects at both ends of a long chain: cheapest explanation is two
        // boundary matings, flipping the observable exactly once (left side).
        let g = rep_chain(9, 0.01);
        let last = g.num_detectors() - 1;
        let mut dec = UnionFindDecoder::new(g);
        assert_eq!(dec.decode(&[0, last]), 1);
    }

    #[test]
    fn decode_is_deterministic() {
        let mut dec = UnionFindDecoder::new(rep_chain(7, 0.01));
        let a = dec.decode(&[1, 4]);
        let b = dec.decode(&[1, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_restored_between_calls() {
        // After any decode, every scratch structure must be back to its
        // pristine state (this is the allocation-free contract: the next
        // call assumes it).
        let g = rep_chain(7, 0.01);
        let n = g.num_nodes();
        let boundary = g.boundary();
        let mut dec = UnionFindDecoder::new(g);
        for defects in [vec![0], vec![1, 4], vec![0, 2, 3, 5]] {
            dec.decode(&defects);
            for i in 0..n {
                assert_eq!(dec.parent[i], i);
                assert!(!dec.parity[i]);
                assert_eq!(dec.has_boundary[i], i == boundary);
                assert_eq!(dec.members[i], vec![i]);
                assert!(!dec.defect[i]);
                assert!(dec.peel_adj[i].is_empty());
                assert!(!dec.peel_visited[i]);
            }
            assert!(dec.growth.iter().all(|&g| g == 0.0));
            assert!(dec.rate.iter().all(|&r| r == 0.0));
            assert!(dec.dirty_nodes.is_empty());
            assert!(dec.dirty_edges.is_empty());
            assert!(dec.rate_edges.is_empty());
            assert!(dec.peel_order.is_empty());
        }
    }
}
