//! Weighted union-find decoder (Delfosse–Nickerson style).
//!
//! Clusters grow outward from syndrome defects along the weighted matching
//! graph; odd clusters grow until they merge with another cluster or reach the
//! boundary, after which a peeling pass extracts a correction. This is the
//! primary decoder for all Monte-Carlo experiments (the paper uses MWPM via
//! PyMatching; union-find achieves a threshold within ~10 % of it and runs in
//! near-linear time, matching reference [15] of the paper).

use crate::decode::Decoder;
use crate::graph::{MatchingGraph, NodeId};

/// Union-find decoder over a matching graph.
///
/// # Examples
///
/// ```
/// use caliqec_match::{Decoder, MatchingGraph, UnionFindDecoder};
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
/// let graph = MatchingGraph::from_dem(&extract_dem(&c));
/// let mut dec = UnionFindDecoder::new(graph);
/// assert_eq!(dec.decode(&[0]), 1); // the only explanation flips observable 0
/// assert_eq!(dec.decode(&[]), 0);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    graph: MatchingGraph,
    // Scratch state. Kept clean between decode calls by undoing only the
    // entries each call touched (dirty lists), so the per-call cost scales
    // with the syndrome, not with the graph.
    parent: Vec<NodeId>,
    parity: Vec<bool>,
    has_boundary: Vec<bool>,
    members: Vec<Vec<NodeId>>,
    growth: Vec<f64>,
    defect: Vec<bool>,
    dirty_nodes: Vec<NodeId>,
    dirty_edges: Vec<usize>,
}

impl UnionFindDecoder {
    /// Creates a decoder owning its matching graph.
    pub fn new(graph: MatchingGraph) -> UnionFindDecoder {
        let n = graph.num_nodes();
        let e = graph.edges().len();
        let boundary = graph.boundary();
        let mut has_boundary = vec![false; n];
        has_boundary[boundary] = true;
        UnionFindDecoder {
            graph,
            parent: (0..n).collect(),
            parity: vec![false; n],
            has_boundary,
            members: (0..n).map(|i| vec![i]).collect(),
            growth: vec![0.0; e],
            defect: vec![false; n],
            dirty_nodes: Vec::new(),
            dirty_edges: Vec::new(),
        }
    }

    /// The underlying matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    fn find(&mut self, mut a: NodeId) -> NodeId {
        while self.parent[a] != a {
            self.parent[a] = self.parent[self.parent[a]];
            a = self.parent[a];
        }
        a
    }

    fn union(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        self.dirty_nodes.push(ra);
        self.dirty_nodes.push(rb);
        // Small-to-large member merging.
        let (big, small) = if self.members[ra].len() >= self.members[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        let moved = std::mem::take(&mut self.members[small]);
        self.members[big].extend(moved);
        let p = self.parity[small];
        self.parity[big] ^= p;
        let hb = self.has_boundary[small];
        self.has_boundary[big] |= hb;
        big
    }

    /// Undoes everything the last decode touched, restoring the pristine
    /// scratch state in time proportional to the work done.
    fn cleanup(&mut self) {
        let boundary = self.graph.boundary();
        for i in 0..self.dirty_nodes.len() {
            let n = self.dirty_nodes[i];
            self.parent[n] = n;
            self.parity[n] = false;
            self.has_boundary[n] = n == boundary;
            self.members[n].clear();
            self.members[n].push(n);
            self.defect[n] = false;
        }
        self.dirty_nodes.clear();
        for i in 0..self.dirty_edges.len() {
            self.growth[self.dirty_edges[i]] = 0.0;
        }
        self.dirty_edges.clear();
    }

    /// Whether the cluster rooted at `r` still needs to grow.
    fn is_active(&self, r: NodeId) -> bool {
        self.parity[r] && !self.has_boundary[r]
    }

    /// Grows clusters until every one is neutral, then returns the set of
    /// fully grown edges.
    fn grow_clusters(&mut self, defects: &[NodeId]) -> Vec<usize> {
        for &d in defects {
            self.defect[d] = true;
            self.parity[d] = true;
            self.dirty_nodes.push(d);
        }
        loop {
            // Collect the roots of active (odd, boundary-free) clusters.
            let mut roots: Vec<NodeId> = Vec::new();
            for &d in defects {
                let r = self.find(d);
                if self.is_active(r) {
                    roots.push(r);
                }
            }
            if roots.is_empty() {
                break;
            }
            let mut seen_root = vec![];
            // Frontier edges of each active cluster, with growth rate 1 or 2.
            let mut frontier: Vec<(usize, f64)> = Vec::new();
            let mut rate: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for &r in &roots {
                if seen_root.contains(&r) {
                    continue;
                }
                seen_root.push(r);
                let members = self.members[r].clone();
                for node in members {
                    for &ei in self.graph.incident(node) {
                        let e = &self.graph.edges()[ei];
                        if self.growth[ei] >= e.weight {
                            continue;
                        }
                        *rate.entry(ei).or_insert(0.0) += 1.0;
                    }
                }
            }
            // An edge interior to one cluster appears twice (once per
            // endpoint); that is fine — it just completes sooner and the
            // union below is a no-op.
            let mut delta = f64::INFINITY;
            for (&ei, &rt) in &rate {
                let slack = self.graph.edges()[ei].weight - self.growth[ei];
                delta = delta.min(slack / rt);
            }
            if !delta.is_finite() {
                // No growable edges left: disconnected defect; give up on it
                // by declaring its cluster boundary-connected.
                for &r in &roots {
                    let rr = self.find(r);
                    self.has_boundary[rr] = true;
                    self.dirty_nodes.push(rr);
                }
                break;
            }
            frontier.extend(rate.iter().map(|(&e, &r)| (e, r)));
            for (ei, rt) in frontier {
                if self.growth[ei] == 0.0 {
                    self.dirty_edges.push(ei);
                }
                self.growth[ei] += delta * rt;
                let e = &self.graph.edges()[ei];
                if self.growth[ei] >= e.weight - 1e-12 {
                    self.growth[ei] = e.weight;
                    let (u, v) = (e.u, e.v);
                    self.dirty_nodes.push(u);
                    self.dirty_nodes.push(v);
                    self.union(u, v);
                }
            }
        }
        // Sorted for determinism: the peeling forest depends on adjacency
        // order, and an unordered grown set would let cluster cycles (e.g.
        // boundary-to-boundary paths) resolve either way.
        let mut grown: Vec<usize> = self
            .dirty_edges
            .iter()
            .copied()
            .filter(|&ei| self.growth[ei] >= self.graph.edges()[ei].weight)
            .collect();
        grown.sort_unstable();
        grown
    }

    /// Peels the grown forest, pairing defects and accumulating the
    /// observable mask of the used edges.
    fn peel(&mut self, grown: &[usize]) -> u64 {
        let n = self.graph.num_nodes();
        // Adjacency restricted to grown edges.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &ei in grown {
            let e = &self.graph.edges()[ei];
            adj[e.u].push(ei);
            adj[e.v].push(ei);
        }
        let boundary = self.graph.boundary();
        let mut visited = vec![false; n];
        let mut correction = 0u64;

        // Root each component at the boundary when present so leftover parity
        // drains there.
        let mut order: Vec<(NodeId, Option<usize>)> = Vec::new(); // (node, edge to parent)
        let component =
            |start: NodeId, visited: &mut Vec<bool>, order: &mut Vec<(NodeId, Option<usize>)>| {
                let base = order.len();
                visited[start] = true;
                order.push((start, None));
                let mut head = base;
                while head < order.len() {
                    let (node, _) = order[head];
                    head += 1;
                    for &ei in &adj[node] {
                        let other = self.graph.other_endpoint(ei, node);
                        if !visited[other] {
                            visited[other] = true;
                            order.push((other, Some(ei)));
                        }
                    }
                }
            };

        component(boundary, &mut visited, &mut order);
        for start in 0..n {
            if !visited[start] {
                component(start, &mut visited, &mut order);
            }
        }
        // Peel leaves: reverse BFS order guarantees children before parents.
        for i in (0..order.len()).rev() {
            let (node, parent_edge) = order[i];
            if !self.defect[node] {
                continue;
            }
            let Some(ei) = parent_edge else {
                // Root with leftover parity: only legal at the boundary.
                debug_assert!(node == boundary, "non-boundary root retained defect parity");
                continue;
            };
            let e = &self.graph.edges()[ei];
            correction ^= e.observables;
            let parent = self.graph.other_endpoint(ei, node);
            self.defect[node] = false;
            self.defect[parent] ^= true;
        }
        correction
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&mut self, defects: &[NodeId]) -> u64 {
        if defects.is_empty() {
            return 0;
        }
        let grown = self.grow_clusters(defects);
        let correction = self.peel(&grown);
        self.cleanup();
        correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Decoder;
    use caliqec_stab::{extract_dem, Basis, Circuit, Noise1};

    /// A length-`n` repetition code chain with X noise: detectors form a path
    /// with boundary edges at both ends.
    fn rep_chain(n: usize, p: f64) -> MatchingGraph {
        let data: Vec<u32> = (0..n as u32).collect();
        let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
        let mut c = Circuit::new(2 * n - 1);
        c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
        c.noise1(Noise1::XError, p, &data);
        for i in 0..n - 1 {
            c.cx(data[i], anc[i]);
            c.cx(data[i + 1], anc[i]);
        }
        let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
        for m in &ms {
            c.detector(&[*m]);
        }
        let md = c.measure(data[0], Basis::Z, 0.0);
        c.observable(0, &[md]);
        MatchingGraph::from_dem(&extract_dem(&c))
    }

    #[test]
    fn empty_syndrome_is_trivial() {
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[]), 0);
    }

    #[test]
    fn single_interior_defect_pair_matches_through_middle() {
        // Defects at detectors 1 and 2 (an X on data qubit 2 of 5): the
        // correction is interior and must NOT flip the observable (which sits
        // on data qubit 0's boundary edge).
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[1, 2]), 0);
    }

    #[test]
    fn defect_next_to_left_boundary_flips_observable() {
        // A single defect at detector 0 is closest to the left boundary; the
        // left boundary edge carries the observable (data qubit 0 flip).
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[0]), 1);
    }

    #[test]
    fn defect_next_to_right_boundary_does_not_flip() {
        let g = rep_chain(5, 0.01);
        let last = g.num_detectors() - 1;
        let mut dec = UnionFindDecoder::new(g);
        assert_eq!(dec.decode(&[last]), 0);
    }

    #[test]
    fn two_far_defects_each_go_to_their_boundary() {
        // Defects at both ends of a long chain: cheapest explanation is two
        // boundary matings, flipping the observable exactly once (left side).
        let g = rep_chain(9, 0.01);
        let last = g.num_detectors() - 1;
        let mut dec = UnionFindDecoder::new(g);
        assert_eq!(dec.decode(&[0, last]), 1);
    }

    #[test]
    fn decode_is_deterministic() {
        let mut dec = UnionFindDecoder::new(rep_chain(7, 0.01));
        let a = dec.decode(&[1, 4]);
        let b = dec.decode(&[1, 4]);
        assert_eq!(a, b);
    }
}
