//! Weighted union-find decoder (Delfosse–Nickerson style).
//!
//! Clusters grow outward from syndrome defects along the weighted matching
//! graph; odd clusters grow until they merge with another cluster or reach the
//! boundary, after which a peeling pass extracts a correction. This is the
//! primary decoder for all Monte-Carlo experiments (the paper uses MWPM via
//! PyMatching; union-find achieves a threshold within ~10 % of it and runs in
//! near-linear time, matching reference [15] of the paper).

use crate::decode::Decoder;
use crate::graph::{MatchingGraph, NodeId};

/// Union-find decoder over a matching graph.
///
/// The decode hot path is allocation-free in the steady state: *all*
/// working storage — cluster state, per-iteration growth rates, and the
/// peeling forest (adjacency restricted to grown edges, visit marks, BFS
/// order) — lives in scratch fields sized once at construction and
/// restored after every call via dirty lists, so the per-call cost scales
/// with the syndrome (defects touched, edges grown), never with the graph.
/// See `DESIGN.md` § "Decode hot path" for the exact invariants each dirty
/// list must restore.
///
/// # Examples
///
/// ```
/// use caliqec_match::{Decoder, MatchingGraph, UnionFindDecoder};
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
/// let graph = MatchingGraph::from_dem(&extract_dem(&c));
/// let mut dec = UnionFindDecoder::new(graph);
/// assert_eq!(dec.decode(&[0]), 1); // the only explanation flips observable 0
/// assert_eq!(dec.decode(&[]), 0);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    graph: MatchingGraph,
    // Cluster scratch. Kept clean between decode calls by undoing only the
    // entries each call touched (`dirty_nodes` / `dirty_edges`), so the
    // per-call cost scales with the syndrome, not with the graph.
    parent: Vec<NodeId>,
    parity: Vec<bool>,
    has_boundary: Vec<bool>,
    // Cluster sizes (valid at roots), driving the small-to-large union
    // order. Sizes alone suffice — nothing walks a cluster's member list —
    // so unions are O(1) apart from the frontier merge.
    size: Vec<u32>,
    defect: Vec<bool>,
    dirty_nodes: Vec<NodeId>,
    dirty_edges: Vec<usize>,
    // Growth-phase scratch, cleared within each decode (capacity kept):
    // active cluster roots, per-edge growth rates for one growth step, and
    // the fully-grown edge set handed to peeling.
    roots: Vec<NodeId>,
    roots_next: Vec<NodeId>,
    merged: Vec<NodeId>,
    candidates: Vec<usize>,
    grown: Vec<usize>,
    // Per-edge hot state, laid out for the growth scan. `gw[ei]` interleaves
    // `[growth, weight]` so the scan's slack computation costs one cache
    // line per edge instead of two; `rate_iter[ei]` packs this iteration's
    // accumulated growth rate (low 2 bits, values 0–2) with the iteration
    // tag that rated it (high 30 bits). The weight half only changes on
    // [`UnionFindDecoder::reweight`] (a calibration update); the growth
    // half is restored to 0 via `dirty_edges`.
    gw: Vec<[f64; 2]>,
    rate_iter: Vec<u32>,
    // Deferred-growth bookkeeping. A growth iteration only *applies*
    // `delta * rate` to the few edges that might complete (the completion
    // candidates); every other rated edge keeps its rate as a pending
    // term, folded into `growth` at the edge's next scan touch using the
    // recorded per-iteration delta (`deltas[tag]`). Each fold performs the
    // identical two-operand `growth += delta * rate` the eager reference
    // performs, in the same per-edge order, so every observed growth value
    // stays bit-for-bit identical.
    deltas: Vec<f64>,
    // Packed per-edge endpoints for completion handling (cheaper than the
    // 40-byte `Edge` records).
    ends: Vec<(u32, u32)>,
    // Per-cluster frontier multisets, kept at the cluster root: one entry
    // per (member, incident edge) pair, pushed when the member joins a
    // growing cluster and lazily swap-removed once the edge completes. A
    // growth iteration then touches only live frontier entries instead of
    // rescanning every member's whole neighborhood; the accumulated rates
    // are identical (each endpoint-in-active-cluster still contributes
    // exactly one count), so growth values, completions, and the final
    // partition are bit-for-bit the member-scan's. `seeded[n]` records that
    // node `n`'s incidences have been pushed (restored via `dirty_nodes`).
    frontier: Vec<Vec<u32>>,
    seeded: Vec<bool>,
    // Peel scratch, restricted to grown-edge endpoints and restored after
    // each call: `peel_adj[n]` holds the grown edges incident to `n`
    // (cleared via the grown list), `peel_visited` marks BFS-reached nodes
    // (cleared via `peel_order`), `peel_order` is the BFS forest in
    // discovery order with each node's parent edge.
    peel_adj: Vec<Vec<usize>>,
    peel_visited: Vec<bool>,
    peel_order: Vec<(NodeId, Option<usize>)>,
}

impl UnionFindDecoder {
    /// Validating constructor: rejects a malformed graph with a typed
    /// error instead of letting NaN weights hang the growth loop or
    /// out-of-range endpoints panic mid-decode.
    pub fn try_new(
        graph: MatchingGraph,
    ) -> Result<UnionFindDecoder, crate::error::ValidationError> {
        graph.validate()?;
        Ok(UnionFindDecoder::new(graph))
    }

    /// Creates a decoder owning its matching graph.
    pub fn new(graph: MatchingGraph) -> UnionFindDecoder {
        let n = graph.num_nodes();
        let e = graph.edges().len();
        let boundary = graph.boundary();
        let mut has_boundary = vec![false; n];
        has_boundary[boundary] = true;
        let gw: Vec<[f64; 2]> = graph.edges().iter().map(|e| [0.0, e.weight]).collect();
        let ends: Vec<(u32, u32)> = graph
            .edges()
            .iter()
            .map(|e| (e.u as u32, e.v as u32))
            .collect();
        UnionFindDecoder {
            graph,
            parent: (0..n).collect(),
            parity: vec![false; n],
            has_boundary,
            size: vec![1; n],
            defect: vec![false; n],
            dirty_nodes: Vec::new(),
            dirty_edges: Vec::new(),
            roots: Vec::new(),
            roots_next: Vec::new(),
            merged: Vec::new(),
            candidates: Vec::new(),
            gw,
            rate_iter: vec![0; e],
            deltas: Vec::new(),
            ends,
            grown: Vec::new(),
            frontier: vec![Vec::new(); n],
            seeded: vec![false; n],
            peel_adj: vec![Vec::new(); n],
            peel_visited: vec![false; n],
            peel_order: Vec::new(),
        }
    }

    /// The underlying matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// Applies a calibration update: reweights the wrapped graph in place
    /// (see [`MatchingGraph::reweight`]) and refreshes the weight half of
    /// the interleaved `gw` growth state, which snapshots edge weights at
    /// construction. Union-find structural scratch (`ends`, parents, dirty
    /// lists) is weight-independent and survives untouched.
    pub fn reweight(
        &mut self,
        rates: &caliqec_stab::RateTable,
    ) -> Result<(), crate::error::ValidationError> {
        self.graph.reweight(rates)?;
        for (gw, e) in self.gw.iter_mut().zip(self.graph.edges()) {
            gw[1] = e.weight;
        }
        Ok(())
    }

    fn find(&mut self, mut a: NodeId) -> NodeId {
        while self.parent[a] != a {
            self.parent[a] = self.parent[self.parent[a]];
            a = self.parent[a];
        }
        a
    }

    fn union(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        self.dirty_nodes.push(ra);
        self.dirty_nodes.push(rb);
        // A merged cluster that still lacks the boundary may keep growing,
        // so newly joined singletons must contribute their incidences to
        // the frontier. Boundary-holding clusters are permanently inactive and are
        // never scanned; skipping their seeding keeps the boundary node's
        // large neighborhood out of the hot path.
        if !self.has_boundary[ra] && !self.has_boundary[rb] {
            for r in [ra, rb] {
                if !self.seeded[r] {
                    self.seeded[r] = true;
                    let UnionFindDecoder {
                        graph, frontier, ..
                    } = self;
                    frontier[r].extend_from_slice(graph.incident(r));
                }
            }
        }
        // Small-to-large merging by cluster size; ties keep `ra` as the
        // surviving root, exactly as the historic member-count comparison
        // did (sizes equal member counts).
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        // Append the small frontier onto the big one; both buffers keep
        // their capacity. The entry order differs from the historic
        // pop/push drain, but scan order never affects results (the delta
        // min is order-free and the grown set is sorted before peeling).
        let (fb, fs) = if big < small {
            let (lo, hi) = self.frontier.split_at_mut(small);
            (&mut lo[big], &mut hi[0])
        } else {
            let (lo, hi) = self.frontier.split_at_mut(big);
            (&mut hi[0], &mut lo[small])
        };
        fb.extend_from_slice(fs);
        fs.clear();
        let p = self.parity[small];
        self.parity[big] ^= p;
        let hb = self.has_boundary[small];
        self.has_boundary[big] |= hb;
        big
    }

    /// Undoes everything the last decode touched, restoring the pristine
    /// scratch state in time proportional to the work done.
    fn cleanup(&mut self) {
        let boundary = self.graph.boundary();
        for i in 0..self.dirty_nodes.len() {
            let n = self.dirty_nodes[i];
            self.parent[n] = n;
            self.parity[n] = false;
            self.has_boundary[n] = n == boundary;
            self.size[n] = 1;
            self.defect[n] = false;
            self.frontier[n].clear();
            self.seeded[n] = false;
        }
        self.dirty_nodes.clear();
        for i in 0..self.dirty_edges.len() {
            let ei = self.dirty_edges[i];
            self.gw[ei][0] = 0.0;
            // Discard any still-pending deferred growth term; a zero rate
            // also keeps stale iteration tags from ever being consulted.
            self.rate_iter[ei] = 0;
        }
        self.dirty_edges.clear();
    }

    /// Grows clusters until every one is neutral, leaving the set of fully
    /// grown edges in `self.grown` (sorted ascending).
    fn grow_clusters(&mut self, defects: &[NodeId]) {
        for &d in defects {
            self.defect[d] = true;
            self.parity[d] = true;
            self.dirty_nodes.push(d);
            if !self.seeded[d] {
                self.seeded[d] = true;
                let UnionFindDecoder {
                    graph, frontier, ..
                } = self;
                frontier[d].extend_from_slice(graph.incident(d));
            }
        }
        // The active set starts as the defects themselves (each its own
        // odd singleton) and is maintained incrementally across
        // iterations: parity only changes through unions, so any cluster
        // that is active now contains an odd boundary-free constituent
        // that was active before — refreshing `find` over the previous
        // root list (with dedup) reproduces the historic rescan over all
        // defects exactly, at O(active clusters) per iteration.
        self.roots.clear();
        self.roots.extend_from_slice(defects);
        self.deltas.clear();
        loop {
            if self.roots.is_empty() {
                break;
            }
            // Scan each active cluster's frontier multiset. Each live entry
            // is one (member, incident edge) incidence, so an edge interior
            // to one cluster appears twice (once per endpoint) exactly as
            // the historic full member scan counted it — it just completes
            // sooner and the union below is a no-op. Entries whose edge has
            // fully grown are dead; they are compacted out (swap_remove) so
            // later iterations never revisit a cluster's interior.
            //
            // Three things happen per entry: the edge's pending deferred
            // growth (if any) is folded in, its rate for this iteration
            // accumulates, and the growth step `delta` is min-ed over the
            // running quotient slack/rate. The running min is exact: a
            // quotient only shrinks as the rate accumulates (slack/1 ≥
            // slack/2), so intermediate values never undercut the final
            // per-edge quotient. Edges whose quotient comes within
            // `CAND_SLOP` of the running min are recorded as completion
            // candidates — a strict superset of the edges that can pass the
            // completion test below, which requires the quotient within
            // ~1e-12/rate of delta.
            const CAND_SLOP: f64 = 1e-9;
            let cur = self.deltas.len() as u32;
            let mut delta = f64::INFINITY;
            {
                let UnionFindDecoder {
                    roots,
                    candidates,
                    frontier,
                    gw,
                    rate_iter,
                    deltas,
                    dirty_edges,
                    ..
                } = self;
                // SAFETY: every frontier entry is an edge id pushed from
                // `graph.incident(..)`, so `ei < gw.len() == rate_iter.len()`;
                // a nonzero rate's iteration tag was written in an earlier
                // iteration of this decode (cleanup zeroes rates between
                // calls), so `tag < deltas.len()`. The unchecked accesses
                // below elide bounds checks on the innermost decode loop.
                let gw_p = gw.as_mut_ptr();
                let ri_p = rate_iter.as_mut_ptr();
                for &r in roots.iter() {
                    let list = &mut frontier[r];
                    // Reserving up front lets the loop append to both output
                    // lists with a plain store plus a conditional length
                    // increment — no capacity check, no branch: the entry is
                    // written unconditionally at the current end and kept
                    // only when the condition holds (the next entry
                    // overwrites it otherwise). Order and contents of the
                    // kept entries are exactly the branching push's.
                    candidates.reserve(list.len());
                    dirty_edges.reserve(list.len());
                    let mut cand_len = candidates.len();
                    let cand_p = candidates.as_mut_ptr();
                    let mut dirty_len = dirty_edges.len();
                    let dirty_p = dirty_edges.as_mut_ptr();
                    let mut i = 0;
                    while i < list.len() {
                        let ei = list[i] as usize;
                        debug_assert!(ei < rate_iter.len());
                        unsafe {
                            let ri = *ri_p.add(ei);
                            let mut rt = ri & 3;
                            let ge = &mut *gw_p.add(ei);
                            if rt != 0 && (ri >> 2) != cur {
                                debug_assert!(((ri >> 2) as usize) < deltas.len());
                                ge[0] += *deltas.get_unchecked((ri >> 2) as usize) * rt as f64;
                                rt = 0;
                            }
                            let [g, w] = *ge;
                            let slack = w - g;
                            if slack <= 0.0 {
                                list.swap_remove(i);
                                continue;
                            }
                            *dirty_p.add(dirty_len) = ei;
                            dirty_len += (rt == 0 && g == 0.0) as usize;
                            rt += 1;
                            *ri_p.add(ei) = (cur << 2) | rt;
                            // rate is 1 or 2, so the quotient slack/rate is an
                            // exact halving — no divide needed.
                            let q = if rt == 1 { slack } else { slack * 0.5 };
                            if q < delta {
                                delta = q;
                            }
                            *cand_p.add(cand_len) = ei;
                            cand_len += (q <= delta + CAND_SLOP) as usize;
                        }
                        i += 1;
                    }
                    // SAFETY: at most `list.len()` entries were appended to
                    // each list beyond the length the reserve call covered.
                    unsafe {
                        candidates.set_len(cand_len);
                        dirty_edges.set_len(dirty_len);
                    }
                }
            }
            if !delta.is_finite() {
                // No growable edges left: disconnected defect; give up on it
                // by declaring its cluster boundary-connected.
                for i in 0..self.roots.len() {
                    let r = self.roots[i];
                    let rr = self.find(r);
                    self.has_boundary[rr] = true;
                    self.dirty_nodes.push(rr);
                }
                self.candidates.clear();
                break;
            }
            // Apply growth only to the candidates; everything else stays
            // pending. A completing edge performs the same `growth + delta
            // * rate` fold the eager reference performed before clamping to
            // the weight; a non-completing candidate is left untouched so
            // its (unchanged) pending term folds at its next scan touch.
            // (The list is moved out of `self` so the borrow checker lets
            // `union` run inside the loop without re-indexing.)
            let mut cands = std::mem::take(&mut self.candidates);
            for &ei in &cands {
                let [g, w] = self.gw[ei];
                if g >= w {
                    // Duplicate candidate entry of an edge completed above.
                    continue;
                }
                let rt = self.rate_iter[ei] & 3;
                let g2 = g + delta * rt as f64;
                if g2 >= w - 1e-12 {
                    self.gw[ei][0] = w;
                    self.rate_iter[ei] = 0;
                    let (u, v) = self.ends[ei];
                    let (u, v) = (u as usize, v as usize);
                    self.dirty_nodes.push(u);
                    self.dirty_nodes.push(v);
                    self.union(u, v);
                }
            }
            cands.clear();
            self.candidates = cands;
            self.deltas.push(delta);
            // Refresh the active roots: follow each previous root to its
            // current cluster, keep the still-active ones, dedup (two
            // previous actives may have merged into one). Roots only change
            // through unions, so a root that is still its own parent is
            // still a distinct root and needs no dedup scan; only roots
            // merged away this iteration (rare) go through find + dedup.
            for i in 0..self.roots.len() {
                let r = self.roots[i];
                if self.parent[r] == r {
                    if self.parity[r] && !self.has_boundary[r] {
                        self.roots_next.push(r);
                    }
                } else {
                    self.merged.push(r);
                }
            }
            for i in 0..self.merged.len() {
                let rr = self.find(self.merged[i]);
                if self.parity[rr] && !self.has_boundary[rr] && !self.roots_next.contains(&rr) {
                    self.roots_next.push(rr);
                }
            }
            self.merged.clear();
            std::mem::swap(&mut self.roots, &mut self.roots_next);
            self.roots_next.clear();
        }
        self.roots.clear();
        // Sorted for determinism: the peeling forest depends on adjacency
        // order, and an unordered grown set would let cluster cycles (e.g.
        // boundary-to-boundary paths) resolve either way.
        let UnionFindDecoder {
            gw,
            dirty_edges,
            grown,
            ..
        } = self;
        grown.clear();
        grown.extend(
            dirty_edges
                .iter()
                .copied()
                .filter(|&ei| gw[ei][0] >= gw[ei][1]),
        );
        grown.sort_unstable();
    }

    /// Peels the grown forest (left in `self.grown` by
    /// [`Self::grow_clusters`]), pairing defects and accumulating the
    /// observable mask of the used edges. Works entirely in scratch
    /// restricted to grown-edge endpoints and restores it before
    /// returning.
    fn peel(&mut self) -> u64 {
        let boundary = self.graph.boundary();
        let UnionFindDecoder {
            graph,
            defect,
            grown,
            peel_adj,
            peel_visited,
            peel_order,
            ..
        } = self;
        // Adjacency restricted to grown edges; only their endpoints are
        // touched, and the same list clears them again below.
        for &ei in grown.iter() {
            let e = &graph.edges()[ei];
            peel_adj[e.u].push(ei);
            peel_adj[e.v].push(ei);
        }
        peel_order.clear();

        /// BFS from `start`, appending `(node, edge to parent)` entries.
        fn component(
            graph: &MatchingGraph,
            adj: &[Vec<usize>],
            visited: &mut [bool],
            order: &mut Vec<(NodeId, Option<usize>)>,
            start: NodeId,
        ) {
            let base = order.len();
            visited[start] = true;
            order.push((start, None));
            let mut head = base;
            while head < order.len() {
                let (node, _) = order[head];
                head += 1;
                for &ei in &adj[node] {
                    let other = graph.other_endpoint(ei, node);
                    if !visited[other] {
                        visited[other] = true;
                        order.push((other, Some(ei)));
                    }
                }
            }
        }

        // Root each component at the boundary when present so leftover
        // parity drains there. The remaining components are discovered by
        // scanning the (sorted) grown edges: the first edge touching a
        // component has the component's minimum node as its `u` endpoint,
        // so BFS roots match the historical full-node scan exactly.
        component(graph, peel_adj, peel_visited, peel_order, boundary);
        for &ei in grown.iter() {
            let e = &graph.edges()[ei];
            for node in [e.u, e.v] {
                if !peel_visited[node] {
                    component(graph, peel_adj, peel_visited, peel_order, node);
                }
            }
        }
        // Peel leaves: reverse BFS order guarantees children before parents.
        let mut correction = 0u64;
        for i in (0..peel_order.len()).rev() {
            let (node, parent_edge) = peel_order[i];
            if !defect[node] {
                continue;
            }
            let Some(ei) = parent_edge else {
                // Root with leftover parity: only legal at the boundary.
                debug_assert!(node == boundary, "non-boundary root retained defect parity");
                continue;
            };
            let e = &graph.edges()[ei];
            correction ^= e.observables;
            let parent = graph.other_endpoint(ei, node);
            defect[node] = false;
            defect[parent] ^= true;
        }
        // Restore the peel scratch: visit marks via the BFS order, the
        // restricted adjacency via the grown edges that populated it.
        for &(node, _) in peel_order.iter() {
            peel_visited[node] = false;
        }
        for &ei in grown.iter() {
            let e = &graph.edges()[ei];
            peel_adj[e.u].clear();
            peel_adj[e.v].clear();
        }
        peel_order.clear();
        correction
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&mut self, defects: &[NodeId]) -> u64 {
        if defects.is_empty() {
            return 0;
        }
        self.grow_clusters(defects);
        let correction = self.peel();
        self.cleanup();
        correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Decoder;
    use caliqec_stab::{extract_dem, Basis, Circuit, Noise1};

    /// A length-`n` repetition code chain with X noise: detectors form a path
    /// with boundary edges at both ends.
    fn rep_chain(n: usize, p: f64) -> MatchingGraph {
        let data: Vec<u32> = (0..n as u32).collect();
        let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
        let mut c = Circuit::new(2 * n - 1);
        c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
        c.noise1(Noise1::XError, p, &data);
        for i in 0..n - 1 {
            c.cx(data[i], anc[i]);
            c.cx(data[i + 1], anc[i]);
        }
        let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
        for m in &ms {
            c.detector(&[*m]);
        }
        let md = c.measure(data[0], Basis::Z, 0.0);
        c.observable(0, &[md]);
        MatchingGraph::from_dem(&extract_dem(&c))
    }

    #[test]
    fn empty_syndrome_is_trivial() {
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[]), 0);
    }

    #[test]
    fn single_interior_defect_pair_matches_through_middle() {
        // Defects at detectors 1 and 2 (an X on data qubit 2 of 5): the
        // correction is interior and must NOT flip the observable (which sits
        // on data qubit 0's boundary edge).
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[1, 2]), 0);
    }

    #[test]
    fn defect_next_to_left_boundary_flips_observable() {
        // A single defect at detector 0 is closest to the left boundary; the
        // left boundary edge carries the observable (data qubit 0 flip).
        let mut dec = UnionFindDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[0]), 1);
    }

    #[test]
    fn defect_next_to_right_boundary_does_not_flip() {
        let g = rep_chain(5, 0.01);
        let last = g.num_detectors() - 1;
        let mut dec = UnionFindDecoder::new(g);
        assert_eq!(dec.decode(&[last]), 0);
    }

    #[test]
    fn two_far_defects_each_go_to_their_boundary() {
        // Defects at both ends of a long chain: cheapest explanation is two
        // boundary matings, flipping the observable exactly once (left side).
        let g = rep_chain(9, 0.01);
        let last = g.num_detectors() - 1;
        let mut dec = UnionFindDecoder::new(g);
        assert_eq!(dec.decode(&[0, last]), 1);
    }

    #[test]
    fn decode_is_deterministic() {
        let mut dec = UnionFindDecoder::new(rep_chain(7, 0.01));
        let a = dec.decode(&[1, 4]);
        let b = dec.decode(&[1, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_restored_between_calls() {
        // After any decode, every scratch structure must be back to its
        // pristine state (this is the allocation-free contract: the next
        // call assumes it).
        let g = rep_chain(7, 0.01);
        let n = g.num_nodes();
        let boundary = g.boundary();
        let mut dec = UnionFindDecoder::new(g);
        for defects in [vec![0], vec![1, 4], vec![0, 2, 3, 5]] {
            dec.decode(&defects);
            for i in 0..n {
                assert_eq!(dec.parent[i], i);
                assert!(!dec.parity[i]);
                assert_eq!(dec.has_boundary[i], i == boundary);
                assert_eq!(dec.size[i], 1);
                assert!(!dec.defect[i]);
                assert!(dec.frontier[i].is_empty());
                assert!(!dec.seeded[i]);
                assert!(dec.peel_adj[i].is_empty());
                assert!(!dec.peel_visited[i]);
            }
            assert!(dec.gw.iter().all(|g| g[0] == 0.0));
            assert!(dec.rate_iter.iter().all(|&r| r == 0));
            assert!(dec.roots.is_empty());
            assert!(dec.roots_next.is_empty());
            assert!(dec.merged.is_empty());
            assert!(dec.dirty_nodes.is_empty());
            assert!(dec.dirty_edges.is_empty());
            assert!(dec.candidates.is_empty());
            assert!(dec.peel_order.is_empty());
        }
    }
}
