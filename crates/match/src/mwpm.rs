//! Exact minimum-weight perfect matching decoder for small defect sets.
//!
//! All-pairs shortest paths between defects (and to the boundary) are found
//! with Dijkstra on the matching graph; the optimal pairing — where every
//! defect pairs with another defect or with the boundary — is solved exactly
//! by bitmask dynamic programming for up to [`MwpmDecoder::max_exact_defects`]
//! defects, and greedily beyond that. This decoder is the test oracle for the
//! union-find decoder and the small-instance (e.g. d = 3) workhorse.
//!
//! The decode hot path reuses all working storage across calls: Dijkstra runs
//! early-terminate once every current defect and the boundary are settled, and
//! per-source results are kept in a grow-only, byte-bounded cache so repeated
//! defects across shots skip the search entirely (distances from a fixed
//! source never change). [`MwpmDecoder::without_cache`] restores the historic
//! compute-everything-per-call behavior for benchmarking and cross-validation.

use crate::decode::Decoder;
use crate::graph::{MatchingGraph, NodeId};
use caliqec_stab::RateTable;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a Dijkstra run from one source.
///
/// Only nodes with `settled[v]` carry final values; a run that stopped early
/// leaves tentative `dist`/`obs` on frontier nodes, which must never be read.
/// `touched` lists every node whose entry differs from the pristine state
/// (`dist = ∞`, `obs = 0`, unsettled), so a re-run resets in O(reached).
#[derive(Clone, Debug)]
struct SourcePaths {
    dist: Vec<f64>,
    obs: Vec<u64>,
    settled: Vec<bool>,
    touched: Vec<NodeId>,
}

impl SourcePaths {
    fn new(n: usize) -> SourcePaths {
        SourcePaths {
            dist: vec![f64::INFINITY; n],
            obs: vec![0; n],
            settled: vec![false; n],
            touched: Vec::new(),
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
struct HeapItem(f64, NodeId);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

/// Dijkstra from `source` into `sp`, resetting `sp` first via its touched
/// list. When `pending` is finite it must equal the number of distinct nodes
/// with `target_mark` set; the search stops as soon as all of them are
/// settled. Pass `usize::MAX` to settle the whole graph.
///
/// Early termination only decides *when the loop stops*: the pop order (and
/// hence every settled node's `dist`/`obs`) is byte-identical to a full run,
/// because the node-id tie-break in [`HeapItem`] makes relaxation order a
/// function of the graph and source alone.
fn run_dijkstra(
    graph: &MatchingGraph,
    heap: &mut BinaryHeap<HeapItem>,
    sp: &mut SourcePaths,
    source: NodeId,
    target_mark: &[bool],
    mut pending: usize,
) {
    for i in 0..sp.touched.len() {
        let node = sp.touched[i];
        sp.dist[node] = f64::INFINITY;
        sp.obs[node] = 0;
        sp.settled[node] = false;
    }
    sp.touched.clear();
    heap.clear();
    sp.dist[source] = 0.0;
    sp.touched.push(source);
    heap.push(HeapItem(0.0, source));
    while let Some(HeapItem(d, u)) = heap.pop() {
        if sp.settled[u] {
            continue;
        }
        sp.settled[u] = true;
        if target_mark[u] {
            pending -= 1;
            if pending == 0 {
                break;
            }
        }
        for &ei in graph.incident(u) {
            let ei = ei as usize;
            let e = &graph.edges()[ei];
            let v = graph.other_endpoint(ei, u);
            let nd = d + e.weight;
            if nd < sp.dist[v] {
                if sp.dist[v].is_infinite() {
                    sp.touched.push(v);
                }
                sp.dist[v] = nd;
                sp.obs[v] = sp.obs[u] ^ e.observables;
                heap.push(HeapItem(nd, v));
            }
        }
    }
    heap.clear();
}

/// Reusable pairing-stage scratch (DP table, greedy candidates, result).
#[derive(Clone, Debug, Default)]
struct PairingScratch {
    best: Vec<f64>,
    choice: Vec<(usize, Option<usize>)>,
    cands: Vec<(f64, u32, u32)>,
    assigned: Vec<bool>,
    matched: Vec<Option<usize>>,
}

/// Exact MWPM decoder (with a greedy fallback for large defect sets).
///
/// # Examples
///
/// ```
/// use caliqec_match::{Decoder, MatchingGraph, MwpmDecoder};
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
/// let mut dec = MwpmDecoder::new(MatchingGraph::from_dem(&extract_dem(&c)));
/// assert_eq!(dec.decode(&[0]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MwpmDecoder {
    graph: MatchingGraph,
    max_exact: usize,
    // Per-source shortest-path cache: slot `s` holds the last Dijkstra run
    // from source `s`, reused whenever every current target is already
    // settled in it. Grow-only and byte-bounded: once `cache_bytes` would
    // exceed `cache_limit`, further sources fall back to `scratch_paths`.
    cache_enabled: bool,
    cache: Vec<Option<Box<SourcePaths>>>,
    cache_bytes: usize,
    cache_limit: usize,
    // Dijkstra scratch reused across calls.
    heap: BinaryHeap<HeapItem>,
    scratch_paths: SourcePaths,
    target_mark: Vec<bool>,
    target_nodes: Vec<NodeId>,
    // Flat k×k cost/observable matrices, rebuilt per decode (capacity kept).
    pair_cost: Vec<f64>,
    pair_obs: Vec<u64>,
    bnd_cost: Vec<f64>,
    bnd_obs: Vec<u64>,
    pairing: PairingScratch,
}

impl MwpmDecoder {
    /// Default cap on the number of defects solved exactly.
    pub const DEFAULT_MAX_EXACT: usize = 16;

    /// Default byte budget for the per-source shortest-path cache.
    pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

    /// Creates a decoder with the default exact-solving cap.
    pub fn new(graph: MatchingGraph) -> MwpmDecoder {
        Self::build(graph, Self::DEFAULT_MAX_EXACT, true)
    }

    /// Validating constructor: rejects a malformed graph with a typed
    /// error instead of letting NaN weights corrupt the Dijkstra trees or
    /// out-of-range endpoints panic mid-decode.
    pub fn try_new(graph: MatchingGraph) -> Result<MwpmDecoder, crate::error::ValidationError> {
        graph.validate()?;
        Ok(MwpmDecoder::new(graph))
    }

    /// Creates a decoder solving exactly up to `max_exact` defects.
    ///
    /// # Panics
    ///
    /// Panics if `max_exact > 24` (the bitmask DP table would be too large).
    pub fn with_max_exact(graph: MatchingGraph, max_exact: usize) -> MwpmDecoder {
        assert!(max_exact <= 24, "exact matching capped at 24 defects");
        Self::build(graph, max_exact, true)
    }

    /// Creates a decoder with the per-source cache and Dijkstra early
    /// termination disabled: every decode recomputes full shortest-path
    /// trees, matching the historic behavior. Reference path for benchmarks
    /// and cross-validation.
    pub fn without_cache(graph: MatchingGraph) -> MwpmDecoder {
        Self::build(graph, Self::DEFAULT_MAX_EXACT, false)
    }

    fn build(graph: MatchingGraph, max_exact: usize, cache_enabled: bool) -> MwpmDecoder {
        let n = graph.num_nodes();
        MwpmDecoder {
            graph,
            max_exact,
            cache_enabled,
            cache: (0..n).map(|_| None).collect(),
            cache_bytes: 0,
            cache_limit: Self::DEFAULT_CACHE_BYTES,
            heap: BinaryHeap::new(),
            scratch_paths: SourcePaths::new(n),
            target_mark: vec![false; n],
            target_nodes: Vec::new(),
            pair_cost: Vec::new(),
            pair_obs: Vec::new(),
            bnd_cost: Vec::new(),
            bnd_obs: Vec::new(),
            pairing: PairingScratch::default(),
        }
    }

    /// The number of defects up to which matching is solved exactly.
    pub fn max_exact_defects(&self) -> usize {
        self.max_exact
    }

    /// The underlying matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// How many sources currently hold a cached shortest-path tree.
    pub fn cached_sources(&self) -> usize {
        self.cache.iter().filter(|s| s.is_some()).count()
    }

    /// Applies a calibration update: reweights the wrapped graph in place
    /// (see [`MatchingGraph::reweight`]) and drops every cached
    /// shortest-path tree, which recorded distances under the old weights.
    /// The CSR topology and all structural scratch survive untouched.
    pub fn reweight(&mut self, rates: &RateTable) -> Result<(), crate::error::ValidationError> {
        self.graph.reweight(rates)?;
        for entry in &mut self.cache {
            *entry = None;
        }
        self.cache_bytes = 0;
        Ok(())
    }

    /// Approximate heap footprint of one cache entry.
    fn entry_bytes(n: usize) -> usize {
        std::mem::size_of::<SourcePaths>()
            + n * (std::mem::size_of::<f64>()
                + std::mem::size_of::<u64>()
                + 1
                + std::mem::size_of::<NodeId>())
    }

    /// Exact pairing by DP over subsets, into `s.matched`.
    ///
    /// `pair_cost` is a row-major `k × k` defect-to-defect distance matrix,
    /// `bnd_cost[i]` the defect-to-boundary distance. `s.matched[i]` ends up
    /// `Some(j)` when defect `i` is matched to defect `j` and `None` when
    /// matched to the boundary.
    fn exact_pairing(k: usize, pair_cost: &[f64], bnd_cost: &[f64], s: &mut PairingScratch) {
        let full = 1usize << k;
        s.best.clear();
        s.best.resize(full, f64::INFINITY);
        s.choice.clear();
        s.choice.resize(full, (usize::MAX, None));
        s.best[0] = 0.0;
        for mask in 0..full {
            if !s.best[mask].is_finite() {
                continue;
            }
            // Lowest unmatched defect.
            let Some(i) = (0..k).find(|&i| mask & (1 << i) == 0) else {
                continue;
            };
            // Match i to the boundary.
            let m2 = mask | (1 << i);
            let c = s.best[mask] + bnd_cost[i];
            if c < s.best[m2] {
                s.best[m2] = c;
                s.choice[m2] = (i, None);
            }
            // Match i to another unmatched defect j.
            for j in (i + 1)..k {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let m3 = mask | (1 << i) | (1 << j);
                let c = s.best[mask] + pair_cost[i * k + j];
                if c < s.best[m3] {
                    s.best[m3] = c;
                    s.choice[m3] = (i, Some(j));
                }
            }
        }
        // Reconstruct.
        s.matched.clear();
        s.matched.resize(k, None);
        let mut mask = full - 1;
        while mask != 0 {
            let (i, j) = s.choice[mask];
            debug_assert_ne!(i, usize::MAX, "unreachable matching state");
            match j {
                None => {
                    s.matched[i] = None;
                    mask &= !(1 << i);
                }
                Some(j) => {
                    s.matched[i] = Some(j);
                    s.matched[j] = Some(i);
                    mask &= !(1 << i);
                    mask &= !(1 << j);
                }
            }
        }
    }

    /// Greedy pairing into `s.matched`: repeatedly commit the globally
    /// cheapest available match (pair or boundary). Matrix layout as in
    /// [`Self::exact_pairing`].
    fn greedy_pairing(k: usize, pair_cost: &[f64], bnd_cost: &[f64], s: &mut PairingScratch) {
        // A boundary candidate for defect i is encoded as (i, i); real pairs
        // always have j > i. The (cost, i, j) sort therefore reproduces the
        // historic stable-sort-by-cost order (insertion order was i
        // ascending, boundary before pairs, j ascending).
        s.cands.clear();
        for i in 0..k {
            s.cands.push((bnd_cost[i], i as u32, i as u32));
            for j in (i + 1)..k {
                s.cands.push((pair_cost[i * k + j], i as u32, j as u32));
            }
        }
        s.cands.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        s.matched.clear();
        s.matched.resize(k, None);
        s.assigned.clear();
        s.assigned.resize(k, false);
        let mut remaining = k;
        for idx in 0..s.cands.len() {
            if remaining == 0 {
                break;
            }
            let (_, i, j) = s.cands[idx];
            let (i, j) = (i as usize, j as usize);
            if s.assigned[i] {
                continue;
            }
            if i == j {
                s.assigned[i] = true;
                s.matched[i] = None;
                remaining -= 1;
            } else if !s.assigned[j] {
                s.assigned[i] = true;
                s.assigned[j] = true;
                s.matched[i] = Some(j);
                s.matched[j] = Some(i);
                remaining -= 2;
            }
        }
    }
}

impl Decoder for MwpmDecoder {
    fn decode(&mut self, defects: &[NodeId]) -> u64 {
        let k = defects.len();
        if k == 0 {
            return 0;
        }
        let n = self.graph.num_nodes();
        let boundary = self.graph.boundary();

        // Mark the target set (defects + boundary, deduplicated) so Dijkstra
        // can stop once all of them are settled. `target_nodes` is the dirty
        // list that unmarks them below.
        debug_assert!(self.target_nodes.is_empty());
        for &d in defects {
            if !self.target_mark[d] {
                self.target_mark[d] = true;
                self.target_nodes.push(d);
            }
        }
        if !self.target_mark[boundary] {
            self.target_mark[boundary] = true;
            self.target_nodes.push(boundary);
        }
        let pending = if self.cache_enabled {
            self.target_nodes.len()
        } else {
            usize::MAX // reference path: settle the whole graph
        };

        self.pair_cost.clear();
        self.pair_cost.resize(k * k, 0.0);
        self.pair_obs.clear();
        self.pair_obs.resize(k * k, 0);
        self.bnd_cost.clear();
        self.bnd_cost.resize(k, 0.0);
        self.bnd_obs.clear();
        self.bnd_obs.resize(k, 0);

        for i in 0..k {
            let src = defects[i];
            let MwpmDecoder {
                graph,
                cache_enabled,
                cache,
                cache_bytes,
                cache_limit,
                heap,
                scratch_paths,
                target_mark,
                target_nodes,
                pair_cost,
                pair_obs,
                bnd_cost,
                bnd_obs,
                ..
            } = self;
            let sp: &SourcePaths = if *cache_enabled {
                if cache[src].is_none() && *cache_bytes + Self::entry_bytes(n) <= *cache_limit {
                    cache[src] = Some(Box::new(SourcePaths::new(n)));
                    *cache_bytes += Self::entry_bytes(n);
                }
                if let Some(entry) = cache[src].as_mut() {
                    let hit = target_nodes.iter().all(|&t| entry.settled[t]);
                    if !hit {
                        run_dijkstra(graph, heap, entry, src, target_mark, pending);
                    }
                    entry
                } else {
                    run_dijkstra(graph, heap, scratch_paths, src, target_mark, pending);
                    scratch_paths
                }
            } else {
                run_dijkstra(graph, heap, scratch_paths, src, target_mark, pending);
                scratch_paths
            };
            for j in 0..k {
                pair_cost[i * k + j] = sp.dist[defects[j]];
                pair_obs[i * k + j] = sp.obs[defects[j]];
            }
            bnd_cost[i] = sp.dist[boundary];
            bnd_obs[i] = sp.obs[boundary];
        }
        for i in 0..self.target_nodes.len() {
            self.target_mark[self.target_nodes[i]] = false;
        }
        self.target_nodes.clear();

        if k <= self.max_exact {
            Self::exact_pairing(k, &self.pair_cost, &self.bnd_cost, &mut self.pairing);
        } else {
            Self::greedy_pairing(k, &self.pair_cost, &self.bnd_cost, &mut self.pairing);
        }

        let mut correction = 0u64;
        for (i, m) in self.pairing.matched.iter().enumerate() {
            match *m {
                None => correction ^= self.bnd_obs[i],
                Some(j) if j > i => correction ^= self.pair_obs[i * k + j],
                Some(_) => {} // counted once from the smaller index
            }
        }
        correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Decoder;
    use caliqec_stab::{extract_dem, Basis, Circuit, Noise1};

    fn rep_chain(n: usize, p: f64) -> MatchingGraph {
        let data: Vec<u32> = (0..n as u32).collect();
        let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
        let mut c = Circuit::new(2 * n - 1);
        c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
        c.noise1(Noise1::XError, p, &data);
        for i in 0..n - 1 {
            c.cx(data[i], anc[i]);
            c.cx(data[i + 1], anc[i]);
        }
        let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
        for m in &ms {
            c.detector(&[*m]);
        }
        let md = c.measure(data[0], Basis::Z, 0.0);
        c.observable(0, &[md]);
        MatchingGraph::from_dem(&extract_dem(&c))
    }

    #[test]
    fn agrees_with_intuition_on_chain() {
        let mut dec = MwpmDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[]), 0);
        assert_eq!(dec.decode(&[0]), 1); // left boundary, observable flips
        assert_eq!(dec.decode(&[1, 2]), 0); // interior pair
        assert_eq!(dec.decode(&[3]), 0); // right boundary
    }

    #[test]
    fn exact_pairing_prefers_cheap_global_solution() {
        // Three defects in a line: 0 -1- 1 -1- 2, boundary cost 10 each
        // except defect 2 with boundary cost 1. Optimal: (0,1) + (2,boundary).
        #[rustfmt::skip]
        let pair = [
            0.0, 1.0, 2.0,
            1.0, 0.0, 1.0,
            2.0, 1.0, 0.0,
        ];
        let bnd = [10.0, 10.0, 1.0];
        let mut s = PairingScratch::default();
        MwpmDecoder::exact_pairing(3, &pair, &bnd, &mut s);
        assert_eq!(s.matched, vec![Some(1), Some(0), None]);
    }

    #[test]
    fn exact_beats_greedy_on_crafted_instance() {
        // Greedy takes the (1,2) pair first (cost 1), forcing 0 and 3 to pay
        // boundary costs 10 + 10. Exact takes (0,1) + (2,3) for 2 + 2.
        #[rustfmt::skip]
        let pair = [
            0.0, 2.0, 9.0, 9.0,
            2.0, 0.0, 1.0, 9.0,
            9.0, 1.0, 0.0, 2.0,
            9.0, 9.0, 2.0, 0.0,
        ];
        let bnd = [10.0, 10.0, 10.0, 10.0];
        let mut s = PairingScratch::default();
        MwpmDecoder::exact_pairing(4, &pair, &bnd, &mut s);
        assert_eq!(s.matched, vec![Some(1), Some(0), Some(3), Some(2)]);
        // Greedy grabs (1,2) first and is forced to pair (0,3) at cost 9,
        // for a total of 10 versus the exact solution's 4.
        MwpmDecoder::greedy_pairing(4, &pair, &bnd, &mut s);
        assert_eq!(s.matched, vec![Some(3), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn greedy_fallback_still_produces_full_matching() {
        let g = rep_chain(9, 0.01);
        let mut dec = MwpmDecoder::with_max_exact(g, 1);
        // Forcing greedy on 2 defects still resolves them.
        let obs = dec.decode(&[1, 2]);
        assert_eq!(obs, 0);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn max_exact_is_bounded() {
        let g = rep_chain(3, 0.01);
        let _ = MwpmDecoder::with_max_exact(g, 30);
    }

    #[test]
    fn cached_decoder_matches_reference_on_chain() {
        let syndromes: [&[usize]; 6] = [&[0], &[1, 2], &[3], &[0, 5], &[2, 3, 6], &[1, 2]];
        let mut cached = MwpmDecoder::new(rep_chain(9, 0.01));
        let mut reference = MwpmDecoder::without_cache(rep_chain(9, 0.01));
        for s in syndromes {
            assert_eq!(cached.decode(s), reference.decode(s));
        }
        assert!(cached.cached_sources() > 0);
        assert_eq!(reference.cached_sources(), 0);
    }

    #[test]
    fn cache_hit_after_early_stop_is_consistent() {
        // First decode settles only a prefix of the graph from source 4;
        // the second query from the same source needs farther targets and
        // must trigger a re-run, not serve tentative values.
        let mut dec = MwpmDecoder::new(rep_chain(9, 0.01));
        let a1 = dec.decode(&[4, 5]);
        let a2 = dec.decode(&[0, 4]);
        let mut fresh = MwpmDecoder::new(rep_chain(9, 0.01));
        assert_eq!(fresh.decode(&[4, 5]), a1);
        let mut fresh2 = MwpmDecoder::new(rep_chain(9, 0.01));
        assert_eq!(fresh2.decode(&[0, 4]), a2);
    }
}
