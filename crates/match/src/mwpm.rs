//! Exact minimum-weight perfect matching decoder for small defect sets.
//!
//! All-pairs shortest paths between defects (and to the boundary) are found
//! with Dijkstra on the matching graph; the optimal pairing — where every
//! defect pairs with another defect or with the boundary — is solved exactly
//! by bitmask dynamic programming for up to [`MwpmDecoder::max_exact_defects`]
//! defects, and greedily beyond that. This decoder is the test oracle for the
//! union-find decoder and the small-instance (e.g. d = 3) workhorse.

use crate::decode::Decoder;
use crate::graph::{MatchingGraph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a Dijkstra run from one source: distance and path-observable
/// mask to every node.
#[derive(Clone, Debug)]
struct ShortestPaths {
    dist: Vec<f64>,
    obs: Vec<u64>,
}

#[derive(PartialEq)]
struct HeapItem(f64, NodeId);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

fn dijkstra(graph: &MatchingGraph, source: NodeId) -> ShortestPaths {
    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut obs = vec![0u64; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapItem(0.0, source));
    while let Some(HeapItem(d, u)) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &ei in graph.incident(u) {
            let e = &graph.edges()[ei];
            let v = graph.other_endpoint(ei, u);
            let nd = d + e.weight;
            if nd < dist[v] {
                dist[v] = nd;
                obs[v] = obs[u] ^ e.observables;
                heap.push(HeapItem(nd, v));
            }
        }
    }
    ShortestPaths { dist, obs }
}

/// Exact MWPM decoder (with a greedy fallback for large defect sets).
///
/// # Examples
///
/// ```
/// use caliqec_match::{Decoder, MatchingGraph, MwpmDecoder};
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
/// let mut dec = MwpmDecoder::new(MatchingGraph::from_dem(&extract_dem(&c)));
/// assert_eq!(dec.decode(&[0]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MwpmDecoder {
    graph: MatchingGraph,
    max_exact: usize,
}

impl MwpmDecoder {
    /// Default cap on the number of defects solved exactly.
    pub const DEFAULT_MAX_EXACT: usize = 16;

    /// Creates a decoder with the default exact-solving cap.
    pub fn new(graph: MatchingGraph) -> MwpmDecoder {
        MwpmDecoder {
            graph,
            max_exact: Self::DEFAULT_MAX_EXACT,
        }
    }

    /// Creates a decoder solving exactly up to `max_exact` defects.
    ///
    /// # Panics
    ///
    /// Panics if `max_exact > 24` (the bitmask DP table would be too large).
    pub fn with_max_exact(graph: MatchingGraph, max_exact: usize) -> MwpmDecoder {
        assert!(max_exact <= 24, "exact matching capped at 24 defects");
        MwpmDecoder { graph, max_exact }
    }

    /// The number of defects up to which matching is solved exactly.
    pub fn max_exact_defects(&self) -> usize {
        self.max_exact
    }

    /// The underlying matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// Exact pairing by DP over subsets.
    ///
    /// `pair_cost[i][j]` is the defect-to-defect distance, `bnd_cost[i]` the
    /// defect-to-boundary distance. Returns, for each defect, `Some(j)` when
    /// matched to defect `j` and `None` when matched to the boundary.
    fn exact_pairing(pair_cost: &[Vec<f64>], bnd_cost: &[f64]) -> Vec<Option<usize>> {
        let k = bnd_cost.len();
        let full = 1usize << k;
        let mut best = vec![f64::INFINITY; full];
        let mut choice: Vec<(usize, Option<usize>)> = vec![(usize::MAX, None); full];
        best[0] = 0.0;
        for mask in 0..full {
            if !best[mask].is_finite() {
                continue;
            }
            // Lowest unmatched defect.
            let Some(i) = (0..k).find(|&i| mask & (1 << i) == 0) else {
                continue;
            };
            // Match i to the boundary.
            let m2 = mask | (1 << i);
            let c = best[mask] + bnd_cost[i];
            if c < best[m2] {
                best[m2] = c;
                choice[m2] = (i, None);
            }
            // Match i to another unmatched defect j.
            #[allow(clippy::needless_range_loop)]
            for j in (i + 1)..k {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let m3 = mask | (1 << i) | (1 << j);
                let c = best[mask] + pair_cost[i][j];
                if c < best[m3] {
                    best[m3] = c;
                    choice[m3] = (i, Some(j));
                }
            }
        }
        // Reconstruct.
        let mut matched = vec![None; k];
        let mut mask = full - 1;
        while mask != 0 {
            let (i, j) = choice[mask];
            debug_assert_ne!(i, usize::MAX, "unreachable matching state");
            match j {
                None => {
                    matched[i] = None;
                    mask &= !(1 << i);
                }
                Some(j) => {
                    matched[i] = Some(j);
                    matched[j] = Some(i);
                    mask &= !(1 << i);
                    mask &= !(1 << j);
                }
            }
        }
        matched
    }

    /// Greedy pairing: repeatedly commit the globally cheapest available
    /// match (pair or boundary).
    fn greedy_pairing(pair_cost: &[Vec<f64>], bnd_cost: &[f64]) -> Vec<Option<usize>> {
        let k = bnd_cost.len();
        #[derive(PartialEq)]
        struct Cand(f64, usize, Option<usize>);
        let mut cands: Vec<Cand> = Vec::new();
        for i in 0..k {
            cands.push(Cand(bnd_cost[i], i, None));
            #[allow(clippy::needless_range_loop)]
            for j in (i + 1)..k {
                cands.push(Cand(pair_cost[i][j], i, Some(j)));
            }
        }
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        let mut matched: Vec<Option<Option<usize>>> = vec![None; k];
        let mut remaining = k;
        for Cand(_, i, j) in cands {
            if remaining == 0 {
                break;
            }
            if matched[i].is_some() {
                continue;
            }
            match j {
                None => {
                    matched[i] = Some(None);
                    remaining -= 1;
                }
                Some(j) if matched[j].is_none() => {
                    matched[i] = Some(Some(j));
                    matched[j] = Some(Some(i));
                    remaining -= 2;
                }
                _ => {}
            }
        }
        matched.into_iter().map(|m| m.unwrap_or(None)).collect()
    }
}

impl Decoder for MwpmDecoder {
    fn decode(&mut self, defects: &[NodeId]) -> u64 {
        let k = defects.len();
        if k == 0 {
            return 0;
        }
        let boundary = self.graph.boundary();
        let paths: Vec<ShortestPaths> = defects.iter().map(|&d| dijkstra(&self.graph, d)).collect();
        let pair_cost: Vec<Vec<f64>> = (0..k)
            .map(|i| (0..k).map(|j| paths[i].dist[defects[j]]).collect())
            .collect();
        let bnd_cost: Vec<f64> = (0..k).map(|i| paths[i].dist[boundary]).collect();

        let matched = if k <= self.max_exact {
            Self::exact_pairing(&pair_cost, &bnd_cost)
        } else {
            Self::greedy_pairing(&pair_cost, &bnd_cost)
        };

        let mut correction = 0u64;
        for (i, m) in matched.iter().enumerate() {
            match *m {
                None => correction ^= paths[i].obs[boundary],
                Some(j) if j > i => correction ^= paths[i].obs[defects[j]],
                Some(_) => {} // counted once from the smaller index
            }
        }
        correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Decoder;
    use caliqec_stab::{extract_dem, Basis, Circuit, Noise1};

    fn rep_chain(n: usize, p: f64) -> MatchingGraph {
        let data: Vec<u32> = (0..n as u32).collect();
        let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
        let mut c = Circuit::new(2 * n - 1);
        c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
        c.noise1(Noise1::XError, p, &data);
        for i in 0..n - 1 {
            c.cx(data[i], anc[i]);
            c.cx(data[i + 1], anc[i]);
        }
        let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
        for m in &ms {
            c.detector(&[*m]);
        }
        let md = c.measure(data[0], Basis::Z, 0.0);
        c.observable(0, &[md]);
        MatchingGraph::from_dem(&extract_dem(&c))
    }

    #[test]
    fn agrees_with_intuition_on_chain() {
        let mut dec = MwpmDecoder::new(rep_chain(5, 0.01));
        assert_eq!(dec.decode(&[]), 0);
        assert_eq!(dec.decode(&[0]), 1); // left boundary, observable flips
        assert_eq!(dec.decode(&[1, 2]), 0); // interior pair
        assert_eq!(dec.decode(&[3]), 0); // right boundary
    }

    #[test]
    fn exact_pairing_prefers_cheap_global_solution() {
        // Three defects in a line: 0 -1- 1 -1- 2, boundary cost 10 each
        // except defect 2 with boundary cost 1. Optimal: (0,1) + (2,boundary).
        let pair = vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 1.0],
            vec![2.0, 1.0, 0.0],
        ];
        let bnd = vec![10.0, 10.0, 1.0];
        let m = MwpmDecoder::exact_pairing(&pair, &bnd);
        assert_eq!(m, vec![Some(1), Some(0), None]);
    }

    #[test]
    fn exact_beats_greedy_on_crafted_instance() {
        // Greedy takes the (1,2) pair first (cost 1), forcing 0 and 3 to pay
        // boundary costs 10 + 10. Exact takes (0,1) + (2,3) for 2 + 2.
        let pair = vec![
            vec![0.0, 2.0, 9.0, 9.0],
            vec![2.0, 0.0, 1.0, 9.0],
            vec![9.0, 1.0, 0.0, 2.0],
            vec![9.0, 9.0, 2.0, 0.0],
        ];
        let bnd = vec![10.0, 10.0, 10.0, 10.0];
        let exact = MwpmDecoder::exact_pairing(&pair, &bnd);
        assert_eq!(exact, vec![Some(1), Some(0), Some(3), Some(2)]);
        // Greedy grabs (1,2) first and is forced to pair (0,3) at cost 9,
        // for a total of 10 versus the exact solution's 4.
        let greedy = MwpmDecoder::greedy_pairing(&pair, &bnd);
        assert_eq!(greedy, vec![Some(3), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn greedy_fallback_still_produces_full_matching() {
        let g = rep_chain(9, 0.01);
        let mut dec = MwpmDecoder::with_max_exact(g, 1);
        // Forcing greedy on 2 defects still resolves them.
        let obs = dec.decode(&[1, 2]);
        assert_eq!(obs, 0);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn max_exact_is_bounded() {
        let g = rep_chain(3, 0.01);
        let _ = MwpmDecoder::with_max_exact(g, 30);
    }
}
