//! Streaming decode service: bounded-latency syndrome ingestion with
//! backpressure, deadlines, and graceful overload degradation.
//!
//! The batch engine ([`LerEngine`](crate::LerEngine)) owns its workload: it
//! decides how many chunks exist and samples them as fast as the decoders
//! drain. A real control system is the opposite — syndrome rounds arrive on
//! the hardware's clock, per logical patch, whether or not the decoders are
//! keeping up. [`StreamingDecoder`] is the service shape for that regime:
//!
//! - **Ingestion** reuses the round-by-round reassembly path
//!   ([`caliqec_stab::WindowBuilder`]): [`StreamingDecoder::push_round`]
//!   copies one round's detector words and, when a window completes, admits
//!   it to a bounded per-tenant queue. A full queue *rejects* the window —
//!   the explicit backpressure signal — instead of buffering unboundedly;
//!   rejected rounds are counted separately and never counted as ingested.
//! - **Decoding** runs on a shared worker pool multiplexing all tenants
//!   through the zero-allocation [`SparseBatch`] extraction path and the
//!   engine's reusable per-window core
//!   ([`decode_window_masks`](crate::decode_window_masks)).
//! - **Deadlines** drive a three-rung shed ladder, judged by queue age at
//!   dequeue: in-deadline windows decode in full (rung 0); windows older
//!   than the deadline take the predecode/cluster-peel fast path (rung 1,
//!   counted degraded); windows older than twice the deadline are *declared
//!   deferred* (rung 2) — no decode, honest accounting, mirroring the batch
//!   engine's degradation-ladder semantics. `deadline: None` disables
//!   shedding entirely, which is what makes golden-replay testing possible.
//! - **Watchdog**: a supervisor thread scans per-worker heartbeats and
//!   journals a [`Wedge`](caliqec_obs::EventKind::Wedge) when a worker sits
//!   on a window past the wedge deadline. A wedged-then-recovered worker
//!   retries the same window; decoding is a pure function of the window
//!   bytes, so the retry is bit-identical to the attempt that stalled.
//! - **Accounting invariant**: once drained, every ingested round is
//!   decoded, shed, or deferred — `rounds_ingested = rounds_decoded +
//!   rounds_shed + rounds_deferred` — and [`ServiceHealth`] exposes the
//!   partition per tenant plus latency quantiles from the
//!   [`caliqec_obs`] histograms.
//!
//! Determinism: the decode mask of `(tenant, window)` is a pure function of
//! the window's detector words and the tenant's decoder — independent of
//! worker count, queue interleaving, retries, and wedges. Only latencies
//! and shed/deferred/rejected *counts* may vary with timing, and those are
//! reported as distributions, never folded into the masks.

use crate::cluster::ClusterTier;
use crate::decode::Decoder;
use crate::engine::{decode_window_masks, DecoderFactory, WindowScratch, WindowStats};
use crate::error::ValidationError;
use crate::faults::{FaultKind, FaultPlan};
use crate::predecode::{ClusterGate, Predecoder};
use caliqec_obs::{Counter, Event, EventKind, Gauge, Hist, ObsSink, WorkerObs};
use caliqec_stab::{
    chunk_seed, for_each_set_bit, BatchEvents, Circuit, RoundStream, SparseBatch, WindowBuilder,
    WindowError, BATCH,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-level configuration for a [`StreamingDecoder`].
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Decode worker threads shared by every tenant.
    pub workers: usize,
    /// Maximum windows queued per tenant; admission past the bound is
    /// rejected ([`PushOutcome::Rejected`]).
    pub queue_bound: usize,
    /// Per-window decode deadline, judged by queue age at dequeue. `None`
    /// disables the shed ladder — every window decodes in full.
    pub deadline: Option<Duration>,
    /// How stale a busy worker's heartbeat may grow before the watchdog
    /// declares it wedged.
    pub wedge_deadline: Duration,
    /// Same-window retries after a decoder panic before the window is
    /// declared deferred.
    pub max_retries: u32,
    /// Streaming fault injections (see [`FaultKind::is_streaming`]);
    /// `None` disarms the whole mechanism at one branch per window.
    pub faults: Option<FaultPlan>,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            workers: 2,
            queue_bound: 4,
            deadline: None,
            wedge_deadline: Duration::from_millis(200),
            max_retries: 2,
            faults: None,
        }
    }
}

/// One logical patch served by the pool: its decoder factory and the
/// detector-word count of one decode window (the patch circuit's detector
/// count).
#[derive(Debug)]
pub struct TenantSpec<F> {
    /// Builds this tenant's decoders (one per worker that touches the
    /// tenant, built lazily; rebuilt after a quarantined panic).
    pub factory: F,
    /// Detector words per complete window.
    pub detectors: usize,
}

/// What [`StreamingDecoder::push_round`] did with the round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Round buffered; the window is still open.
    Buffered {
        /// Rounds buffered in the open window so far.
        rounds: u32,
    },
    /// The round completed a window and it was admitted to the queue.
    Admitted {
        /// Tenant-local index of the admitted window (only admitted
        /// windows are numbered, densely from 0).
        window: u64,
    },
    /// The round completed a window but the tenant's queue is full: the
    /// window was dropped and its rounds counted as rejected, not
    /// ingested. This is the backpressure signal — a well-behaved source
    /// slows down when it sees it.
    Rejected {
        /// Queue depth observed at the rejection.
        queue_depth: usize,
    },
}

/// How one admitted window was disposed of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Full decode within deadline (shed rung 0).
    Decoded,
    /// Deadline missed: predecode/cluster-peel fast path only (shed rung
    /// 1). Masks are best-effort — uncertified shots keep an identity
    /// mask — and the window counts as degraded.
    FastPath,
    /// Deadline missed by 2x (or retries exhausted): declared deferred
    /// (shed rung 2). No decode ran; masks are all-zero placeholders and
    /// the window counts as degraded.
    Deferred,
}

/// Outcome record for one admitted window.
#[derive(Clone, Debug)]
pub struct WindowResult {
    /// Tenant-local window index.
    pub window: u64,
    /// How the window was handled.
    pub disposition: Disposition,
    /// Rounds the window was assembled from.
    pub rounds: u32,
    /// Same-window retries spent (wedge recoveries + panic quarantines).
    pub retries: u32,
    /// Per-shot predicted observable masks (all-zero for
    /// [`Disposition::Deferred`]).
    pub masks: [u64; BATCH],
}

/// Per-tenant slice of a [`ServiceHealth`] snapshot.
#[derive(Clone, Debug, Default)]
pub struct TenantHealth {
    /// Tenant index.
    pub tenant: u32,
    /// Windows currently queued.
    pub queue_depth: usize,
    /// Rounds admitted into windows.
    pub rounds_ingested: u64,
    /// Rounds whose window decoded in full.
    pub rounds_decoded: u64,
    /// Rounds whose window took the fast path.
    pub rounds_shed: u64,
    /// Rounds whose window was declared deferred.
    pub rounds_deferred: u64,
    /// Rounds rejected by backpressure (never ingested).
    pub rounds_rejected: u64,
}

/// Point-in-time service snapshot: queue state, the shed/deferred
/// partition, and round-latency quantiles.
#[derive(Clone, Debug, Default)]
pub struct ServiceHealth {
    /// Decode workers in the pool.
    pub workers: usize,
    /// Windows queued across all tenants right now.
    pub queue_depth: usize,
    /// Highest global queue depth observed.
    pub queue_peak: usize,
    /// Windows decoded in full.
    pub windows_decoded: u64,
    /// Windows shed to the fast path.
    pub windows_shed: u64,
    /// Windows declared deferred.
    pub windows_deferred: u64,
    /// Wedges the watchdog (or a recovering worker) declared.
    pub wedges: u64,
    /// Same-window retries across all causes.
    pub retries: u64,
    /// Median admission-to-disposition window latency, microseconds
    /// (0 when the sink is disabled or nothing has finished).
    pub round_latency_p50_us: f64,
    /// 95th-percentile window latency, microseconds.
    pub round_latency_p95_us: f64,
    /// 99th-percentile window latency, microseconds.
    pub round_latency_p99_us: f64,
    /// Per-tenant queue depth and round accounting.
    pub tenants: Vec<TenantHealth>,
}

impl ServiceHealth {
    /// Rounds admitted but not yet disposed (0 once drained). The
    /// partition invariant is `rounds_ingested = rounds_decoded +
    /// rounds_shed + rounds_deferred + rounds_pending()` per tenant and
    /// in aggregate.
    pub fn rounds_pending(&self) -> u64 {
        let t: (u64, u64) = self.tenants.iter().fold((0, 0), |(ing, done), t| {
            (
                ing + t.rounds_ingested,
                done + t.rounds_decoded + t.rounds_shed + t.rounds_deferred,
            )
        });
        t.0 - t.1
    }

    /// Hand-rolled JSON rendering (the repo has no serde), stable key
    /// order, one object per tenant.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + 192 * self.tenants.len());
        out.push_str(&format!(
            "{{\"workers\":{},\"queue_depth\":{},\"queue_peak\":{},\
             \"windows_decoded\":{},\"windows_shed\":{},\"windows_deferred\":{},\
             \"wedges\":{},\"retries\":{},\"rounds_pending\":{},\
             \"round_latency_us\":{{\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\
             \"tenants\":[",
            self.workers,
            self.queue_depth,
            self.queue_peak,
            self.windows_decoded,
            self.windows_shed,
            self.windows_deferred,
            self.wedges,
            self.retries,
            self.rounds_pending(),
            self.round_latency_p50_us,
            self.round_latency_p95_us,
            self.round_latency_p99_us,
        ));
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":{},\"queue_depth\":{},\"rounds_ingested\":{},\
                 \"rounds_decoded\":{},\"rounds_shed\":{},\"rounds_deferred\":{},\
                 \"rounds_rejected\":{}}}",
                t.tenant,
                t.queue_depth,
                t.rounds_ingested,
                t.rounds_decoded,
                t.rounds_shed,
                t.rounds_deferred,
                t.rounds_rejected,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Everything a finished service hands back: the final health snapshot and
/// each tenant's window results sorted by window index.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Health at shutdown (queues drained, so `rounds_pending() == 0`).
    pub health: ServiceHealth,
    /// Per-tenant window outcomes, sorted by `window`.
    pub tenants: Vec<Vec<WindowResult>>,
}

/// One queued decode window.
struct Job {
    tenant: u32,
    window: u64,
    /// Global admission sequence — the journal chunk id, unique per job.
    seq: u64,
    rounds: u32,
    enqueued: Instant,
    events: BatchEvents,
}

/// Driver-side reassembly state for one tenant.
struct TenantIngest {
    builder: WindowBuilder,
    /// Next tenant-local window index (admitted windows only).
    admitted: u64,
    rounds_in_window: u32,
}

#[derive(Default)]
struct TenantCounters {
    ingested: AtomicU64,
    decoded: AtomicU64,
    shed: AtomicU64,
    deferred: AtomicU64,
    rejected: AtomicU64,
}

struct Tenant<F> {
    factory: F,
    detectors: usize,
    ingest: Mutex<TenantIngest>,
    depth: AtomicUsize,
    counts: TenantCounters,
    results: Mutex<Vec<WindowResult>>,
}

/// Watchdog-visible state of one worker. `busy` holds the checked-out
/// job's global sequence (`u64::MAX` when idle); `heartbeat` is nanoseconds
/// since the service epoch, written at checkout and never during an
/// injected wedge — which is exactly what lets the watchdog see the stall.
struct WorkerSlot {
    heartbeat: AtomicU64,
    busy: AtomicU64,
    tenant: AtomicU64,
    window: AtomicU64,
    wedged: AtomicBool,
}

impl WorkerSlot {
    fn new() -> WorkerSlot {
        WorkerSlot {
            heartbeat: AtomicU64::new(0),
            busy: AtomicU64::new(u64::MAX),
            tenant: AtomicU64::new(0),
            window: AtomicU64::new(0),
            wedged: AtomicBool::new(false),
        }
    }
}

struct Shared<F> {
    tenants: Vec<Tenant<F>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    watchdog_stop: AtomicBool,
    pool: Mutex<Vec<BatchEvents>>,
    config: StreamConfig,
    sink: ObsSink,
    epoch: Instant,
    queue_len: AtomicUsize,
    queue_peak: AtomicUsize,
    seq: AtomicU64,
    slots: Vec<WorkerSlot>,
    windows_decoded: AtomicU64,
    windows_shed: AtomicU64,
    windows_deferred: AtomicU64,
    wedges: AtomicU64,
    retries: AtomicU64,
    /// Driver-side recording handle (ingest runs on the caller's thread,
    /// which has no worker shard of its own).
    ingest_obs: Mutex<WorkerObs>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Is `kind` scheduled at `index` in the armed plan? Streaming injections
/// reuse the [`FaultPlan`] chunk field as a tenant or window index.
fn scheduled(plan: Option<&FaultPlan>, kind: FaultKind, index: u64) -> bool {
    plan.is_some_and(|p| {
        p.injections()
            .iter()
            .any(|inj| inj.kind == kind && inj.chunk as u64 == index)
    })
}

/// The streaming decode service. See the [module docs](self) for the
/// architecture; the lifecycle is [`StreamingDecoder::start`] →
/// [`StreamingDecoder::push_round`] (any number of times) →
/// [`StreamingDecoder::drain`] (optional) → [`StreamingDecoder::shutdown`].
pub struct StreamingDecoder<F: DecoderFactory + Send + Sync + 'static> {
    shared: Arc<Shared<F>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl<F: DecoderFactory + Send + Sync + 'static> std::fmt::Debug for StreamingDecoder<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingDecoder")
            .field("tenants", &self.shared.tenants.len())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<F: DecoderFactory + Send + Sync + 'static> StreamingDecoder<F> {
    /// Validates every tenant factory, spawns the worker pool and the
    /// watchdog, and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, any tenant's `detectors` is zero,
    /// `config.workers` is zero, or `config.queue_bound` is zero — all
    /// programming errors, not runtime conditions.
    pub fn start(
        tenants: Vec<TenantSpec<F>>,
        config: StreamConfig,
        sink: ObsSink,
    ) -> Result<StreamingDecoder<F>, ValidationError> {
        assert!(!tenants.is_empty(), "service needs at least one tenant");
        assert!(config.workers > 0, "service needs at least one worker");
        assert!(config.queue_bound > 0, "queue bound must be positive");
        for spec in &tenants {
            assert!(spec.detectors > 0, "tenant window must hold detectors");
            spec.factory.validate()?;
        }
        let run = sink.begin_run();
        let mut coord = sink.worker(run, Event::COORDINATOR);
        coord.event(EventKind::RunStart {
            threads: config.workers as u32,
            chunks: 0,
        });
        coord.set(Gauge::StreamTenants, tenants.len() as u64);
        coord.flush();
        let workers = config.workers;
        let shared = Arc::new(Shared {
            tenants: tenants
                .into_iter()
                .map(|spec| Tenant {
                    ingest: Mutex::new(TenantIngest {
                        builder: WindowBuilder::new(spec.detectors),
                        admitted: 0,
                        rounds_in_window: 0,
                    }),
                    factory: spec.factory,
                    detectors: spec.detectors,
                    depth: AtomicUsize::new(0),
                    counts: TenantCounters::default(),
                    results: Mutex::new(Vec::new()),
                })
                .collect(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            watchdog_stop: AtomicBool::new(false),
            pool: Mutex::new(Vec::new()),
            config,
            epoch: Instant::now(),
            queue_len: AtomicUsize::new(0),
            queue_peak: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            slots: (0..workers).map(|_| WorkerSlot::new()).collect(),
            windows_decoded: AtomicU64::new(0),
            windows_shed: AtomicU64::new(0),
            windows_deferred: AtomicU64::new(0),
            wedges: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            ingest_obs: Mutex::new(sink.worker(run, Event::COORDINATOR)),
            sink,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                let obs = shared.sink.worker(run, i as u32);
                std::thread::Builder::new()
                    .name(format!("caliqec-stream-{i}"))
                    .spawn(move || worker_loop(shared, i, obs))
                    .expect("spawn stream worker")
            })
            .collect();
        let watchdog = {
            let shared = shared.clone();
            let obs = shared.sink.worker(run, Event::COORDINATOR);
            std::thread::Builder::new()
                .name("caliqec-stream-watchdog".to_string())
                .spawn(move || watchdog_loop(shared, obs))
                .expect("spawn stream watchdog")
        };
        Ok(StreamingDecoder {
            shared,
            workers: handles,
            watchdog: Some(watchdog),
        })
    }

    /// Ingests one round of detector words for `tenant`. Rounds must tile
    /// the tenant's window detector count exactly; a misaligned round is
    /// rejected with the buffer untouched. When the round completes a
    /// window, the window is either admitted to the bounded queue or — if
    /// the tenant already has `queue_bound` windows queued — rejected
    /// wholesale (backpressure; the source should slow down).
    pub fn push_round(&self, tenant: usize, round: &[u64]) -> Result<PushOutcome, WindowError> {
        let t = &self.shared.tenants[tenant];
        let mut ingest = lock(&t.ingest);
        let complete = ingest.builder.push_round(round)?;
        ingest.rounds_in_window += 1;
        if !complete {
            return Ok(PushOutcome::Buffered {
                rounds: ingest.rounds_in_window,
            });
        }
        let rounds = std::mem::take(&mut ingest.rounds_in_window);
        let depth = t.depth.load(Ordering::Acquire);
        if depth >= self.shared.config.queue_bound {
            // Reject: swap the completed window out (recycling its buffer)
            // and drop the data. Rejected rounds are *not* ingested.
            let mut scratch = lock(&self.shared.pool).pop().unwrap_or_default();
            ingest.builder.finish_window(&mut scratch);
            lock(&self.shared.pool).push(scratch);
            t.counts
                .rejected
                .fetch_add(rounds as u64, Ordering::Relaxed);
            let mut obs = lock(&self.shared.ingest_obs);
            obs.add(Counter::RoundsRejected, rounds as u64);
            return Ok(PushOutcome::Rejected { queue_depth: depth });
        }
        let window = ingest.admitted;
        ingest.admitted += 1;
        let mut events = lock(&self.shared.pool).pop().unwrap_or_default();
        ingest.builder.finish_window(&mut events);
        drop(ingest);
        let mut enqueued = Instant::now();
        if let Some(d) = self.shared.config.deadline {
            // A delayed-arrival injection backdates admission past twice
            // the deadline, deterministically forcing a rung-2 shed.
            if scheduled(
                self.shared.config.faults.as_ref(),
                FaultKind::DelayedArrival,
                window,
            ) {
                enqueued = enqueued.checked_sub(3 * d).unwrap_or(enqueued);
            }
        }
        t.counts
            .ingested
            .fetch_add(rounds as u64, Ordering::Relaxed);
        t.depth.fetch_add(1, Ordering::AcqRel);
        let len = self.shared.queue_len.fetch_add(1, Ordering::AcqRel) + 1;
        let peak = self
            .shared
            .queue_peak
            .fetch_max(len, Ordering::AcqRel)
            .max(len);
        {
            let mut obs = lock(&self.shared.ingest_obs);
            obs.add(Counter::RoundsIngested, rounds as u64);
            obs.set(Gauge::StreamQueuePeak, peak as u64);
        }
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        lock(&self.shared.queue).push_back(Job {
            tenant: tenant as u32,
            window,
            seq,
            rounds,
            enqueued,
            events,
        });
        self.shared.available.notify_one();
        Ok(PushOutcome::Admitted { window })
    }

    /// Blocks until every admitted window has been disposed of (queue
    /// empty and all workers idle).
    pub fn drain(&self) {
        loop {
            let queued = self.shared.queue_len.load(Ordering::Acquire);
            let busy = self
                .shared
                .slots
                .iter()
                .any(|s| s.busy.load(Ordering::Acquire) != u64::MAX);
            if queued == 0 && !busy {
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// A point-in-time [`ServiceHealth`] snapshot.
    pub fn health(&self) -> ServiceHealth {
        let shared = &self.shared;
        let snap = shared.sink.snapshot();
        let latency = snap.hist(Hist::RoundLatency);
        let q = |p: f64| latency.map_or(0.0, |h| h.quantile_nanos(p) / 1_000.0);
        ServiceHealth {
            workers: shared.slots.len(),
            queue_depth: shared.queue_len.load(Ordering::Acquire),
            queue_peak: shared.queue_peak.load(Ordering::Acquire),
            windows_decoded: shared.windows_decoded.load(Ordering::Relaxed),
            windows_shed: shared.windows_shed.load(Ordering::Relaxed),
            windows_deferred: shared.windows_deferred.load(Ordering::Relaxed),
            wedges: shared.wedges.load(Ordering::Relaxed),
            retries: shared.retries.load(Ordering::Relaxed),
            round_latency_p50_us: q(0.50),
            round_latency_p95_us: q(0.95),
            round_latency_p99_us: q(0.99),
            tenants: shared
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| TenantHealth {
                    tenant: i as u32,
                    queue_depth: t.depth.load(Ordering::Acquire),
                    rounds_ingested: t.counts.ingested.load(Ordering::Relaxed),
                    rounds_decoded: t.counts.decoded.load(Ordering::Relaxed),
                    rounds_shed: t.counts.shed.load(Ordering::Relaxed),
                    rounds_deferred: t.counts.deferred.load(Ordering::Relaxed),
                    rounds_rejected: t.counts.rejected.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Drains the queue, stops the pool and the watchdog, and returns the
    /// final report. Windows still queued at the call are decoded (or
    /// shed) before the workers exit — shutdown is graceful, never lossy.
    pub fn shutdown(mut self) -> StreamReport {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.watchdog_stop.store(true, Ordering::Release);
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        lock(&self.shared.ingest_obs).flush();
        let health = self.health();
        let tenants = self
            .shared
            .tenants
            .iter()
            .map(|t| {
                let mut rs = lock(&t.results).clone();
                rs.sort_by_key(|r| r.window);
                rs
            })
            .collect();
        StreamReport { health, tenants }
    }
}

/// Per-(worker, tenant) decode lane: the decoder plus its front tiers,
/// built lazily from the tenant's factory and rebuilt after a quarantine.
struct Lane<D> {
    decoder: D,
    predecoder: Option<Predecoder>,
    cluster: Option<ClusterTier>,
    gate: ClusterGate,
    gate_threshold: f64,
}

fn build_lane<F: DecoderFactory>(factory: &F) -> Lane<F::Decoder> {
    Lane {
        decoder: factory.build(),
        predecoder: factory.predecoder(),
        cluster: factory.cluster_tier(),
        gate: factory.cluster_gate(),
        gate_threshold: factory.cluster_gate_threshold(),
    }
}

fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

fn worker_loop<F: DecoderFactory + Send + Sync + 'static>(
    shared: Arc<Shared<F>>,
    idx: usize,
    mut obs: WorkerObs,
) {
    let mut lanes: Vec<Option<Lane<F::Decoder>>> =
        (0..shared.tenants.len()).map(|_| None).collect();
    let mut sparse = SparseBatch::new();
    let mut scratch = WindowScratch::default();
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(20))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let slot = &shared.slots[idx];
        slot.wedged.store(false, Ordering::Release);
        slot.tenant.store(job.tenant as u64, Ordering::Relaxed);
        slot.window.store(job.window, Ordering::Relaxed);
        slot.heartbeat
            .store(nanos_since(shared.epoch), Ordering::Release);
        slot.busy.store(job.seq, Ordering::Release);
        shared.queue_len.fetch_sub(1, Ordering::AcqRel);
        shared.tenants[job.tenant as usize]
            .depth
            .fetch_sub(1, Ordering::AcqRel);

        obs.begin_chunk(job.seq as u32);
        process_job(
            &shared,
            idx,
            &mut lanes,
            &mut sparse,
            &mut scratch,
            &mut obs,
            &job,
        );
        slot.busy.store(u64::MAX, Ordering::Release);
        obs.flush();
        lock(&shared.pool).push(job.events);
        shared.available.notify_one();
    }
}

/// Decodes (or sheds) one window and records the outcome. The shed rung is
/// judged once, by queue age at dequeue; injected wedges stall *before*
/// that judgement so deadline semantics still apply to the retry.
#[allow(clippy::too_many_arguments)]
fn process_job<F: DecoderFactory + Send + Sync + 'static>(
    shared: &Shared<F>,
    idx: usize,
    lanes: &mut [Option<Lane<F::Decoder>>],
    sparse: &mut SparseBatch,
    scratch: &mut WindowScratch,
    obs: &mut WorkerObs,
    job: &Job,
) {
    let tenant = &shared.tenants[job.tenant as usize];
    let slot = &shared.slots[idx];
    let mut retries = 0u32;

    // Injected wedge: freeze the heartbeat (by simply not updating it)
    // until the watchdog flags this slot, then account a same-window retry.
    // Decoding is a pure function of the window bytes, so the retry below
    // is bit-identical to what the wedged attempt would have produced.
    if scheduled(
        shared.config.faults.as_ref(),
        FaultKind::WorkerWedge,
        job.window,
    ) {
        let step = (shared.config.wedge_deadline / 4).max(Duration::from_millis(1));
        let mut waited = Duration::ZERO;
        let cap = shared.config.wedge_deadline * 50;
        loop {
            std::thread::sleep(step);
            waited += step;
            if slot.wedged.load(Ordering::Acquire) {
                break;
            }
            if waited >= cap {
                // Watchdog starvation safety net: self-report so the wedge
                // is journaled exactly once either way.
                if slot
                    .wedged
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    obs.event(EventKind::Wedge {
                        worker: idx as u32,
                        patch: job.tenant,
                        window: job.window as u32,
                    });
                    obs.add(Counter::WorkerWedges, 1);
                    shared.wedges.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
        retries += 1;
        shared.retries.fetch_add(1, Ordering::Relaxed);
        obs.add(Counter::StreamRetries, 1);
        obs.event(EventKind::Retry { rung: 0 });
        slot.heartbeat
            .store(nanos_since(shared.epoch), Ordering::Release);
    }

    let age = job.enqueued.elapsed();
    let shed_rung = match shared.config.deadline {
        None => 0u8,
        Some(d) if age > 2 * d => 2,
        Some(d) if age > d => 1,
        Some(_) => 0,
    };

    let lane = lanes[job.tenant as usize].get_or_insert_with(|| build_lane(&tenant.factory));
    let mut masks = [0u64; BATCH];
    let disposition = match shed_rung {
        2 => {
            obs.event(EventKind::Shed {
                patch: job.tenant,
                window: job.window as u32,
                rung: 2,
            });
            Disposition::Deferred
        }
        1 => {
            let t0 = obs.clock().or_else(|| Some(Instant::now()));
            sparse.extract(&job.events);
            fast_path_masks(lane, sparse, &mut masks);
            obs.record_since(Hist::WindowDecode, t0);
            obs.event(EventKind::Shed {
                patch: job.tenant,
                window: job.window as u32,
                rung: 1,
            });
            Disposition::FastPath
        }
        _ => {
            // Full decode, panic-isolated with bounded same-window retries
            // (quarantine rebuilds the lane — a panicking decoder may have
            // torn scratch state).
            sparse.extract(&job.events);
            loop {
                let mut stats = WindowStats::default();
                let started = Instant::now();
                let lane_ref = &mut *lane;
                let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    decode_window_masks(
                        &mut lane_ref.decoder,
                        lane_ref.predecoder.as_mut(),
                        lane_ref.cluster.as_mut(),
                        lane_ref.gate,
                        lane_ref.gate_threshold,
                        sparse,
                        scratch,
                        &mut WorkerObs::disabled(),
                        Hist::DecodeShotRung0,
                        &mut stats,
                        &mut masks,
                    )
                }));
                match caught {
                    Ok(_) => {
                        obs.record(Hist::WindowDecode, started.elapsed().as_nanos() as u64);
                        obs.add(Counter::ShotsTier0, stats.tier0_shots as u64);
                        obs.add(Counter::ShotsTier1, stats.predecoded_shots as u64);
                        obs.add(
                            Counter::ShotsTier2,
                            (BATCH as u64).saturating_sub(
                                (stats.tier0_shots + stats.predecoded_shots) as u64,
                            ),
                        );
                        if stats.clustered_shots > 0 {
                            obs.add(Counter::ShotsCluster, stats.clustered_shots as u64);
                        }
                        break Disposition::Decoded;
                    }
                    Err(_) => {
                        obs.event(EventKind::Fault {
                            kind: "panic",
                            rung: 0,
                        });
                        obs.add(Counter::FaultsPanic, 1);
                        *lane = build_lane(&tenant.factory);
                        if retries >= shared.config.max_retries {
                            // Retries exhausted: declare the window
                            // deferred rather than pretend it decoded.
                            masks = [0u64; BATCH];
                            obs.event(EventKind::Shed {
                                patch: job.tenant,
                                window: job.window as u32,
                                rung: 2,
                            });
                            break Disposition::Deferred;
                        }
                        retries += 1;
                        shared.retries.fetch_add(1, Ordering::Relaxed);
                        obs.add(Counter::StreamRetries, 1);
                        obs.event(EventKind::Retry { rung: 0 });
                    }
                }
            }
        }
    };

    let rounds = job.rounds as u64;
    match disposition {
        Disposition::Decoded => {
            tenant.counts.decoded.fetch_add(rounds, Ordering::Relaxed);
            shared.windows_decoded.fetch_add(1, Ordering::Relaxed);
            obs.add(Counter::RoundsDecoded, rounds);
        }
        Disposition::FastPath => {
            tenant.counts.shed.fetch_add(rounds, Ordering::Relaxed);
            shared.windows_shed.fetch_add(1, Ordering::Relaxed);
            obs.add(Counter::RoundsShed, rounds);
            obs.add(Counter::ShotsDegraded, BATCH as u64);
        }
        Disposition::Deferred => {
            tenant.counts.deferred.fetch_add(rounds, Ordering::Relaxed);
            shared.windows_deferred.fetch_add(1, Ordering::Relaxed);
            obs.add(Counter::RoundsDeferred, rounds);
            obs.add(Counter::ShotsDegraded, BATCH as u64);
        }
    }
    obs.record(Hist::RoundLatency, job.enqueued.elapsed().as_nanos() as u64);
    lock(&tenant.results).push(WindowResult {
        window: job.window,
        disposition,
        rounds: job.rounds,
        retries,
        masks,
    });
}

/// The rung-1 fast path: tier 0 and predecode-certified shots resolve
/// exactly; cluster-peelable structure resolves locally; anything left
/// keeps an identity mask. Deterministic, bounded work, honest degradation
/// — the masks are best-effort, never presented as a full decode.
fn fast_path_masks<D: Decoder>(lane: &mut Lane<D>, sparse: &SparseBatch, masks: &mut [u64; BATCH]) {
    for (s, mask) in masks.iter_mut().enumerate() {
        let defects = sparse.defects(s);
        if defects.is_empty() {
            *mask = 0;
            continue;
        }
        if let Some(m) = lane.predecoder.as_mut().and_then(|p| p.predecode(defects)) {
            *mask = m;
            continue;
        }
        *mask = match lane.cluster.as_mut() {
            // Peeled clusters contribute their certified masks; the
            // residual is left unmatched (identity) — that's the shed.
            Some(cluster) => cluster.decompose(defects).mask,
            None => 0,
        };
    }
}

fn watchdog_loop<F: DecoderFactory + Send + Sync + 'static>(
    shared: Arc<Shared<F>>,
    mut obs: WorkerObs,
) {
    let interval = (shared.config.wedge_deadline / 4).max(Duration::from_millis(1));
    let deadline = shared.config.wedge_deadline.as_nanos() as u64;
    while !shared.watchdog_stop.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        let now = nanos_since(shared.epoch);
        for (i, slot) in shared.slots.iter().enumerate() {
            let seq = slot.busy.load(Ordering::Acquire);
            if seq == u64::MAX {
                continue;
            }
            let hb = slot.heartbeat.load(Ordering::Acquire);
            if now.saturating_sub(hb) <= deadline {
                continue;
            }
            if slot
                .wedged
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                obs.begin_chunk(seq as u32);
                obs.event(EventKind::Wedge {
                    worker: i as u32,
                    patch: slot.tenant.load(Ordering::Relaxed) as u32,
                    window: slot.window.load(Ordering::Relaxed) as u32,
                });
                obs.add(Counter::WorkerWedges, 1);
                obs.flush();
                shared.wedges.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Loopback driver
// ---------------------------------------------------------------------------

/// Pacing and workload for [`loopback_serve`]'s deterministic source.
#[derive(Clone, Debug)]
pub struct LoopbackOptions {
    /// Windows to sample per tenant.
    pub windows_per_tenant: u64,
    /// Rounds each window is split into (1..=detectors).
    pub rounds_per_window: usize,
    /// Open-loop inter-round gap; `ZERO` floods the service.
    pub gap: Duration,
    /// Base seed; tenant `t` streams from `chunk_seed(base_seed, t)`.
    pub base_seed: u64,
}

impl Default for LoopbackOptions {
    fn default() -> LoopbackOptions {
        LoopbackOptions {
            windows_per_tenant: 16,
            rounds_per_window: 1,
            gap: Duration::ZERO,
            base_seed: 0,
        }
    }
}

/// What the loopback driver measured, over and above the service's own
/// [`StreamReport`].
#[derive(Clone, Debug, Default)]
pub struct LoopbackReport {
    /// Shots scored against ground truth (decoded + fast-path windows).
    pub shots_scored: u64,
    /// Shots whose predicted mask disagreed with the sampled observables.
    pub failures: u64,
    /// Windows the driver completed (admitted + rejected).
    pub windows_pushed: u64,
    /// Windows rejected by backpressure.
    pub windows_rejected: u64,
}

/// Per-shot ground-truth observable masks of one sampled window.
fn truth_masks(observables: &[u64]) -> [u64; BATCH] {
    let mut t = [0u64; BATCH];
    for (o, &word) in observables.iter().enumerate() {
        for_each_set_bit(word, |s| t[s as usize] |= 1 << o);
    }
    t
}

/// Starts a service over `tenants`, drives it from per-tenant loopback
/// [`RoundStream`]s (tenant `t` replays `circuits[t]` from seed
/// `chunk_seed(base_seed, t)`), shuts down, and scores every decoded or
/// fast-path window against the sampled ground truth.
///
/// Streaming fault injections in `config.faults` are honoured on both
/// sides: the driver stalls a [`FaultKind::SlowTenant`]'s rounds and
/// floods a [`FaultKind::BurstArrival`] tenant without pacing, while the
/// service itself applies [`FaultKind::DelayedArrival`] backdating and
/// [`FaultKind::WorkerWedge`] stalls.
///
/// # Panics
///
/// Panics if `circuits.len() != tenants.len()` or a circuit's detector
/// count disagrees with its tenant's `detectors`.
pub fn loopback_serve<F: DecoderFactory + Send + Sync + 'static>(
    tenants: Vec<TenantSpec<F>>,
    circuits: &[Circuit],
    config: StreamConfig,
    opts: &LoopbackOptions,
    sink: ObsSink,
) -> Result<(StreamReport, LoopbackReport), ValidationError> {
    assert_eq!(circuits.len(), tenants.len(), "one circuit per tenant");
    let faults = config.faults.clone();
    let stall = faults
        .as_ref()
        .map(|p| p.stall_sleep())
        .unwrap_or(Duration::ZERO);
    let service = StreamingDecoder::start(tenants, config, sink)?;
    let n = circuits.len();
    let mut streams: Vec<RoundStream> = circuits
        .iter()
        .map(|c| RoundStream::new(c, opts.rounds_per_window))
        .collect();
    for (t, stream) in streams.iter().enumerate() {
        assert_eq!(
            stream.window_detectors(),
            service.shared.tenants[t].detectors,
            "tenant {t}: circuit detector count must match the spec"
        );
    }
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|t| StdRng::seed_from_u64(chunk_seed(opts.base_seed, t as u64)))
        .collect();
    let mut truth: Vec<Vec<[u64; BATCH]>> = vec![Vec::new(); n];
    let mut driver = LoopbackReport::default();
    for _ in 0..opts.windows_per_tenant {
        for t in 0..n {
            let burst = scheduled(faults.as_ref(), FaultKind::BurstArrival, t as u64);
            if scheduled(faults.as_ref(), FaultKind::SlowTenant, t as u64) {
                std::thread::sleep(stall);
            }
            let mut outcome = PushOutcome::Buffered { rounds: 0 };
            for _ in 0..opts.rounds_per_window {
                if !opts.gap.is_zero() && !burst {
                    std::thread::sleep(opts.gap);
                }
                let (_, words) = streams[t].next_round(&mut rngs[t]);
                // The split is exact by construction, so ingestion errors
                // here are driver bugs, not runtime conditions.
                outcome = service
                    .push_round(t, words)
                    .expect("aligned loopback round");
            }
            driver.windows_pushed += 1;
            match outcome {
                PushOutcome::Admitted { .. } => {
                    truth[t].push(truth_masks(streams[t].window_observables()));
                }
                PushOutcome::Rejected { .. } => driver.windows_rejected += 1,
                PushOutcome::Buffered { .. } => unreachable!("window must close"),
            }
        }
    }
    service.drain();
    let report = service.shutdown();
    for (t, results) in report.tenants.iter().enumerate() {
        for r in results {
            if r.disposition == Disposition::Deferred {
                continue;
            }
            let expect = &truth[t][r.window as usize];
            driver.shots_scored += BATCH as u64;
            for (got, want) in r.masks.iter().zip(expect) {
                if got != want {
                    driver.failures += 1;
                }
            }
        }
    }
    Ok((report, driver))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MatchingGraph;
    use crate::predecode::Tiered;
    use crate::unionfind::UnionFindDecoder;
    use caliqec_stab::{Basis, Noise1};

    fn rep_circuit(p: f64) -> Circuit {
        let mut c = Circuit::new(5);
        c.reset(Basis::Z, &[0, 1, 2, 3, 4]);
        c.noise1(Noise1::XError, p, &[0, 1, 2]);
        c.cx(0, 3);
        c.cx(1, 3);
        c.cx(1, 4);
        c.cx(2, 4);
        let m0 = c.measure(3, Basis::Z, 0.0);
        let m1 = c.measure(4, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let md = c.measure(0, Basis::Z, 0.0);
        c.observable(0, &[md]);
        c
    }

    type TestFactory = Tiered<Box<dyn Fn() -> UnionFindDecoder + Send + Sync>>;

    fn tenant_for(c: &Circuit) -> TenantSpec<TestFactory> {
        let graph = crate::decode::graph_for_circuit(c);
        let g = graph.clone();
        let factory: Box<dyn Fn() -> UnionFindDecoder + Send + Sync> =
            Box::new(move || UnionFindDecoder::new(g.clone()));
        TenantSpec {
            factory: Tiered::new(&graph, factory),
            detectors: MatchingGraph::num_detectors(&graph),
        }
    }

    fn two_tenant_setup() -> (Vec<TenantSpec<TestFactory>>, Vec<Circuit>) {
        let circuits = vec![rep_circuit(0.02), rep_circuit(0.05)];
        let tenants = circuits.iter().map(tenant_for).collect();
        (tenants, circuits)
    }

    #[test]
    fn loopback_partitions_ingested_rounds() {
        let (tenants, circuits) = two_tenant_setup();
        let config = StreamConfig {
            workers: 2,
            queue_bound: 64,
            ..StreamConfig::default()
        };
        let opts = LoopbackOptions {
            windows_per_tenant: 8,
            rounds_per_window: 2,
            ..LoopbackOptions::default()
        };
        let (report, driver) =
            loopback_serve(tenants, &circuits, config, &opts, ObsSink::enabled()).unwrap();
        assert_eq!(driver.windows_rejected, 0);
        assert_eq!(report.health.rounds_pending(), 0);
        for t in &report.health.tenants {
            assert_eq!(t.rounds_ingested, 16, "tenant {}", t.tenant);
            assert_eq!(
                t.rounds_decoded + t.rounds_shed + t.rounds_deferred,
                t.rounds_ingested
            );
            assert_eq!(t.rounds_rejected, 0);
        }
        // No shedding without a deadline: every window fully decoded.
        assert_eq!(report.health.windows_decoded, 16);
        assert_eq!(
            report.health.windows_shed + report.health.windows_deferred,
            0
        );
        assert_eq!(driver.shots_scored, 16 * BATCH as u64);
        // Decoding suppresses the physical rate well below 5%.
        assert!((driver.failures as f64) < 0.05 * driver.shots_scored as f64);
        let json = report.health.to_json();
        assert!(json.contains("\"rounds_pending\":0"));
        assert!(json.contains("\"tenants\":[{"));
    }

    #[test]
    fn masks_are_identical_across_worker_counts() {
        let masks_with = |workers: usize| {
            let (tenants, circuits) = two_tenant_setup();
            let config = StreamConfig {
                workers,
                queue_bound: 64,
                ..StreamConfig::default()
            };
            let opts = LoopbackOptions {
                windows_per_tenant: 6,
                rounds_per_window: 1,
                base_seed: 42,
                ..LoopbackOptions::default()
            };
            let (report, _) =
                loopback_serve(tenants, &circuits, config, &opts, ObsSink::disabled()).unwrap();
            report
                .tenants
                .iter()
                .map(|rs| rs.iter().map(|r| (r.window, r.masks)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        let one = masks_with(1);
        assert_eq!(one, masks_with(2));
        assert_eq!(one, masks_with(4));
    }

    #[test]
    fn full_queue_rejects_windows() {
        let (tenants, _) = two_tenant_setup();
        let config = StreamConfig {
            workers: 1,
            queue_bound: 1,
            ..StreamConfig::default()
        };
        let service = StreamingDecoder::start(tenants, config, ObsSink::disabled()).unwrap();
        // Stuff tenant 0 faster than one worker can drain a 1-deep queue:
        // with enough back-to-back windows at least one must be rejected,
        // and rejected rounds never count as ingested.
        let round = vec![0u64; 2];
        let mut rejected = 0;
        for _ in 0..64 {
            match service.push_round(0, &round).unwrap() {
                PushOutcome::Rejected { queue_depth } => {
                    assert!(queue_depth >= 1);
                    rejected += 1;
                }
                PushOutcome::Admitted { .. } => {}
                PushOutcome::Buffered { .. } => unreachable!(),
            }
        }
        service.drain();
        let report = service.shutdown();
        let t0 = &report.health.tenants[0];
        assert_eq!(t0.rounds_ingested + t0.rounds_rejected, 64);
        assert_eq!(
            t0.rounds_decoded + t0.rounds_shed + t0.rounds_deferred,
            t0.rounds_ingested
        );
        assert_eq!(rejected as u64, t0.rounds_rejected);
    }

    #[test]
    fn misaligned_round_is_rejected_without_ingesting() {
        let (tenants, _) = two_tenant_setup();
        let service =
            StreamingDecoder::start(tenants, StreamConfig::default(), ObsSink::disabled()).unwrap();
        assert!(matches!(
            service.push_round(0, &[0, 0, 0]),
            Err(WindowError::Misaligned { .. })
        ));
        assert!(matches!(
            service.push_round(0, &[]),
            Err(WindowError::EmptyRound)
        ));
        let report = service.shutdown();
        assert_eq!(report.health.tenants[0].rounds_ingested, 0);
    }

    #[test]
    fn delayed_arrival_defers_and_journals_shed() {
        let (tenants, circuits) = two_tenant_setup();
        let sink = ObsSink::enabled();
        let config = StreamConfig {
            workers: 1,
            queue_bound: 64,
            deadline: Some(Duration::from_millis(50)),
            faults: Some(FaultPlan::new().delayed_arrival_at(1)),
            ..StreamConfig::default()
        };
        let opts = LoopbackOptions {
            windows_per_tenant: 3,
            rounds_per_window: 1,
            ..LoopbackOptions::default()
        };
        let (report, _) = loopback_serve(tenants, &circuits, config, &opts, sink.clone()).unwrap();
        // Window 1 of *each* tenant is backdated past 2x the deadline.
        assert_eq!(report.health.windows_deferred, 2);
        for rs in &report.tenants {
            assert_eq!(rs[1].disposition, Disposition::Deferred);
            assert_eq!(rs[1].masks, [0u64; BATCH]);
        }
        let snap = sink.snapshot();
        let sheds: Vec<_> = snap
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Shed { rung: 2, .. }))
            .collect();
        assert_eq!(sheds.len(), 2);
        assert_eq!(snap.counter("rounds_deferred"), 2);
        assert_eq!(
            snap.counter("rounds_ingested"),
            snap.counter("rounds_decoded")
                + snap.counter("rounds_shed")
                + snap.counter("rounds_deferred")
        );
    }

    #[test]
    fn worker_wedge_is_detected_and_retried() {
        let (tenants, circuits) = two_tenant_setup();
        let sink = ObsSink::enabled();
        let config = StreamConfig {
            workers: 2,
            queue_bound: 64,
            wedge_deadline: Duration::from_millis(10),
            faults: Some(FaultPlan::new().worker_wedge_at(0)),
            ..StreamConfig::default()
        };
        let opts = LoopbackOptions {
            windows_per_tenant: 2,
            rounds_per_window: 1,
            ..LoopbackOptions::default()
        };
        let (report, driver) =
            loopback_serve(tenants, &circuits, config, &opts, sink.clone()).unwrap();
        // Window 0 of each tenant wedges; both recover via same-window
        // retry and still decode every window in full.
        assert_eq!(report.health.wedges, 2);
        assert_eq!(report.health.retries, 2);
        assert_eq!(report.health.windows_decoded, 4);
        assert_eq!(driver.shots_scored, 4 * BATCH as u64);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("worker_wedges"), 2);
        assert_eq!(snap.counter("stream_retries"), 2);
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Wedge { .. })));
    }
}
